//! Virtual time for the discrete-event engine.
//!
//! [`SimTime`] is an absolute instant measured in nanoseconds since the
//! start of the simulation; durations are ordinary [`std::time::Duration`]s.
//! A `u64` nanosecond clock covers ~584 years of virtual time, far beyond
//! any experiment in this repository.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An absolute instant of virtual time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; used as an "infinitely far" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Constructs an instant from raw nanoseconds since the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Constructs an instant from whole seconds since the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Constructs an instant from milliseconds since the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Raw nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(dur_nanos(d)))
    }
}

/// Converts a `Duration` to u64 nanoseconds, saturating on overflow.
pub fn dur_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + dur_nanos(rhs))
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += dur_nanos(rhs);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration::from_nanos(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::from_millis(1500);
        assert_eq!(t.as_nanos(), 1_500_000_000);
        let t2 = t + Duration::from_millis(500);
        assert_eq!(t2, SimTime::from_secs(2));
        assert_eq!(t2 - t, Duration::from_millis(500));
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.since(b), Duration::ZERO);
        assert_eq!(b.since(a), Duration::from_secs(1));
    }

    #[test]
    fn ordering() {
        assert!(SimTime::ZERO < SimTime::from_nanos(1));
        assert!(SimTime::from_secs(1) < SimTime::MAX);
    }

    #[test]
    fn display_is_seconds() {
        assert_eq!(format!("{}", SimTime::from_millis(1250)), "1.250000s");
    }
}
