//! Pending-event schedulers: the ordering contract behind the engine's
//! run loop, a binary-heap baseline and a hierarchical timer wheel.
//!
//! The engine pops events in `(at, seq)` order — earliest virtual time
//! first, FIFO by a monotonic sequence number among equal timestamps.
//! Every [`Scheduler`] implementation must reproduce that order
//! **bit-for-bit**: swapping implementations must never change a run
//! (the cross-scheduler suites in `tests/` and `tests/determinism.rs`
//! enforce this byte-identically).
//!
//! Two implementations are provided:
//!
//! * [`HeapScheduler`] — the `BinaryHeap` the engine historically used.
//!   `O(log n)` push/pop; pops on large queues walk `log n` levels of a
//!   cache-cold array.
//! * [`WheelScheduler`] — a hierarchical timer wheel (64 slots × 6
//!   levels, 65.536 µs level-0 ticks, ~52 days of span) with a binary
//!   heap as the overflow level for far-future events. Push is `O(1)`;
//!   pops drain one sorted level-0 bucket at a time, so cost is
//!   independent of the standing event population.

use std::collections::BTreeSet;
use std::collections::BinaryHeap;
use std::collections::VecDeque;

use crate::time::SimTime;

/// Which [`Scheduler`] implementation a simulation runs on.
///
/// Both orderings are bit-for-bit identical; the knob exists so the
/// equivalence can be *checked* (and so regressions can be bisected to
/// the scheduler) while production runs default to the faster wheel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// The `BinaryHeap` baseline.
    Heap,
    /// The hierarchical timer wheel with a heap overflow level.
    #[default]
    Wheel,
}

impl SchedulerKind {
    /// Constructs a boxed scheduler of this kind.
    pub fn make<T: 'static>(self) -> Box<dyn Scheduler<T>> {
        match self {
            SchedulerKind::Heap => Box::new(HeapScheduler::new()),
            SchedulerKind::Wheel => Box::new(WheelScheduler::new()),
        }
    }
}

/// A priority queue of `(at, seq, item)` entries popped in `(at, seq)`
/// lexicographic order.
///
/// `seq` values are unique and assigned in scheduling order by the
/// caller, so the order is total and equal-time entries pop FIFO.
/// `peek`/`pop` take `&mut self` because the wheel reorganises its
/// buckets lazily while searching for the next entry.
pub trait Scheduler<T> {
    /// Enqueues an entry. `at` must be at or after the time of the last
    /// popped entry; `seq` must be strictly greater than any previously
    /// pushed `seq`.
    fn push(&mut self, at: SimTime, seq: u64, item: T);

    /// Removes and returns the earliest entry.
    fn pop(&mut self) -> Option<(SimTime, u64, T)>;

    /// The `(at, seq)` of the earliest entry without removing it.
    fn peek(&mut self) -> Option<(SimTime, u64)>;

    /// Lazily cancels the pending entry with the given `seq`: it will
    /// never be returned by `pop`. The caller must only cancel seqs
    /// that are currently pending (pushed, not yet popped or
    /// cancelled).
    fn cancel(&mut self, seq: u64);

    /// Number of live (pushed, not popped, not cancelled) entries.
    fn len(&self) -> usize;

    /// Whether no live entries remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains up to `max` entries sharing the earliest timestamp into
    /// `out` (appending); returns how many were moved. The engine uses
    /// this to dispatch same-timestamp deliveries as one batch.
    fn pop_batch(&mut self, out: &mut Vec<(SimTime, u64, T)>, max: usize) -> usize {
        let Some((t0, _)) = self.peek() else {
            return 0;
        };
        let mut n = 0;
        while n < max {
            match self.peek() {
                Some((t, _)) if t == t0 => {
                    out.push(self.pop().expect("peeked entry exists"));
                    n += 1;
                }
                _ => break,
            }
        }
        n
    }
}

/// An entry ordered for a max-`BinaryHeap` so that the smallest
/// `(at, seq)` surfaces first.
struct HeapEntry<T> {
    at: SimTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for HeapEntry<T> {}
impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we need earliest-first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// The historical `BinaryHeap` scheduler: the reference implementation
/// the wheel is checked against.
pub struct HeapScheduler<T> {
    heap: BinaryHeap<HeapEntry<T>>,
    cancelled: BTreeSet<u64>,
    live: usize,
}

impl<T> HeapScheduler<T> {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        HeapScheduler {
            heap: BinaryHeap::new(),
            cancelled: BTreeSet::new(),
            live: 0,
        }
    }

    /// Discards cancelled entries sitting at the head.
    fn skim(&mut self) {
        while let Some(head) = self.heap.peek() {
            if self.cancelled.remove(&head.seq) {
                self.heap.pop();
            } else {
                break;
            }
        }
    }
}

impl<T> Default for HeapScheduler<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Scheduler<T> for HeapScheduler<T> {
    fn push(&mut self, at: SimTime, seq: u64, item: T) {
        self.heap.push(HeapEntry { at, seq, item });
        self.live += 1;
    }

    fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        self.skim();
        let e = self.heap.pop()?;
        self.live -= 1;
        Some((e.at, e.seq, e.item))
    }

    fn peek(&mut self) -> Option<(SimTime, u64)> {
        self.skim();
        self.heap.peek().map(|e| (e.at, e.seq))
    }

    fn cancel(&mut self, seq: u64) {
        if self.cancelled.insert(seq) {
            self.live -= 1;
        }
    }

    fn len(&self) -> usize {
        self.live
    }
}

/// Level-0 tick width: `2^16` ns = 65.536 µs.
const TICK_BITS: u32 = 16;
/// Bits per wheel level (64 slots each).
const LEVEL_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Wheel levels; spans `2^(16 + 6·6)` ns ≈ 52 days before the overflow
/// heap takes over.
const LEVELS: usize = 6;

struct WheelEntry<T> {
    at: SimTime,
    seq: u64,
    item: T,
}

struct Level<T> {
    /// Bit `i` set iff `slots[i]` is non-empty.
    occupied: u64,
    slots: Vec<Vec<WheelEntry<T>>>,
}

impl<T> Level<T> {
    fn new() -> Self {
        Level {
            occupied: 0,
            slots: (0..SLOTS).map(|_| Vec::new()).collect(),
        }
    }
}

/// A hashed hierarchical timer wheel with a binary-heap overflow level.
///
/// Entries within the wheel's span land in a slot chosen by the highest
/// 6-bit digit in which their tick differs from the cursor; slots
/// cascade to lower levels as the cursor enters their window, and the
/// level-0 bucket due next is sorted by `(at, seq)` once and drained
/// in order. Entries further out than the wheel's span (≈52 days of
/// virtual time) wait in a binary heap and are merged at pop time, so
/// ordering holds over the full `SimTime` range.
pub struct WheelScheduler<T> {
    levels: Vec<Level<T>>,
    /// Wheel cursor in level-0 ticks. Invariant: no pending wheel entry
    /// has a tick below it.
    now_tick: u64,
    /// The sorted, partially drained bucket for tick `now_tick`.
    current: VecDeque<WheelEntry<T>>,
    overflow: BinaryHeap<HeapEntry<T>>,
    cancelled: BTreeSet<u64>,
    live: usize,
}

enum Src {
    Wheel,
    Overflow,
}

impl<T> WheelScheduler<T> {
    /// Creates an empty scheduler with its cursor at t = 0.
    pub fn new() -> Self {
        WheelScheduler {
            levels: (0..LEVELS).map(|_| Level::new()).collect(),
            now_tick: 0,
            current: VecDeque::new(),
            overflow: BinaryHeap::new(),
            cancelled: BTreeSet::new(),
            live: 0,
        }
    }

    fn tick_of(at: SimTime) -> u64 {
        at.as_nanos() >> TICK_BITS
    }

    /// Files an entry into the current bucket, a wheel slot or the
    /// overflow heap. Does not touch `live`.
    fn place(&mut self, e: WheelEntry<T>) {
        let t = Self::tick_of(e.at);
        if t <= self.now_tick {
            // Due in the tick being drained right now — or earlier: after
            // popping an overflow entry that precedes every wheel entry,
            // the caller may push relative to that earlier time, behind
            // the cursor. Both cases go into the sorted drain buffer,
            // which is always consulted before the wheel (new seqs sort
            // after equal-(at) entries already pending, preserving FIFO
            // ties).
            let key = (e.at, e.seq);
            let i = self.current.partition_point(|x| (x.at, x.seq) < key);
            self.current.insert(i, e);
            return;
        }
        let xor = t ^ self.now_tick;
        let lvl = ((63 - xor.leading_zeros()) / LEVEL_BITS) as usize;
        if lvl >= LEVELS {
            self.overflow.push(HeapEntry {
                at: e.at,
                seq: e.seq,
                item: e.item,
            });
            return;
        }
        let slot = ((t >> (LEVEL_BITS * lvl as u32)) & (SLOTS as u64 - 1)) as usize;
        self.levels[lvl].slots[slot].push(e);
        self.levels[lvl].occupied |= 1u64 << slot;
    }

    /// Advances the cursor until `current` holds the wheel's next
    /// pending entries (or returns with the wheel structurally empty).
    fn ensure_current(&mut self) {
        while self.current.is_empty() {
            let mut progressed = false;
            for lvl in 0..LEVELS {
                let cursor =
                    ((self.now_tick >> (LEVEL_BITS * lvl as u32)) & (SLOTS as u64 - 1)) as u32;
                let bits = self.levels[lvl].occupied & (u64::MAX << cursor);
                if bits == 0 {
                    continue;
                }
                let slot = bits.trailing_zeros() as usize;
                self.levels[lvl].occupied &= !(1u64 << slot);
                let mut bucket = std::mem::take(&mut self.levels[lvl].slots[slot]);
                if lvl == 0 {
                    // The due bucket: advance to its tick, sort, drain.
                    self.now_tick = (self.now_tick & !(SLOTS as u64 - 1)) | slot as u64;
                    self.current.extend(bucket.drain(..));
                    self.current
                        .make_contiguous()
                        .sort_unstable_by_key(|e| (e.at, e.seq));
                } else {
                    // Enter the slot's window (zeroing all lower digits —
                    // lower levels were empty, so nothing is skipped) and
                    // cascade its entries down.
                    let width = LEVEL_BITS * lvl as u32;
                    if slot as u32 > cursor {
                        let span_mask = (1u64 << (width + LEVEL_BITS)) - 1;
                        self.now_tick = (self.now_tick & !span_mask) | ((slot as u64) << width);
                    }
                    for e in bucket.drain(..) {
                        self.place(e);
                    }
                }
                self.levels[lvl].slots[slot] = bucket; // keep the allocation
                progressed = true;
                break;
            }
            if !progressed {
                return; // wheel empty (overflow may still hold entries)
            }
        }
    }

    /// Discards cancelled heads, then reports where the earliest live
    /// entry sits.
    fn head_source(&mut self) -> Option<Src> {
        loop {
            self.ensure_current();
            if let Some(h) = self.current.front() {
                if self.cancelled.contains(&h.seq) {
                    let e = self.current.pop_front().expect("front exists");
                    self.cancelled.remove(&e.seq);
                    continue;
                }
            }
            if let Some(h) = self.overflow.peek() {
                if self.cancelled.contains(&h.seq) {
                    let e = self.overflow.pop().expect("peeked entry exists");
                    self.cancelled.remove(&e.seq);
                    continue;
                }
            }
            return match (self.current.front(), self.overflow.peek()) {
                (None, None) => None,
                (Some(_), None) => Some(Src::Wheel),
                (None, Some(_)) => Some(Src::Overflow),
                (Some(w), Some(o)) => {
                    if (w.at, w.seq) <= (o.at, o.seq) {
                        Some(Src::Wheel)
                    } else {
                        Some(Src::Overflow)
                    }
                }
            };
        }
    }

    fn wheel_structurally_empty(&self) -> bool {
        self.current.is_empty() && self.levels.iter().all(|l| l.occupied == 0)
    }
}

impl<T> Default for WheelScheduler<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Scheduler<T> for WheelScheduler<T> {
    fn push(&mut self, at: SimTime, seq: u64, item: T) {
        self.place(WheelEntry { at, seq, item });
        self.live += 1;
    }

    fn pop(&mut self) -> Option<(SimTime, u64, T)> {
        match self.head_source()? {
            Src::Wheel => {
                let e = self.current.pop_front().expect("head exists");
                self.live -= 1;
                Some((e.at, e.seq, e.item))
            }
            Src::Overflow => {
                let e = self.overflow.pop().expect("head exists");
                // With the wheel empty the cursor may fast-forward to the
                // popped time, so later pushes land in low levels again
                // instead of degenerating into the overflow heap.
                if self.wheel_structurally_empty() {
                    self.now_tick = self.now_tick.max(Self::tick_of(e.at));
                }
                self.live -= 1;
                Some((e.at, e.seq, e.item))
            }
        }
    }

    fn peek(&mut self) -> Option<(SimTime, u64)> {
        match self.head_source()? {
            Src::Wheel => self.current.front().map(|e| (e.at, e.seq)),
            Src::Overflow => self.overflow.peek().map(|e| (e.at, e.seq)),
        }
    }

    fn cancel(&mut self, seq: u64) {
        if self.cancelled.insert(seq) {
            self.live -= 1;
        }
    }

    fn len(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Pcg32;
    use std::time::Duration;

    fn drain<T>(s: &mut dyn Scheduler<T>) -> Vec<(SimTime, u64)> {
        let mut out = Vec::new();
        while let Some((at, seq, _)) = s.pop() {
            out.push((at, seq));
        }
        out
    }

    /// Pushes the same pseudo-random schedule into both schedulers and
    /// checks identical pop order, with pops interleaved into pushes so
    /// the wheel's cursor advances mid-stream.
    #[test]
    fn wheel_matches_heap_on_mixed_horizons() {
        let mut heap: HeapScheduler<u64> = HeapScheduler::new();
        let mut wheel: WheelScheduler<u64> = WheelScheduler::new();
        let mut rng = Pcg32::new(0x57ED);
        let mut now = SimTime::ZERO;
        let mut seq = 0u64;
        let mut heap_out = Vec::new();
        let mut wheel_out = Vec::new();
        for round in 0..2_000u64 {
            // Delays spanning every level plus the overflow heap.
            let delay_ns = match rng.below(8) {
                0 => 0,
                1 => rng.below(1 << 10),
                2 => rng.below(1 << 18),
                3 => rng.below(1 << 26),
                4 => rng.below(1 << 34),
                5 => rng.below(1 << 42),
                6 => rng.below(1 << 50),
                _ => u64::MAX / 2 + rng.below(1 << 40),
            };
            let at = SimTime::from_nanos(now.as_nanos().saturating_add(delay_ns));
            seq += 1;
            heap.push(at, seq, round);
            wheel.push(at, seq, round);
            if rng.below(3) == 0 {
                let h = heap.pop();
                let w = wheel.pop();
                assert_eq!(h, w);
                if let Some((at, seq, _)) = h {
                    now = at;
                    heap_out.push((at, seq));
                    wheel_out.push((at, seq));
                }
            }
        }
        heap_out.extend(drain(&mut heap));
        wheel_out.extend(drain(&mut wheel));
        assert_eq!(heap_out, wheel_out);
        assert_eq!(heap_out.len(), 2_000);
    }

    #[test]
    fn same_tick_entries_pop_fifo_by_seq() {
        let mut wheel: WheelScheduler<&'static str> = WheelScheduler::new();
        let t = SimTime::from_millis(5);
        wheel.push(t, 1, "a");
        wheel.push(t, 2, "b");
        // A nanosecond earlier inside the same level-0 tick must still
        // pop first despite the later seq.
        wheel.push(SimTime::from_nanos(t.as_nanos() - 1), 3, "c");
        assert_eq!(wheel.pop().map(|e| e.2), Some("c"));
        assert_eq!(wheel.pop().map(|e| e.2), Some("a"));
        assert_eq!(wheel.pop().map(|e| e.2), Some("b"));
        assert!(wheel.pop().is_none());
    }

    #[test]
    fn push_at_current_time_during_drain_keeps_order() {
        let mut wheel: WheelScheduler<u32> = WheelScheduler::new();
        let t = SimTime::from_millis(1);
        wheel.push(t, 1, 10);
        wheel.push(t, 2, 20);
        assert_eq!(wheel.pop().map(|e| e.2), Some(10));
        // Scheduled "during delivery" at the same timestamp: must pop
        // after the already-pending seq 2 but before any later time.
        wheel.push(t, 3, 30);
        wheel.push(t + Duration::from_nanos(1), 4, 40);
        assert_eq!(wheel.pop().map(|e| e.2), Some(20));
        assert_eq!(wheel.pop().map(|e| e.2), Some(30));
        assert_eq!(wheel.pop().map(|e| e.2), Some(40));
    }

    #[test]
    fn cancel_suppresses_entries_in_both_impls() {
        for kind in [SchedulerKind::Heap, SchedulerKind::Wheel] {
            let mut s: Box<dyn Scheduler<u32>> = kind.make();
            s.push(SimTime::from_millis(1), 1, 1);
            s.push(SimTime::from_millis(2), 2, 2);
            s.push(SimTime::from_millis(3), 3, 3);
            s.cancel(2);
            assert_eq!(s.len(), 2);
            assert_eq!(s.pop().map(|e| e.2), Some(1));
            assert_eq!(s.pop().map(|e| e.2), Some(3));
            assert!(s.pop().is_none());
            assert!(s.is_empty());
        }
    }

    #[test]
    fn overflow_level_merges_with_wheel_order() {
        let mut wheel: WheelScheduler<u32> = WheelScheduler::new();
        let far = SimTime::from_secs(90 * 24 * 3600); // beyond the wheel span
        wheel.push(far, 1, 1);
        wheel.push(SimTime::from_secs(1), 2, 2);
        assert_eq!(wheel.peek(), Some((SimTime::from_secs(1), 2)));
        assert_eq!(wheel.pop().map(|e| e.2), Some(2));
        assert_eq!(wheel.pop().map(|e| e.2), Some(1));
        // After the overflow pop the cursor fast-forwarded: a short
        // relative delay lands in the wheel, not the overflow heap.
        wheel.push(far + Duration::from_millis(1), 3, 3);
        assert!(wheel.overflow.is_empty());
        assert_eq!(wheel.pop().map(|e| e.2), Some(3));
    }

    /// The ordering hazard the sorted `current` buffer exists for: an
    /// overflow pop earlier than pending wheel entries, followed by a
    /// push relative to that earlier time (behind the cursor).
    #[test]
    fn overflow_pop_then_push_behind_cursor_keeps_order() {
        let mut wheel: WheelScheduler<u32> = WheelScheduler::new();
        let day = |d: u64| SimTime::from_secs(d * 24 * 3600);
        wheel.push(day(60), 1, 1);
        assert_eq!(wheel.pop().map(|e| e.2), Some(1)); // cursor ≈ day 60
        wheel.push(day(113), 2, 2); // 53 days out: overflow heap
        assert!(!wheel.overflow.is_empty());
        // Pushed later, lands in the wheel. The global min is still the
        // overflow entry; the wheel is non-empty, and peeking advances
        // the cursor to day 114's window.
        wheel.push(day(114), 3, 3);
        assert_eq!(wheel.pop(), Some((day(113), 2, 2)));
        // Scheduling shortly after the popped time is now behind the
        // cursor — it must still pop before the day-114 wheel entry.
        wheel.push(day(113) + Duration::from_millis(1), 4, 4);
        assert_eq!(wheel.pop().map(|e| e.2), Some(4));
        assert_eq!(wheel.pop().map(|e| e.2), Some(3));
        assert!(wheel.is_empty());
    }

    #[test]
    fn pop_batch_takes_equal_timestamps_only() {
        for kind in [SchedulerKind::Heap, SchedulerKind::Wheel] {
            let mut s: Box<dyn Scheduler<u32>> = kind.make();
            let t = SimTime::from_millis(7);
            s.push(t, 1, 1);
            s.push(t, 2, 2);
            s.push(t + Duration::from_millis(1), 3, 3);
            let mut out = Vec::new();
            assert_eq!(s.pop_batch(&mut out, 10), 2);
            assert_eq!(
                out.iter().map(|e| e.2).collect::<Vec<_>>(),
                vec![1, 2],
                "{kind:?}"
            );
            out.clear();
            assert_eq!(s.pop_batch(&mut out, 10), 1);
            assert_eq!(out[0].2, 3);
            assert_eq!(s.pop_batch(&mut out, 10), 0);
        }
    }

    #[test]
    fn pop_batch_respects_max() {
        let mut s: WheelScheduler<u32> = WheelScheduler::new();
        let t = SimTime::from_millis(7);
        for i in 0..5 {
            s.push(t, i + 1, i as u32);
        }
        let mut out = Vec::new();
        assert_eq!(s.pop_batch(&mut out, 3), 3);
        assert_eq!(s.len(), 2);
        out.clear();
        assert_eq!(s.pop_batch(&mut out, 10), 2);
    }
}
