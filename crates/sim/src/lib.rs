//! # sns-sim — deterministic discrete-event cluster simulator
//!
//! This crate is the execution substrate for the SOSP '97 *Cluster-Based
//! Scalable Network Services* reproduction: a single-threaded,
//! seed-deterministic discrete-event engine modelling a cluster of
//! workstation nodes (CPU cores, process spawn latency), the components
//! (simulated processes) running on them, liveness watches (broken-
//! connection detection), multicast groups and a pluggable interconnect
//! model (see [`network::Network`]; the full SAN model lives in the
//! `sns-san` crate).
//!
//! The paper's measurements are dynamics of queues, arrival processes and
//! failure-recovery protocols; running them over virtual time makes a
//! 24-hour trace replay take seconds and makes every experiment exactly
//! reproducible from its seed.
//!
//! ## Example
//!
//! ```
//! use sns_sim::prelude::*;
//! use std::time::Duration;
//!
//! #[derive(Clone)]
//! struct Tick;
//! impl Wire for Tick {
//!     fn wire_size(&self) -> u64 { 16 }
//! }
//!
//! struct Clock;
//! impl Component<Tick> for Clock {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, Tick>) {
//!         ctx.timer(Duration::from_secs(1), 0);
//!     }
//!     fn on_timer(&mut self, ctx: &mut Ctx<'_, Tick>, _t: u64) {
//!         ctx.stats().incr("ticks", 1);
//!     }
//!     fn on_message(&mut self, _: &mut Ctx<'_, Tick>, _: ComponentId, _: Tick) {}
//! }
//!
//! let mut sim = Sim::new(SimConfig::default(), IdealNetwork::default());
//! let node = sim.add_node(NodeSpec::new(2, "dedicated"));
//! sim.spawn(node, Box::new(Clock), "clock");
//! sim.run();
//! assert_eq!(sim.stats().counter("ticks"), 1);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod lanes;
pub mod network;
pub mod rng;
pub mod sched;
pub mod stats;
pub mod time;
pub mod trace;

/// A cluster node identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// A component (simulated process) identifier. Ids are never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ComponentId(pub u64);

impl ComponentId {
    /// Sender id used for messages injected from outside the cluster.
    pub const EXTERNAL: ComponentId = ComponentId(0);
}

impl std::fmt::Display for ComponentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// A multicast group identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GroupId(pub u32);

pub use engine::{Component, Ctx, Kernel, NodeSpec, RunOutcome, Sim, SimConfig, Wire};
pub use lanes::{BoundaryMsg, Lane, PortId, ShardId, ShardRun, ShardedSim, Uplink};
pub use network::{Delivery, Endpoint, IdealNetwork, Network, TrafficClass};
pub use rng::Pcg32;
pub use sched::{HeapScheduler, Scheduler, SchedulerKind, WheelScheduler};
pub use stats::{Histogram, MetricKey, Series, StatsHub, Summary};
pub use time::SimTime;
pub use trace::{SpanId, SpanRecord, TraceLog, Tracer};

/// Interns a name, returning its canonical `&'static str`. Each distinct
/// name leaks exactly one copy; repeated calls with the same content are
/// allocation-free lookups. Backs [`stats::MetricKey`] and the engine's
/// component-kind tags.
pub fn intern(name: &str) -> &'static str {
    use std::collections::BTreeMap;
    use std::sync::Mutex;
    static INTERNED: Mutex<BTreeMap<String, &'static str>> = Mutex::new(BTreeMap::new());
    let mut map = INTERNED
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if let Some(&s) = map.get(name) {
        return s;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    map.insert(name.to_string(), leaked);
    leaked
}

/// Commonly used items, for glob import in component code.
pub mod prelude {
    pub use crate::engine::{Component, Ctx, NodeSpec, RunOutcome, Sim, SimConfig, Wire};
    pub use crate::network::{Delivery, Endpoint, IdealNetwork, Network, TrafficClass};
    pub use crate::rng::Pcg32;
    pub use crate::sched::SchedulerKind;
    pub use crate::stats::StatsHub;
    pub use crate::time::SimTime;
    pub use crate::{ComponentId, GroupId, NodeId};
}
