//! Measurement collection: counters, histograms and time series.
//!
//! Components and the engine itself record observations into a shared
//! [`StatsHub`]; experiment harnesses read them back after (or during) a
//! run to regenerate the paper's tables and figures. All collections are
//! keyed by interned [`MetricKey`]s and stored in `BTreeMap`s so that
//! report iteration order is deterministic. Recording under a `&str`
//! name interns it on first touch and is allocation-free afterwards;
//! hot paths can hold a `MetricKey` and skip even the intern lookup.

use std::collections::BTreeMap;

use crate::time::SimTime;

/// An interned metric name: a cheap, `Copy` handle hot paths can cache
/// so that repeated recording neither allocates nor re-interns.
///
/// Every `StatsHub` write method accepts `impl Into<MetricKey>`, so
/// plain `&str` names keep working everywhere — they intern on the way
/// in (an allocation only the first time a given name is seen).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricKey(&'static str);

impl MetricKey {
    /// Interns `name` and returns its key.
    pub fn new(name: &str) -> Self {
        MetricKey(crate::intern(name))
    }

    /// The canonical name.
    pub fn as_str(&self) -> &'static str {
        self.0
    }
}

impl From<&str> for MetricKey {
    fn from(name: &str) -> Self {
        MetricKey::new(name)
    }
}

impl From<&String> for MetricKey {
    fn from(name: &String) -> Self {
        MetricKey::new(name)
    }
}

impl From<String> for MetricKey {
    fn from(name: String) -> Self {
        MetricKey::new(&name)
    }
}

impl std::fmt::Display for MetricKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

/// A streaming summary of scalar observations (count / mean / min / max /
/// variance via Welford, plus an exact reservoir-free percentile store for
/// modest sample counts).
#[derive(Debug, Clone, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    /// Exact samples retained for percentile queries (capped).
    samples: Vec<f64>,
    /// Whether `samples` is currently sorted (lazy quantile support).
    sorted: bool,
    cap: usize,
    /// Every `stride`-th observation is retained once the cap is hit.
    stride: u64,
}

impl Summary {
    /// Creates a summary retaining up to `cap` exact samples for
    /// percentile queries.
    pub fn with_capacity(cap: usize) -> Self {
        Summary {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            cap,
            stride: 1,
            ..Default::default()
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
        if self.cap > 0 {
            if self.samples.len() == self.cap {
                // Thin the retained set: keep every other sample and double
                // the stride so long runs stay bounded but representative.
                let mut kept = Vec::with_capacity(self.cap / 2);
                for (i, &s) in self.samples.iter().enumerate() {
                    if i % 2 == 0 {
                        kept.push(s);
                    }
                }
                self.samples = kept;
                self.stride *= 2;
            }
            if self.count.is_multiple_of(self.stride) {
                self.samples.push(x);
                self.sorted = false;
            }
        }
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of all observations (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).sqrt()
        }
    }

    /// Smallest observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Approximate `q`-quantile (`q` in `[0,1]`) from retained samples.
    ///
    /// Sorts the retained samples in place the first time it is called
    /// (and again only after new observations arrive), so a batch of
    /// quantile reads after a run costs one sort instead of one
    /// clone-and-sort per call. The retained set's ordering carries no
    /// meaning — thinning keeps every other element, which is equally
    /// representative of the distribution either way.
    pub fn quantile(&mut self, q: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        if !self.sorted {
            self.samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
            self.sorted = true;
        }
        let idx = ((self.samples.len() - 1) as f64 * q.clamp(0.0, 1.0)).round() as usize;
        self.samples[idx]
    }
}

/// A fixed-bin linear histogram over `[lo, hi)` with under/overflow bins.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    under: u64,
    over: u64,
}

impl Histogram {
    /// Creates a histogram with `n` equal-width bins spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, n: usize) -> Self {
        assert!(hi > lo && n > 0, "invalid histogram bounds");
        Histogram {
            lo,
            hi,
            bins: vec![0; n],
            under: 0,
            over: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x < self.lo {
            self.under += 1;
        } else if x >= self.hi {
            self.over += 1;
        } else {
            let i = ((x - self.lo) / (self.hi - self.lo) * self.bins.len() as f64) as usize;
            let last = self.bins.len() - 1;
            self.bins[i.min(last)] += 1;
        }
    }

    /// Total observations including under/overflow.
    pub fn total(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.under + self.over
    }

    /// Iterator of `(bin_midpoint, count)` pairs.
    pub fn bins(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + (i as f64 + 0.5) * w, c))
    }

    /// Under/overflow counts.
    pub fn outliers(&self) -> (u64, u64) {
        (self.under, self.over)
    }
}

/// A time-stamped series of scalar values (e.g. a queue length over time).
#[derive(Debug, Clone, Default)]
pub struct Series {
    points: Vec<(SimTime, f64)>,
}

impl Series {
    /// Appends a point; callers must append in non-decreasing time order.
    pub fn push(&mut self, t: SimTime, v: f64) {
        debug_assert!(self.points.last().is_none_or(|&(lt, _)| lt <= t));
        self.points.push((t, v));
    }

    /// All recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Last recorded value, if any.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.points.last().copied()
    }

    /// Time-weighted average over the recorded span (treats the series as a
    /// step function held between points).
    pub fn time_weighted_mean(&self) -> f64 {
        if self.points.len() < 2 {
            return self.points.first().map_or(0.0, |&(_, v)| v);
        }
        let mut area = 0.0;
        for w in self.points.windows(2) {
            let dt = (w[1].0 - w[0].0).as_secs_f64();
            area += w[0].1 * dt;
        }
        let span = (self.points[self.points.len() - 1].0 - self.points[0].0).as_secs_f64();
        if span == 0.0 {
            self.points[0].1
        } else {
            area / span
        }
    }
}

/// The shared sink all components record into.
///
/// Keys are interned `&'static str`s: recording under a `&str` name
/// allocates only the first time that name is ever seen (anywhere in
/// the process); after that, every touch is a pure map lookup. Reads
/// take plain `&str` and never intern.
#[derive(Debug, Default)]
pub struct StatsHub {
    counters: BTreeMap<&'static str, u64>,
    summaries: BTreeMap<&'static str, Summary>,
    series: BTreeMap<&'static str, Series>,
}

impl StatsHub {
    /// Creates an empty hub.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the named counter.
    pub fn incr(&mut self, name: impl Into<MetricKey>, n: u64) {
        *self.counters.entry(name.into().as_str()).or_insert(0) += n;
    }

    /// Reads a counter (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records a scalar observation into the named summary.
    pub fn observe(&mut self, name: impl Into<MetricKey>, x: f64) {
        self.summaries
            .entry(name.into().as_str())
            .or_insert_with(|| Summary::with_capacity(16_384))
            .record(x);
    }

    /// Reads a summary if present.
    pub fn summary(&self, name: &str) -> Option<&Summary> {
        self.summaries.get(name)
    }

    /// Mutable summary access (quantile reads sort lazily in place).
    pub fn summary_mut(&mut self, name: &str) -> Option<&mut Summary> {
        self.summaries.get_mut(name)
    }

    /// Appends to the named time series.
    pub fn sample(&mut self, name: impl Into<MetricKey>, t: SimTime, v: f64) {
        self.series
            .entry(name.into().as_str())
            .or_default()
            .push(t, v);
    }

    /// Reads a series if present.
    pub fn series(&self, name: &str) -> Option<&Series> {
        self.series.get(name)
    }

    /// Iterates all series (deterministic order), e.g. for plotting.
    pub fn all_series(&self) -> impl Iterator<Item = (&str, &Series)> {
        self.series.iter().map(|(&k, v)| (k, v))
    }

    /// Iterates all counters (deterministic order).
    pub fn all_counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(&k, &v)| (k, v))
    }

    /// Iterates all summaries (deterministic order).
    pub fn all_summaries(&self) -> impl Iterator<Item = (&str, &Summary)> {
        self.summaries.iter().map(|(&k, v)| (k, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_moments() {
        let mut s = Summary::with_capacity(1000);
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn summary_quantiles() {
        let mut s = Summary::with_capacity(10_000);
        for i in 0..1000 {
            s.record(i as f64);
        }
        assert!((s.quantile(0.5) - 499.0).abs() < 10.0);
        assert!((s.quantile(0.95) - 949.0).abs() < 15.0);
    }

    #[test]
    fn summary_thinning_keeps_stats_exact() {
        let mut s = Summary::with_capacity(64);
        for i in 0..10_000 {
            s.record(i as f64);
        }
        // Mean/min/max/count are exact regardless of sample thinning.
        assert_eq!(s.count(), 10_000);
        assert!((s.mean() - 4999.5).abs() < 1e-6);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 9999.0);
        // Quantiles remain sane.
        let med = s.quantile(0.5);
        assert!((med - 5000.0).abs() < 1500.0, "median {med}");
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.6, 9.9, -1.0, 10.0] {
            h.record(x);
        }
        assert_eq!(h.total(), 6);
        assert_eq!(h.outliers(), (1, 1));
        let bins: Vec<u64> = h.bins().map(|(_, c)| c).collect();
        assert_eq!(bins[0], 1);
        assert_eq!(bins[1], 2);
        assert_eq!(bins[9], 1);
    }

    #[test]
    fn series_time_weighted_mean() {
        let mut s = Series::default();
        s.push(SimTime::from_secs(0), 0.0);
        s.push(SimTime::from_secs(10), 10.0); // value 0 held for 10 s
        s.push(SimTime::from_secs(20), 0.0); // value 10 held for 10 s
        assert!((s.time_weighted_mean() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn hub_roundtrip() {
        let mut hub = StatsHub::new();
        hub.incr("requests", 3);
        hub.incr("requests", 2);
        assert_eq!(hub.counter("requests"), 5);
        hub.observe("latency", 1.0);
        hub.observe("latency", 3.0);
        assert_eq!(hub.summary("latency").unwrap().count(), 2);
        hub.sample("qlen", SimTime::from_secs(1), 4.0);
        assert_eq!(hub.series("qlen").unwrap().points().len(), 1);
        assert_eq!(hub.counter("missing"), 0);
    }
}
