//! Cross-shard boundary-queue equivalence: for any topology, traffic
//! pattern, lookahead window and fault plan, the parallel driver must
//! produce a [`ShardRun`] byte-identical to the sequential reference,
//! and a one-shard `ShardedSim` must reproduce a plain `Sim` run
//! exactly. Failures shrink to a minimal divergent word sequence via
//! the testkit's choice-stream shrinking.

use std::time::Duration;

use sns_testkit::{gens, props, tk_assert, tk_assert_eq};

use sns_sim::engine::{Component, Ctx, NodeSpec, Sim, SimConfig, Wire};
use sns_sim::network::IdealNetwork;
use sns_sim::time::SimTime;
use sns_sim::{ComponentId, Lane, PortId, ShardRun, ShardedSim, Uplink};

#[derive(Clone)]
struct Pkt(u64);
impl Wire for Pkt {
    fn wire_size(&self) -> u64 {
        128
    }
}

/// Each shard's border component: every packet either detours to a
/// local echo worker, parks in a timer, or crosses to a random uplink —
/// all RNG-driven, so the schedule depends on every prior delivery.
struct Gateway {
    ups: Vec<Uplink<Pkt>>,
    locals: Vec<ComponentId>,
}

impl Component<Pkt> for Gateway {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Pkt>, _from: ComponentId, msg: Pkt) {
        ctx.stats().incr("gw_hops", 1);
        if msg.0 == 0 {
            ctx.stats().incr("retired", 1);
            return;
        }
        match ctx.rng().below(4) {
            0 if !self.locals.is_empty() => {
                let k = ctx.rng().below(self.locals.len() as u64) as usize;
                ctx.send(self.locals[k], Pkt(msg.0 - 1));
            }
            1 => {
                let wait = Duration::from_micros(ctx.rng().below(5_000));
                ctx.timer(wait, msg.0 - 1);
            }
            _ => {
                let k = ctx.rng().below(self.ups.len() as u64) as usize;
                self.ups[k].send(ctx.now(), Pkt(msg.0 - 1));
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Pkt>, token: u64) {
        let k = ctx.rng().below(self.ups.len() as u64) as usize;
        self.ups[k].send(ctx.now(), Pkt(token));
    }
}

/// A local worker: burns a little CPU, then bounces the packet back to
/// whoever sent it. Killing echoes mid-run is the fault plan.
struct Echo;

impl Component<Pkt> for Echo {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Pkt>, from: ComponentId, msg: Pkt) {
        ctx.stats().incr("echoed", 1);
        let _ = ctx.exec_cpu(Duration::from_micros(20), msg.0);
        ctx.send(from, msg);
    }
}

/// Builds the random topology the words encode and runs it on the
/// given driver. Words decode to shard count, per-shard packet seeds
/// and a fault plan (echo kills at random times); the builder closures
/// and seeds are identical for both drivers, so any fingerprint
/// difference is a boundary-queue ordering bug.
fn run(words: &[u64], window_div: u32, parallel: bool) -> ShardRun {
    let shards = 2 + (words.first().copied().unwrap_or(0) % 3) as u32; // 2..=4
    let latency = Duration::from_millis(2);
    let mut ss: ShardedSim<Pkt, IdealNetwork> =
        ShardedSim::new(latency).with_window(latency / window_div);
    for _ in 0..shards {
        let words: Vec<u64> = words.to_vec();
        ss.add_shard(move |shard| {
            let sim = Sim::new(
                SimConfig::new().with_seed(0xe01 ^ u64::from(shard.0)),
                IdealNetwork::default(),
            );
            let mut lane = Lane::new(sim);
            let node = lane.sim().add_node(NodeSpec::new(2, "dedicated"));
            let locals: Vec<ComponentId> = (0..2)
                .map(|_| lane.sim().spawn(node, Box::new(Echo), "echo"))
                .collect();
            let ups: Vec<Uplink<Pkt>> = (0..shards)
                .filter(|&t| t != shard.0)
                .map(|t| lane.uplink(PortId(t)))
                .collect();
            let gw = lane
                .sim()
                .spawn(node, Box::new(Gateway { ups, locals }), "gateway");
            lane.bind(PortId(shard.0), gw);
            for (i, &w) in words.iter().enumerate() {
                if i as u32 % shards != shard.0 {
                    continue;
                }
                match w % 4 {
                    // A packet seeded onto this shard's gateway.
                    0..=2 => {
                        let at = SimTime::from_nanos(((w >> 8) % 100_000) * 1_000);
                        lane.sim().inject_at(at, gw, Pkt(2 + (w >> 4) % 40));
                    }
                    // A fault: kill one of the shard's echo workers.
                    _ => {
                        let at = SimTime::from_nanos((1 + (w >> 8) % 200_000) * 1_000);
                        let victim = ((w >> 3) % 2) as usize;
                        lane.sim().at(at, move |sim| {
                            if let Some(&v) = sim.components_of_kind("echo").get(victim) {
                                sim.kill_component(v);
                            }
                        });
                    }
                }
            }
            lane.set_report(|sim| {
                sim.stats()
                    .all_counters()
                    .map(|(k, v)| format!("{k}={v};"))
                    .collect()
            });
            lane
        });
    }
    let until = SimTime::from_secs(2);
    if parallel {
        ss.run_parallel(until)
    } else {
        ss.run_sequential(until)
    }
}

props! {
    /// Random topologies + fault plans: the parallel driver matches the
    /// sequential reference byte for byte at the widest safe window.
    fn parallel_matches_sequential_on_random_topologies(
        words in gens::vec(gens::any_u64(), 1..40),
    ) {
        let seq = run(&words, 1, false);
        let par = run(&words, 1, true);
        tk_assert_eq!(seq.fingerprint(), par.fingerprint());
        tk_assert!(seq.total_events() > 0);
    }

    /// Narrowing the lookahead window (more barriers per unit of virtual
    /// time) must not break driver equivalence either — window width may
    /// legally reorder same-timestamp ties, but never desynchronise the
    /// two drivers at the same width.
    fn window_width_never_desynchronises_the_drivers(
        words in gens::vec(gens::any_u64(), 1..24),
        div in gens::u64_in(1..5),
    ) {
        let seq = run(&words, div as u32, false);
        let par = run(&words, div as u32, true);
        tk_assert_eq!(seq.fingerprint(), par.fingerprint());
    }
}

/// A one-shard `ShardedSim` is a plain `Sim` run through the windowed
/// driver: same events dispatched, same counters, on both drivers.
#[test]
fn one_shard_lane_reproduces_a_plain_sim_run() {
    struct Chatter;
    impl Component<Pkt> for Chatter {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Pkt>) {
            ctx.timer(Duration::from_millis(1), 200);
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, Pkt>, _from: ComponentId, msg: Pkt) {
            ctx.stats().incr("notes", 1);
            if msg.0 > 0 {
                let wait = Duration::from_micros(ctx.rng().below(900));
                ctx.timer(wait, msg.0 - 1);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, Pkt>, token: u64) {
            let me = ctx.me();
            ctx.send(me, Pkt(token));
        }
    }
    let build = || {
        let mut sim: Sim<Pkt, IdealNetwork> =
            Sim::new(SimConfig::new().with_seed(0x0d0), IdealNetwork::default());
        let node = sim.add_node(NodeSpec::new(1, "dedicated"));
        sim.spawn(node, Box::new(Chatter), "chatter");
        sim
    };
    let until = SimTime::from_secs(2);

    let mut plain = build();
    plain.run_until(until);
    let plain_events = plain.events_dispatched();
    let plain_notes = plain.stats().counter("notes");
    assert!(plain_notes > 0, "the chatter must have chattered");

    for parallel in [false, true] {
        let mut ss: ShardedSim<Pkt, IdealNetwork> = ShardedSim::new(Duration::from_millis(1));
        ss.add_shard(move |_| {
            let mut lane = Lane::new(build());
            lane.set_report(|sim| format!("notes={}", sim.stats().counter("notes")));
            lane
        });
        let run = if parallel {
            ss.run_parallel(until)
        } else {
            ss.run_sequential(until)
        };
        assert_eq!(run.events, vec![plain_events], "driver parallel={parallel}");
        assert_eq!(run.reports, vec![format!("notes={plain_notes}")]);
        assert_eq!(run.boundary_routed, 0);
    }
}

/// Traffic still in flight at the horizon is accounted as boundary
/// residual — identically by both drivers — and the sum of routed and
/// residual messages is conserved.
#[test]
fn in_flight_boundary_traffic_is_counted_identically() {
    // An endless two-shard ping-pong: at any horizon there is exactly
    // one message either routed or pending.
    struct Pong {
        up: Uplink<Pkt>,
    }
    impl Component<Pkt> for Pong {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Pkt>, _from: ComponentId, msg: Pkt) {
            ctx.stats().incr("pongs", 1);
            self.up.send(ctx.now(), Pkt(msg.0 + 1));
        }
    }
    let build = |until: SimTime, parallel: bool| {
        let mut ss: ShardedSim<Pkt, IdealNetwork> = ShardedSim::new(Duration::from_millis(1));
        for _ in 0..2u32 {
            ss.add_shard(move |shard| {
                let sim = Sim::new(
                    SimConfig::new().with_seed(u64::from(shard.0)),
                    IdealNetwork::default(),
                );
                let mut lane = Lane::new(sim);
                let node = lane.sim().add_node(NodeSpec::new(1, "dedicated"));
                let up = lane.uplink(PortId(1 - shard.0));
                let pong = lane.sim().spawn(node, Box::new(Pong { up }), "pong");
                lane.bind(PortId(shard.0), pong);
                if shard.0 == 0 {
                    lane.sim().inject(pong, Pkt(0));
                }
                lane.set_report(|sim| format!("pongs={}", sim.stats().counter("pongs")));
                lane
            });
        }
        if parallel {
            ss.run_parallel(until)
        } else {
            ss.run_sequential(until)
        }
    };
    let until = SimTime::from_millis(500);
    let seq = build(until, false);
    let par = build(until, true);
    assert_eq!(seq.fingerprint(), par.fingerprint());
    // ~250 crossings in 500 ms of 1 ms hops; the final send is parked.
    assert!(seq.boundary_routed > 400, "routed {}", seq.boundary_routed);
    assert_eq!(seq.boundary_residual, 1, "one message in flight at cut");
}
