//! Property tests for the engine: timer ordering and clock monotonicity
//! under arbitrary schedules, deterministic replay, and statistics
//! invariants against naive recomputation.

use std::time::Duration;

use sns_testkit::{gens, props, tk_assert, tk_assert_eq, tk_assume};

use sns_sim::engine::{Component, Ctx, NodeSpec, Sim, SimConfig, Wire};
use sns_sim::network::IdealNetwork;
use sns_sim::stats::Summary;
use sns_sim::time::SimTime;
use sns_sim::ComponentId;

#[derive(Clone)]
struct Nop;
impl Wire for Nop {
    fn wire_size(&self) -> u64 {
        8
    }
}

/// Records the (time, token) sequence its timers fire in.
struct TimerProbe {
    delays_ms: Vec<u64>,
}

impl Component<Nop> for TimerProbe {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Nop>) {
        for (i, &d) in self.delays_ms.iter().enumerate() {
            ctx.timer(Duration::from_millis(d), i as u64);
        }
    }
    fn on_message(&mut self, _: &mut Ctx<'_, Nop>, _: ComponentId, _: Nop) {}
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Nop>, token: u64) {
        let now = ctx.now();
        ctx.stats().sample("fired", now, token as f64);
    }
}

props! {
    fn timers_fire_in_time_order_with_fifo_ties(
        delays in gens::vec(gens::u64_in(0..500), 1..40),
    ) {
        let mut sim: Sim<Nop, IdealNetwork> =
            Sim::new(SimConfig::default(), IdealNetwork::default());
        let n = sim.add_node(NodeSpec::new(1, "d"));
        sim.spawn(n, Box::new(TimerProbe { delays_ms: delays.clone() }), "probe");
        sim.run();
        let fired = sim.stats().series("fired").unwrap().points().to_vec();
        tk_assert_eq!(fired.len(), delays.len());
        // Non-decreasing fire times…
        tk_assert!(fired.windows(2).all(|w| w[0].0 <= w[1].0));
        // …each token at exactly its requested time…
        for &(at, token) in &fired {
            tk_assert_eq!(at, SimTime::from_millis(delays[token as usize]));
        }
        // …and equal-time timers in scheduling (FIFO) order.
        for w in fired.windows(2) {
            if w[0].0 == w[1].0 {
                tk_assert!(w[0].1 < w[1].1, "ties must fire in scheduling order");
            }
        }
    }

    fn replay_is_deterministic_for_any_seed(
        seed in gens::any_u64(),
        delays in gens::vec(gens::u64_in(0..100), 1..20),
    ) {
        let run = || {
            let mut sim: Sim<Nop, IdealNetwork> = Sim::new(
                SimConfig { seed, ..Default::default() },
                IdealNetwork::default(),
            );
            let n = sim.add_node(NodeSpec::new(2, "d"));
            sim.spawn(n, Box::new(TimerProbe { delays_ms: delays.clone() }), "probe");
            sim.run();
            (sim.now(), sim.events_dispatched())
        };
        tk_assert_eq!(run(), run());
    }

    fn summary_matches_naive_statistics(
        xs in gens::vec(gens::f64_in(-1e6..1e6), 1..300),
    ) {
        let mut s = Summary::with_capacity(1024);
        for &x in &xs {
            s.record(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        tk_assert_eq!(s.count(), xs.len() as u64);
        tk_assert!((s.mean() - mean).abs() <= 1e-6 * mean.abs().max(1.0));
        tk_assert!((s.stddev() - var.sqrt()).abs() <= 1e-5 * var.sqrt().max(1.0));
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        tk_assert_eq!(s.min(), min);
        tk_assert_eq!(s.max(), max);
    }

    fn rng_below_is_always_in_bounds(
        seed in gens::any_u64(),
        bound in gens::u64_in(1..1_000_000),
    ) {
        let mut rng = sns_sim::rng::Pcg32::new(seed);
        for _ in 0..100 {
            tk_assert!(rng.below(bound) < bound);
        }
    }

    fn weighted_never_picks_zero_weight(
        seed in gens::any_u64(),
        weights in gens::vec(gens::f64_in(0.0..10.0), 2..12),
    ) {
        tk_assume!(weights.iter().any(|&w| w > 0.0));
        let mut rng = sns_sim::rng::Pcg32::new(seed);
        for _ in 0..50 {
            let i = rng.weighted(&weights);
            tk_assert!(weights[i] > 0.0, "picked zero-weight index {i}");
        }
    }
}
