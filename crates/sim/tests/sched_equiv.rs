//! Cross-scheduler equivalence: the heap baseline and the timer wheel
//! must produce bit-identical pop order — `(time, seq, item)` — for any
//! operation sequence, and the engine must deliver bit-identical runs
//! on either. Failures shrink to a minimal divergent op sequence via
//! the testkit's choice-stream shrinking.

use std::time::Duration;

use sns_testkit::{gens, props, tk_assert, tk_assert_eq};

use sns_sim::engine::{Component, Ctx, NodeSpec, Sim, SimConfig, Wire};
use sns_sim::network::IdealNetwork;
use sns_sim::sched::{HeapScheduler, Scheduler, SchedulerKind, WheelScheduler};
use sns_sim::time::SimTime;
use sns_sim::ComponentId;

#[derive(Clone)]
struct Nop;
impl Wire for Nop {
    fn wire_size(&self) -> u64 {
        8
    }
}

/// One scheduler-level operation, decoded from a raw generator word so
/// the whole sequence shrinks as a flat `Vec<u64>`.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Push one entry `delay` ns after the last popped time.
    Push { delay: u64 },
    /// Cancel the k-th currently pending entry (skipped when none).
    Cancel { k: usize },
    /// Pop once and compare both schedulers.
    Pop,
    /// `every_until`-shaped burst: `n` entries at a fixed period.
    Burst { n: u64, period: u64 },
}

fn decode(word: u64) -> Op {
    // Delays span every wheel level and the overflow heap: an exponent
    // up to 2^53 ns crosses the ~2^52 ns wheel span.
    let delay = |w: u64| {
        let exp = (w >> 8) % 54;
        (w >> 16) % (1u64 << exp).max(1)
    };
    match word % 8 {
        0..=2 => Op::Push { delay: delay(word) },
        3 => Op::Cancel {
            k: (word >> 3) as usize,
        },
        4..=5 => Op::Pop,
        6 => Op::Burst {
            n: 2 + (word >> 3) % 12,
            period: 1 + delay(word >> 7) % 1_000_000_000,
        },
        _ => Op::Pop,
    }
}

props! {
    /// Identical `(time, seq, item)` pop order for arbitrary
    /// schedule/cancel/burst sequences across both implementations.
    fn heap_and_wheel_pop_identically(
        words in gens::vec(gens::any_u64(), 1..120),
    ) {
        let mut heap: HeapScheduler<u64> = HeapScheduler::new();
        let mut wheel: WheelScheduler<u64> = WheelScheduler::new();
        let mut pending: Vec<u64> = Vec::new(); // live seqs, push order
        let mut seq = 0u64;
        let mut now = SimTime::ZERO;
        let mut popped = Vec::new();
        for (i, &word) in words.iter().enumerate() {
            match decode(word) {
                Op::Push { delay } => {
                    let at = SimTime::from_nanos(now.as_nanos().saturating_add(delay));
                    seq += 1;
                    heap.push(at, seq, word ^ i as u64);
                    wheel.push(at, seq, word ^ i as u64);
                    pending.push(seq);
                }
                Op::Cancel { k } => {
                    if !pending.is_empty() {
                        let victim = pending.remove(k % pending.len());
                        heap.cancel(victim);
                        wheel.cancel(victim);
                    }
                }
                Op::Pop => {
                    tk_assert_eq!(heap.peek(), wheel.peek());
                    let h = heap.pop();
                    let w = wheel.pop();
                    tk_assert_eq!(h, w);
                    if let Some((at, s, _)) = h {
                        now = at;
                        pending.retain(|&p| p != s);
                        popped.push((at, s));
                    }
                }
                Op::Burst { n, period } => {
                    for j in 1..=n {
                        let at = SimTime::from_nanos(
                            now.as_nanos().saturating_add(j.saturating_mul(period)),
                        );
                        seq += 1;
                        heap.push(at, seq, j);
                        wheel.push(at, seq, j);
                        pending.push(seq);
                    }
                }
            }
            tk_assert_eq!(heap.len(), wheel.len());
        }
        // Drain both to the end.
        loop {
            let h = heap.pop();
            let w = wheel.pop();
            tk_assert_eq!(h, w);
            let Some((at, s, _)) = h else { break };
            popped.push((at, s));
        }
        tk_assert!(heap.is_empty() && wheel.is_empty());
        // The merged pop order is (time, seq)-sorted: times never
        // decrease, and equal times pop FIFO by seq.
        tk_assert!(popped.windows(2).all(|p| {
            p[0].0 < p[1].0 || (p[0].0 == p[1].0 && p[0].1 < p[1].1)
        }));
    }

    /// Whole-engine equivalence: the same seeded run delivers the same
    /// `(time, token)` firing log on either scheduler, including timers
    /// re-armed with zero delay (fires at the *current* timestamp,
    /// inside the wheel's dispatch batch).
    fn engine_runs_identically_on_both_schedulers(
        seed in gens::any_u64(),
        delays in gens::vec(gens::u64_in(0..2_000), 1..30),
    ) {
        struct Probe {
            delays_ms: Vec<u64>,
        }
        impl Component<Nop> for Probe {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Nop>) {
                for (i, &d) in self.delays_ms.iter().enumerate() {
                    ctx.timer(Duration::from_millis(d), i as u64);
                }
            }
            fn on_message(&mut self, _: &mut Ctx<'_, Nop>, _: ComponentId, _: Nop) {}
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Nop>, token: u64) {
                let now = ctx.now();
                ctx.stats().sample("fired", now, token as f64);
                // Sometimes re-arm at the current timestamp, sometimes a
                // little later; the RNG stream is part of the replayed
                // state so both schedulers see identical choices.
                if token < 600 {
                    let bump = if ctx.rng().chance(0.3) {
                        Duration::ZERO
                    } else {
                        Duration::from_millis(ctx.rng().below(50))
                    };
                    ctx.timer(bump, token + 100);
                }
            }
        }
        let run = |kind: SchedulerKind| {
            let mut sim: Sim<Nop, IdealNetwork> = Sim::new(
                SimConfig { seed, scheduler: kind, ..Default::default() },
                IdealNetwork::default(),
            );
            let n = sim.add_node(NodeSpec::new(1, "d"));
            sim.spawn(n, Box::new(Probe { delays_ms: delays.clone() }), "probe");
            sim.run_until(SimTime::from_secs(60));
            (
                sim.now(),
                sim.events_dispatched(),
                sim.stats().series("fired").map(|s| s.points().to_vec()),
            )
        };
        tk_assert_eq!(run(SchedulerKind::Heap), run(SchedulerKind::Wheel));
    }
}

/// Regression: FIFO-by-seq at equal `SimTime`, including an event
/// scheduled *during* delivery at the current timestamp — wheel
/// batching must slot it after everything already pending at that
/// time, exactly like the heap does.
#[test]
fn same_timestamp_events_fire_fifo_including_mid_delivery_schedules() {
    struct Probe;
    impl Component<Nop> for Probe {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Nop>) {
            ctx.timer(Duration::from_millis(1), 0);
            ctx.timer(Duration::from_millis(1), 1);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, Nop>, _: ComponentId, _: Nop) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, Nop>, token: u64) {
            let now = ctx.now();
            ctx.stats().sample("order", now, token as f64);
            if token == 0 {
                // Scheduled mid-delivery at the current timestamp: must
                // fire after token 1, which was already pending.
                ctx.timer(Duration::ZERO, 2);
            }
        }
    }
    for kind in [SchedulerKind::Heap, SchedulerKind::Wheel] {
        let mut sim: Sim<Nop, IdealNetwork> = Sim::new(
            SimConfig {
                scheduler: kind,
                ..Default::default()
            },
            IdealNetwork::default(),
        );
        let n = sim.add_node(NodeSpec::new(1, "d"));
        sim.spawn(n, Box::new(Probe), "probe");
        sim.run();
        let fired = sim.stats().series("order").unwrap().points().to_vec();
        let t = SimTime::from_millis(1);
        assert_eq!(
            fired,
            vec![(t, 0.0), (t, 1.0), (t, 2.0)],
            "{kind:?}: same-timestamp events must fire FIFO by seq"
        );
    }
}
