//! Property tests for the TACC layer: args merging, variant hashing and
//! pipeline-prefix caching discipline.

use std::collections::BTreeMap;
use std::sync::Arc;

use sns_testkit::{gens, props, tk_assert_eq, tk_assert_ne, tk_assume, Gen};

use sns_tacc::pipeline::PipelineSpec;
use sns_tacc::worker::TaccArgs;

fn kv_map() -> Gen<BTreeMap<String, String>> {
    gens::btree_map(
        gens::string("[a-z]{1,6}"),
        gens::string("[a-z0-9]{0,6}"),
        0..6,
    )
}

fn stages() -> Gen<Vec<String>> {
    gens::vec(gens::string("[a-z]{1,8}"), 0..5)
}

props! {
    fn profile_always_wins_over_defaults(defaults in kv_map(), profile in kv_map()) {
        let merged = TaccArgs::merged(&defaults, Some(&Arc::new(profile.clone())));
        for (k, v) in &profile {
            tk_assert_eq!(merged.get(k), Some(v.as_str()));
        }
        for (k, v) in &defaults {
            if !profile.contains_key(k) {
                tk_assert_eq!(merged.get(k), Some(v.as_str()));
            }
        }
    }

    fn variant_hash_is_stable_and_never_original(
        map in kv_map(),
        worker in gens::string("[a-z]{1,8}"),
    ) {
        let a = TaccArgs::from_map(map.clone());
        let b = TaccArgs::from_map(map);
        tk_assert_eq!(a.variant_hash(&worker), b.variant_hash(&worker));
        tk_assert_ne!(a.variant_hash(&worker), 0, "0 is reserved for originals");
    }

    fn pipeline_prefixes_share_variants_with_shorter_pipelines(
        st in stages(),
        map in kv_map(),
    ) {
        let args = TaccArgs::from_map(map);
        let full = PipelineSpec::of(&st.iter().map(String::as_str).collect::<Vec<_>>());
        for cut in 0..=st.len() {
            let shorter = PipelineSpec::of(
                &st[..cut].iter().map(String::as_str).collect::<Vec<_>>(),
            );
            tk_assert_eq!(
                shorter.final_variant(&args),
                full.variant_of_prefix(cut, &args),
                "prefix {} must cache under the same variant",
                cut
            );
        }
    }

    fn composition_is_associative_for_arbitrary_pipelines(
        a in stages(), b in stages(), c in stages(),
    ) {
        let p = |v: &Vec<String>| {
            PipelineSpec::of(&v.iter().map(String::as_str).collect::<Vec<_>>())
        };
        let left = p(&a).compose(&p(&b)).compose(&p(&c));
        let right = p(&a).compose(&p(&b).compose(&p(&c)));
        tk_assert_eq!(left, right);
    }

    fn distinct_stage_orders_get_distinct_variants(
        st in gens::vec(gens::string("[a-z]{2,6}"), 2..5),
        map in kv_map(),
    ) {
        let mut st = st;
        st.dedup();
        tk_assume!(st.len() >= 2);
        let args = TaccArgs::from_map(map);
        let fwd = PipelineSpec::of(&st.iter().map(String::as_str).collect::<Vec<_>>());
        let mut rev_stages = st.clone();
        rev_stages.reverse();
        tk_assume!(rev_stages != st);
        let rev = PipelineSpec::of(&rev_stages.iter().map(String::as_str).collect::<Vec<_>>());
        tk_assert_ne!(fwd.final_variant(&args), rev.final_variant(&args));
    }
}
