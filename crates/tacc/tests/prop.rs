//! Property tests for the TACC layer: args merging, variant hashing and
//! pipeline-prefix caching discipline.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use sns_tacc::pipeline::PipelineSpec;
use sns_tacc::worker::TaccArgs;

fn kv_map() -> impl Strategy<Value = BTreeMap<String, String>> {
    proptest::collection::btree_map("[a-z]{1,6}", "[a-z0-9]{0,6}", 0..6)
}

fn stages() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::vec("[a-z]{1,8}", 0..5)
}

proptest! {
    #[test]
    fn profile_always_wins_over_defaults(defaults in kv_map(), profile in kv_map()) {
        let merged = TaccArgs::merged(&defaults, Some(&Arc::new(profile.clone())));
        for (k, v) in &profile {
            prop_assert_eq!(merged.get(k), Some(v.as_str()));
        }
        for (k, v) in &defaults {
            if !profile.contains_key(k) {
                prop_assert_eq!(merged.get(k), Some(v.as_str()));
            }
        }
    }

    #[test]
    fn variant_hash_is_stable_and_never_original(map in kv_map(), worker in "[a-z]{1,8}") {
        let a = TaccArgs::from_map(map.clone());
        let b = TaccArgs::from_map(map);
        prop_assert_eq!(a.variant_hash(&worker), b.variant_hash(&worker));
        prop_assert_ne!(a.variant_hash(&worker), 0, "0 is reserved for originals");
    }

    #[test]
    fn pipeline_prefixes_share_variants_with_shorter_pipelines(
        st in stages(),
        map in kv_map(),
    ) {
        let args = TaccArgs::from_map(map);
        let full = PipelineSpec::of(&st.iter().map(String::as_str).collect::<Vec<_>>());
        for cut in 0..=st.len() {
            let shorter = PipelineSpec::of(
                &st[..cut].iter().map(String::as_str).collect::<Vec<_>>(),
            );
            prop_assert_eq!(
                shorter.final_variant(&args),
                full.variant_of_prefix(cut, &args),
                "prefix {} must cache under the same variant",
                cut
            );
        }
    }

    #[test]
    fn composition_is_associative_for_arbitrary_pipelines(
        a in stages(), b in stages(), c in stages(),
    ) {
        let p = |v: &Vec<String>| PipelineSpec::of(&v.iter().map(String::as_str).collect::<Vec<_>>());
        let left = p(&a).compose(&p(&b)).compose(&p(&c));
        let right = p(&a).compose(&p(&b).compose(&p(&c)));
        prop_assert_eq!(left, right);
    }

    #[test]
    fn distinct_stage_orders_get_distinct_variants(
        mut st in proptest::collection::vec("[a-z]{2,6}", 2..5),
        map in kv_map(),
    ) {
        st.dedup();
        prop_assume!(st.len() >= 2);
        let args = TaccArgs::from_map(map);
        let fwd = PipelineSpec::of(&st.iter().map(String::as_str).collect::<Vec<_>>());
        let mut rev_stages = st.clone();
        rev_stages.reverse();
        prop_assume!(rev_stages != st);
        let rev = PipelineSpec::of(&rev_stages.iter().map(String::as_str).collect::<Vec<_>>());
        prop_assert_ne!(fwd.final_variant(&args), rev.final_variant(&args));
    }
}
