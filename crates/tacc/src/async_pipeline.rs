//! A multi-stage TACC worker path as one `async fn`: fetch → distill →
//! aggregate → cache → reply, in a single readable body.
//!
//! The legacy equivalent of [`PipelineService`] is a per-request state
//! machine spread across tag constants and `on_event` arms (see
//! `sns_transend::logic::TranSendLogic` for the production-sized
//! version). Here the same control flow reads top to bottom, and the
//! paper's tactics become library calls:
//!
//! * **give-up** (§3.1.8 "serve approximate answers fast") is
//!   [`sns_core::exec::timeout`] around a stage, with a framework nap
//!   as the deadline;
//! * **hedged retry** is [`sns_core::exec::race`] between the primary
//!   dispatch and a delayed backup — the loser is dropped, which
//!   releases its await slot (the reply, if any, is ignored like the
//!   legacy early-return arms);
//! * **fan-in** over source fetches is [`sns_core::exec::select_some`],
//!   which resolves strictly in arrival order.
//!
//! The body runs unmodified on both backends: behind the sim front end
//! via [`sns_core::exec::service::AsyncSvcLogic`] (virtual time), and
//! against a live `sns_rt` cluster via its wall-clock driver
//! (`sns_rt::exec::serve` — a downstream crate, hence not linkable).

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use sns_cache::CacheKey;
use sns_core::exec::service::{AsyncService, EventOutcome, SvcHandle};
use sns_core::exec::{race, select_some, timeout, BoxFut, Either};
use sns_core::msg::{ClientRequest, JobResult, ProfileData};
use sns_core::{payload_as, AppData, WorkerClass};
use sns_workload::MimeType;

use crate::cache_worker::{CacheInject, CacheWorker};
use crate::content::ContentObject;
use crate::origin::{FetchRequest, OriginServer};
use crate::pipeline::PipelineSpec;
use crate::worker::{AggregateRequest, TaccArgs};

/// A pipeline request: sources to fetch and per-request arguments
/// (normally derived from the user's customisation profile).
#[derive(Debug, Clone)]
pub struct PipelineJob {
    /// Pages to fetch and push through the stage chain.
    pub sources: Vec<FetchRequest>,
    /// Distillation arguments (quality, scale, keywords, …).
    pub args: BTreeMap<String, String>,
}

impl AppData for PipelineJob {
    fn wire_size(&self) -> u64 {
        self.sources.iter().map(|s| s.wire_size()).sum::<u64>()
            + self
                .args
                .iter()
                .map(|(k, v)| (k.len() + v.len() + 8) as u64)
                .sum::<u64>()
            + 16
    }
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Service knobs.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Distiller stage chain (class becomes `distiller/<stage>`).
    pub stages: Vec<String>,
    /// Aggregator collating multi-source results (class becomes
    /// `aggregator/<name>`); `None` replies with the first object.
    pub aggregator: Option<String>,
    /// Per-stage give-up deadline: past it the stage result is
    /// abandoned and the request degrades (BASE).
    pub give_up: Duration,
    /// Hedged-retry delay: a backup dispatch launches if the primary
    /// has not answered by then.
    pub hedge_after: Duration,
    /// Whether the final object is injected into the cache class.
    pub cache_final: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            stages: vec!["gif".into()],
            aggregator: None,
            give_up: Duration::from_secs(8),
            hedge_after: Duration::from_secs(2),
            cache_final: true,
        }
    }
}

/// The three-stage TACC pipeline as an [`AsyncService`].
pub struct PipelineService {
    cfg: PipelineConfig,
}

impl PipelineService {
    /// Creates the service.
    pub fn new(cfg: PipelineConfig) -> Self {
        PipelineService { cfg }
    }
}

impl AsyncService for PipelineService {
    fn handle(&mut self, request: Arc<ClientRequest>, svc: SvcHandle) -> BoxFut {
        let cfg = self.cfg.clone();
        Box::pin(run(cfg, request, svc))
    }
}

/// One distill stage, hedged and bounded: race the primary dispatch
/// against a delayed backup, give the pair up after `give_up`.
async fn distill_stage(
    svc: &SvcHandle,
    stage: &str,
    input: ContentObject,
    profile: Option<ProfileData>,
    hedge_after: Duration,
    give_up: Duration,
) -> Option<ContentObject> {
    let class = WorkerClass::new(format!("distiller/{stage}"));
    let primary = svc.dispatch(
        class.clone(),
        "transform",
        input.clone().into_payload(),
        profile.clone(),
    );
    let hedge_svc = svc.clone();
    let hedge: BoxFut<EventOutcome> = Box::pin(async move {
        hedge_svc.nap(hedge_after).await;
        hedge_svc.incr("tacc.pipe_hedges", 1);
        hedge_svc
            .dispatch(class, "transform", input.into_payload(), profile)
            .await
    });
    let outcome = timeout(race(primary, hedge), svc.nap(give_up)).await;
    match outcome {
        Some(Either::Left(o)) | Some(Either::Right(o)) => match o {
            EventOutcome::Reply(JobResult::Ok(p)) => ContentObject::from_payload(&p).cloned(),
            _ => None,
        },
        None => {
            svc.incr("tacc.pipe_gave_up", 1);
            None
        }
    }
}

/// One pipeline request, top to bottom.
async fn run(cfg: PipelineConfig, req: Arc<ClientRequest>, svc: SvcHandle) {
    svc.incr("tacc.pipe_requests", 1);
    let job = req
        .body
        .as_ref()
        .and_then(|b| payload_as::<PipelineJob>(b).cloned())
        .unwrap_or(PipelineJob {
            sources: vec![FetchRequest {
                url: req.url.clone(),
                mime: MimeType::Gif,
                size: 32 * 1024,
            }],
            args: BTreeMap::new(),
        });
    let args = TaccArgs::from_map(job.args.clone());
    let profile: Option<ProfileData> = Some(Arc::new(args.as_map().clone()));

    // Fetch: fan out to the origin, collect in arrival order; missing
    // sources degrade the answer instead of failing it.
    let mut fetches: Vec<Option<_>> = job
        .sources
        .iter()
        .map(|src| {
            Some(svc.dispatch(
                OriginServer::CLASS.into(),
                "fetch",
                Arc::new(src.clone()),
                None,
            ))
        })
        .collect();
    let mut objs: Vec<ContentObject> = Vec::new();
    let mut remaining = job.sources.len();
    while remaining > 0 {
        let (_, outcome) = select_some(&mut fetches).await;
        remaining -= 1;
        match outcome
            .ok_payload()
            .and_then(|p| ContentObject::from_payload(p).cloned())
        {
            Some(obj) => objs.push(obj),
            None => {
                svc.incr("tacc.pipe_source_missing", 1);
                svc.mark_degraded();
            }
        }
    }
    if objs.is_empty() {
        svc.incr("tacc.pipe_errors", 1);
        svc.reply(Err("no sources reachable".into()));
        return;
    }

    // Distill: every object through the stage chain; a failed or
    // gave-up stage keeps the object as-is, degraded (§3.1.8).
    for obj in objs.iter_mut() {
        for stage in &cfg.stages {
            match distill_stage(
                &svc,
                stage,
                obj.clone(),
                profile.clone(),
                cfg.hedge_after,
                cfg.give_up,
            )
            .await
            {
                Some(next) => *obj = next,
                None => {
                    svc.incr("tacc.pipe_stage_degraded", 1);
                    svc.mark_degraded();
                    break;
                }
            }
        }
    }

    // Aggregate: collate multi-source results; an unreachable
    // aggregator degrades to the first object.
    if let (Some(agg), true) = (&cfg.aggregator, objs.len() > 1) {
        let pending = svc.dispatch(
            WorkerClass::new(format!("aggregator/{agg}")),
            "aggregate",
            Arc::new(AggregateRequest {
                inputs: objs.clone(),
            }),
            profile.clone(),
        );
        match timeout(pending, svc.nap(cfg.give_up)).await {
            Some(EventOutcome::Reply(JobResult::Ok(p))) => {
                svc.incr("tacc.pipe_aggregated", 1);
                if cfg.cache_final {
                    if let Some(obj) = ContentObject::from_payload(&p) {
                        inject(&svc, &cfg, &args, obj.clone());
                    }
                }
                svc.observe("tacc.pipe_response_bytes", p.wire_size() as f64);
                svc.reply(Ok(p));
                return;
            }
            _ => {
                svc.incr("tacc.pipe_agg_degraded", 1);
                svc.mark_degraded();
            }
        }
    }

    // Cache + reply.
    let final_obj = objs.into_iter().next().expect("objs checked non-empty");
    if cfg.cache_final {
        inject(&svc, &cfg, &args, final_obj.clone());
    }
    svc.observe("tacc.pipe_response_bytes", final_obj.len() as f64);
    svc.reply(Ok(final_obj.into_payload()));
}

/// Fire-and-forget cache injection: the `Pending` is dropped at once,
/// so the dispatch runs but nobody awaits the ack.
fn inject(svc: &SvcHandle, cfg: &PipelineConfig, args: &TaccArgs, object: ContentObject) {
    let stages: Vec<&str> = cfg.stages.iter().map(String::as_str).collect();
    let variant = PipelineSpec::of(&stages).final_variant(args);
    let key = CacheKey::variant(&object.url, variant);
    drop(svc.dispatch(
        CacheWorker::CLASS.into(),
        "inject",
        Arc::new(CacheInject { key, object }),
        None,
    ));
}
