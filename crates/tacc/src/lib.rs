//! # sns-tacc — the TACC programming model (§2.3)
//!
//! TACC = **T**ransformation, **A**ggregation, **C**aching,
//! **C**ustomization: the middle layer of the paper's architecture.
//! Service authors write *stateless, composable* workers; the SNS layer
//! runs them. This crate provides:
//!
//! * [`content::ContentObject`] — the unit of data TACC workers operate
//!   on (real text for HTML, synthetic byte/dimension models for
//!   images);
//! * [`worker::TaccWorker`] / [`worker::Aggregator`] — the two building
//!   block traits ("Transformation is an operation on a single data
//!   object … Aggregation involves collecting data from several
//!   objects");
//! * [`worker::TaccArgs`] — per-request arguments derived from the user's
//!   customisation profile, delivered to workers with each job ("the
//!   appropriate profile information is automatically delivered to
//!   workers along with the input data"), plus the variant hash used to
//!   cache post-transformation content;
//! * [`pipeline::PipelineSpec`] — Unix-pipeline-like chaining of
//!   transformations (§2.3);
//! * adapters wiring the substrate crates into SNS worker classes:
//!   [`cache_worker::CacheWorker`] (a Harvest-style cache partition),
//!   [`profile_worker::ProfileWorker`] (the ACID customisation DB) and
//!   [`origin::OriginServer`] (the simulated Internet, with the §4.4
//!   miss-penalty distribution).

#![warn(missing_docs)]

pub mod async_pipeline;
pub mod cache_worker;
pub mod content;
pub mod origin;
pub mod pipeline;
pub mod profile_worker;
pub mod worker;

pub use async_pipeline::{PipelineConfig, PipelineJob, PipelineService};
pub use cache_worker::{CacheGet, CacheGetResult, CacheInject, CacheWorker};
pub use content::{Body, ContentObject};
pub use origin::{FetchRequest, OriginServer};
pub use pipeline::PipelineSpec;
pub use profile_worker::{ProfileGet, ProfilePut, ProfileReply, ProfileWorker};
pub use worker::{Aggregator, TaccArgs, TaccError, TaccWorker, TaccWorkerHost};
