//! The unit of data TACC workers transform.
//!
//! HTML content is carried as **real text** (the HTML distiller and the
//! keyword filter do genuine string processing); image content is a
//! synthetic model (byte length, pixel dimensions, quality) because the
//! paper's image corpus is unavailable and every measurement that
//! involves images depends only on sizes and costs, not pixel values.

use std::any::Any;
use std::collections::BTreeMap;
use std::sync::Arc;

use sns_core::{AppData, Payload};
use sns_workload::MimeType;

/// Content body representations.
#[derive(Debug, Clone, PartialEq)]
pub enum Body {
    /// Real text (HTML and other text types).
    Text(String),
    /// Synthetic binary content: length plus an image-dimension model.
    Synthetic {
        /// Byte length.
        len: u64,
        /// Pixel width.
        width: u32,
        /// Pixel height.
        height: u32,
    },
}

impl Body {
    /// Byte length of the body.
    pub fn len(&self) -> u64 {
        match self {
            Body::Text(t) => t.len() as u64,
            Body::Synthetic { len, .. } => *len,
        }
    }

    /// Whether the body is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A (possibly transformed) content object.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentObject {
    /// Source URL.
    pub url: String,
    /// MIME type.
    pub mime: MimeType,
    /// The body.
    pub body: Body,
    /// Remaining quality in `(0, 1]` (1 = original; distillation
    /// reduces it).
    pub quality: f64,
    /// Which transformations produced this variant, in order.
    pub lineage: Vec<String>,
    /// Free-form metadata (e.g. extracted dates for aggregators).
    pub meta: BTreeMap<String, String>,
}

impl ContentObject {
    /// An original (untransformed) object with a synthetic body sized to
    /// plausible image dimensions.
    pub fn synthetic(url: impl Into<String>, mime: MimeType, len: u64) -> Self {
        // Rough dimension model: bytes-per-pixel by type (GIF ~0.35
        // compressed, JPEG ~0.12 at web quality), 4:3 aspect.
        let bpp = match mime {
            MimeType::Gif => 0.35,
            MimeType::Jpeg => 0.12,
            _ => 0.25,
        };
        let pixels = (len as f64 / bpp).max(64.0);
        let width = (pixels * 4.0 / 3.0).sqrt().round() as u32;
        let height = (pixels / width.max(1) as f64).round() as u32;
        ContentObject {
            url: url.into(),
            mime,
            body: Body::Synthetic {
                len,
                width: width.max(1),
                height: height.max(1),
            },
            quality: 1.0,
            lineage: Vec::new(),
            meta: BTreeMap::new(),
        }
    }

    /// An original text object.
    pub fn text(url: impl Into<String>, mime: MimeType, text: impl Into<String>) -> Self {
        ContentObject {
            url: url.into(),
            mime,
            body: Body::Text(text.into()),
            quality: 1.0,
            lineage: Vec::new(),
            meta: BTreeMap::new(),
        }
    }

    /// Byte length of the body.
    pub fn len(&self) -> u64 {
        self.body.len()
    }

    /// Whether the body is empty.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }

    /// Wraps into a shared SNS payload.
    pub fn into_payload(self) -> Payload {
        Arc::new(self)
    }

    /// Extracts a content object from a payload.
    pub fn from_payload(p: &Payload) -> Option<&ContentObject> {
        sns_core::payload_as::<ContentObject>(p)
    }
}

impl AppData for ContentObject {
    fn wire_size(&self) -> u64 {
        self.len() + self.url.len() as u64 + 32
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Generates a deterministic synthetic HTML page: a title, some prose and
/// `n_images` inline image references — enough structure for the HTML
/// distiller and keyword filter to do real work.
pub fn synth_html(url: &str, n_images: usize, words: &[&str]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(
        out,
        "<html><head><title>Page {url}</title></head><body>\n<h1>{url}</h1>\n"
    );
    for (i, chunk) in words.chunks(12).enumerate() {
        let _ = writeln!(out, "<p>{}</p>", chunk.join(" "));
        if i < n_images {
            let _ = writeln!(
                out,
                "<img src=\"{url}/img{i}.gif\" width=\"320\" height=\"240\">"
            );
        }
    }
    // Any remaining images the prose didn't interleave.
    for i in words.chunks(12).len()..n_images {
        let _ = writeln!(
            out,
            "<img src=\"{url}/img{i}.gif\" width=\"320\" height=\"240\">"
        );
    }
    out.push_str("</body></html>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_dimensions_scale_with_size() {
        let small = ContentObject::synthetic("u", MimeType::Gif, 500);
        let big = ContentObject::synthetic("u", MimeType::Gif, 50_000);
        let (Body::Synthetic { width: w1, .. }, Body::Synthetic { width: w2, .. }) =
            (&small.body, &big.body)
        else {
            panic!("synthetic bodies");
        };
        assert!(w2 > w1);
        assert_eq!(small.len(), 500);
        assert_eq!(small.quality, 1.0);
    }

    #[test]
    fn payload_roundtrip() {
        let obj = ContentObject::text("http://x", MimeType::Html, "<html></html>");
        let p = obj.clone().into_payload();
        assert_eq!(ContentObject::from_payload(&p), Some(&obj));
        assert!(p.wire_size() >= obj.len());
    }

    #[test]
    fn synth_html_contains_images_and_parses() {
        let words: Vec<&str> = "the quick brown fox jumps over a lazy dog again and again"
            .split(' ')
            .collect();
        let html = synth_html("http://h/p", 3, &words);
        assert_eq!(html.matches("<img ").count(), 3);
        assert!(html.contains("<title>"));
        assert!(html.ends_with("</body></html>\n"));
    }
}
