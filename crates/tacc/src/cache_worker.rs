//! A cache partition as an SNS worker (§3.1.5).
//!
//! The manager stub treats all live `cache` workers as one virtual cache
//! (consistent hashing lives in `sns_cache::VirtualCache`, driven by the
//! front end's service logic). Each partition is a Harvest-like LRU
//! object store holding original, intermediate and post-transformation
//! variants. Timing follows §4.4: a hit costs ~27 ms (15 ms of it TCP
//! connection overhead — the Harvest HTTP interface needs a fresh
//! connection per request); a miss is detected quickly, the *penalty* is
//! paid at the origin. "Caching in TranSend is only an optimization":
//! all stored data is BASE.

use std::any::Any;
use std::sync::Arc;
use std::time::Duration;

use sns_cache::lru::{LruCache, Weighted};
use sns_cache::timing::CacheTiming;
use sns_cache::CacheKey;
use sns_core::msg::Job;
use sns_core::worker::{WorkerError, WorkerLogic};
use sns_core::{AppData, Payload, WorkerClass};
use sns_sim::rng::Pcg32;
use sns_sim::time::SimTime;

use crate::content::ContentObject;

/// Cache lookup request payload.
#[derive(Debug, Clone)]
pub struct CacheGet {
    /// The key (URL + variant).
    pub key: CacheKey,
}

impl AppData for CacheGet {
    fn wire_size(&self) -> u64 {
        self.key.url.len() as u64 + 16
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Cache lookup response payload.
#[derive(Debug, Clone)]
pub struct CacheGetResult {
    /// The object, if present.
    pub object: Option<ContentObject>,
}

impl AppData for CacheGetResult {
    fn wire_size(&self) -> u64 {
        self.object.as_ref().map(|o| o.wire_size()).unwrap_or(8)
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Cache insertion request payload ("we modified Harvest to allow data to
/// be injected into it", §3.1.5).
#[derive(Debug, Clone)]
pub struct CacheInject {
    /// The key to store under.
    pub key: CacheKey,
    /// The object.
    pub object: ContentObject,
}

impl AppData for CacheInject {
    fn wire_size(&self) -> u64 {
        self.key.url.len() as u64 + self.object.wire_size()
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

struct Stored(ContentObject);

impl Weighted for Stored {
    fn weight(&self) -> u64 {
        self.0.len().max(1)
    }
}

/// One cache partition as SNS worker logic.
pub struct CacheWorker {
    store: LruCache<CacheKey, Stored>,
    timing: CacheTiming,
    ttl: Option<Duration>,
}

impl CacheWorker {
    /// Worker class advertised by every cache partition.
    pub const CLASS: &'static str = "cache";

    /// Creates a partition with `capacity` bytes (and optional TTL).
    pub fn new(capacity: u64, ttl: Option<Duration>) -> Self {
        CacheWorker {
            store: LruCache::new(capacity),
            timing: CacheTiming::default(),
            ttl,
        }
    }

    /// Overrides the timing model.
    pub fn with_timing(mut self, timing: CacheTiming) -> Self {
        self.timing = timing;
        self
    }
}

impl WorkerLogic for CacheWorker {
    fn class(&self) -> WorkerClass {
        WorkerClass::new(Self::CLASS)
    }

    fn service_time(&mut self, job: &Job, now: SimTime, rng: &mut Pcg32) -> Duration {
        match job.op.as_str() {
            "get" => {
                let hit = sns_core::payload_as::<CacheGet>(&job.input)
                    .map(|g| self.store.peek(&g.key, now.as_nanos()).is_some())
                    .unwrap_or(false);
                if hit {
                    self.timing.hit_time(rng)
                } else {
                    // Miss detection: connection + index probe only.
                    self.timing.tcp_overhead + Duration::from_millis(2)
                }
            }
            // Injection: connection + store.
            _ => self.timing.tcp_overhead + Duration::from_millis(4),
        }
    }

    fn process(
        &mut self,
        job: &Job,
        now: SimTime,
        _rng: &mut Pcg32,
    ) -> Result<Payload, WorkerError> {
        match job.op.as_str() {
            "get" => {
                let Some(get) = sns_core::payload_as::<CacheGet>(&job.input) else {
                    return Err(WorkerError::Failed("bad cache get payload".into()));
                };
                let object = self
                    .store
                    .get(&get.key, now.as_nanos())
                    .map(|s| s.0.clone());
                Ok(Arc::new(CacheGetResult { object }))
            }
            "put" | "inject" => {
                let Some(put) = sns_core::payload_as::<CacheInject>(&job.input) else {
                    return Err(WorkerError::Failed("bad cache put payload".into()));
                };
                self.store.put(
                    put.key.clone(),
                    Stored(put.object.clone()),
                    now.as_nanos(),
                    self.ttl,
                );
                Ok(Arc::new(CacheGetResult { object: None }))
            }
            other => Err(WorkerError::Failed(format!("unknown cache op {other}"))),
        }
    }

    /// Cache I/O is network/disk-bound, not CPU-bound.
    fn cpu_bound(&self) -> bool {
        false
    }

    /// Harvest served concurrent requests.
    fn concurrency(&self) -> u32 {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_sim::ComponentId;
    use sns_workload::MimeType;

    fn job(op: &str, input: Payload) -> Job {
        Job {
            id: 1,
            class: CacheWorker::CLASS.into(),
            op: op.into(),
            input,
            profile: None,
            reply_to: ComponentId(1),
            sampled: true,
        }
    }

    #[test]
    fn get_miss_then_put_then_hit() {
        let mut w = CacheWorker::new(1 << 20, None);
        let mut rng = Pcg32::new(1);
        let key = CacheKey::original("http://x/a.gif");
        let g = job("get", Arc::new(CacheGet { key: key.clone() }));
        let r = w.process(&g, SimTime::ZERO, &mut rng).unwrap();
        assert!(sns_core::payload_as::<CacheGetResult>(&r)
            .unwrap()
            .object
            .is_none());

        let obj = ContentObject::synthetic("http://x/a.gif", MimeType::Gif, 3000);
        let p = job(
            "put",
            Arc::new(CacheInject {
                key: key.clone(),
                object: obj.clone(),
            }),
        );
        w.process(&p, SimTime::ZERO, &mut rng).unwrap();

        let r = w.process(&g, SimTime::ZERO, &mut rng).unwrap();
        let got = sns_core::payload_as::<CacheGetResult>(&r)
            .unwrap()
            .object
            .clone();
        assert_eq!(got, Some(obj));
    }

    #[test]
    fn hit_service_time_exceeds_miss_probe() {
        let mut w = CacheWorker::new(1 << 20, None);
        let mut rng = Pcg32::new(2);
        let key = CacheKey::original("u");
        let g = job("get", Arc::new(CacheGet { key: key.clone() }));
        let miss_t = w.service_time(&g, SimTime::ZERO, &mut rng);
        let obj = ContentObject::synthetic("u", MimeType::Gif, 100);
        let p = job("put", Arc::new(CacheInject { key, object: obj }));
        w.process(&p, SimTime::ZERO, &mut rng).unwrap();
        // Average hit times over draws (they are stochastic).
        let hit_t: Duration = (0..100)
            .map(|_| w.service_time(&g, SimTime::ZERO, &mut rng))
            .sum::<Duration>()
            / 100;
        assert!(hit_t > miss_t, "hit {hit_t:?} vs miss probe {miss_t:?}");
        assert!(hit_t < Duration::from_millis(120));
    }

    #[test]
    fn variants_stored_separately() {
        let mut w = CacheWorker::new(1 << 20, None);
        let mut rng = Pcg32::new(3);
        let orig = CacheKey::original("u");
        let varnt = CacheKey::variant("u", 7);
        let obj = ContentObject::synthetic("u", MimeType::Gif, 100);
        w.process(
            &job(
                "put",
                Arc::new(CacheInject {
                    key: varnt.clone(),
                    object: obj,
                }),
            ),
            SimTime::ZERO,
            &mut rng,
        )
        .unwrap();
        let miss = w
            .process(
                &job("get", Arc::new(CacheGet { key: orig })),
                SimTime::ZERO,
                &mut rng,
            )
            .unwrap();
        assert!(sns_core::payload_as::<CacheGetResult>(&miss)
            .unwrap()
            .object
            .is_none());
        let hit = w
            .process(
                &job("get", Arc::new(CacheGet { key: varnt })),
                SimTime::ZERO,
                &mut rng,
            )
            .unwrap();
        assert!(sns_core::payload_as::<CacheGetResult>(&hit)
            .unwrap()
            .object
            .is_some());
    }

    #[test]
    fn unknown_op_fails_softly() {
        let mut w = CacheWorker::new(1024, None);
        let mut rng = Pcg32::new(4);
        let r = w.process(
            &job(
                "flush",
                Arc::new(CacheGet {
                    key: CacheKey::original("u"),
                }),
            ),
            SimTime::ZERO,
            &mut rng,
        );
        assert!(matches!(r, Err(WorkerError::Failed(_))));
    }
}
