//! The simulated Internet: an origin-server worker front ends fetch from
//! on cache misses.
//!
//! §4.4: "The miss penalty (i.e., the time to fetch data from the
//! Internet) varies widely, from 100 ms through 100 seconds", and
//! dominates end-to-end latency. The origin worker synthesises the
//! object (real generated HTML for `text/html`; a synthetic byte model
//! for images) after a miss-penalty-distributed delay, with high
//! concurrency (the Internet serves many fetches at once) and no CPU
//! occupancy on the cluster.

use std::any::Any;
use std::sync::Arc;
use std::time::Duration;

use sns_cache::timing::CacheTiming;
use sns_core::msg::Job;
use sns_core::worker::{WorkerError, WorkerLogic};
use sns_core::{AppData, Payload, WorkerClass};
use sns_sim::rng::Pcg32;
use sns_sim::time::SimTime;
use sns_workload::MimeType;

use crate::content::{synth_html, ContentObject};

/// An origin fetch request (what the FE knows from the trace record).
#[derive(Debug, Clone)]
pub struct FetchRequest {
    /// Object URL.
    pub url: String,
    /// Its MIME type.
    pub mime: MimeType,
    /// Its content length.
    pub size: u64,
}

impl AppData for FetchRequest {
    fn wire_size(&self) -> u64 {
        self.url.len() as u64 + 32
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The origin-server worker.
pub struct OriginServer {
    timing: CacheTiming,
    /// Scales the miss penalty (1.0 = the paper's distribution). Lowered
    /// in experiments that must not be dominated by fetch time.
    pub penalty_scale: f64,
}

impl OriginServer {
    /// Worker class of the origin model.
    pub const CLASS: &'static str = "origin";

    /// Creates an origin with the §4.4 miss-penalty distribution.
    pub fn new() -> Self {
        OriginServer {
            timing: CacheTiming::default(),
            penalty_scale: 1.0,
        }
    }

    /// Scales the fetch delay (e.g. 0.05 for LAN-like origins in the
    /// scalability experiment where the cache is pre-warmed anyway).
    pub fn with_penalty_scale(mut self, scale: f64) -> Self {
        self.penalty_scale = scale;
        self
    }

    /// Deterministically synthesises the object for a fetch request.
    pub fn make_object(req: &FetchRequest) -> ContentObject {
        match req.mime {
            MimeType::Html => {
                // Generate real HTML whose length approximates the traced
                // size: ~6 bytes/word of prose plus image tags.
                let target_words = (req.size / 8).clamp(10, 20_000) as usize;
                let vocab = [
                    "the", "culture", "event", "calendar", "bay", "area", "music", "theatre",
                    "gallery", "saturday", "sunday", "january", "march", "october", "15", "3",
                    "21", "ticket", "free", "student", "berkeley", "campus", "network", "service",
                    "latency",
                ];
                let mut words: Vec<&str> = (0..target_words)
                    .map(|i| vocab[(i * 7 + i / 13) % vocab.len()])
                    .collect();
                // Sprinkle explicit "<month> <day>" event listings so
                // culture-page-style pages really contain schedules.
                let events = [("january", "15"), ("march", "3"), ("october", "21")];
                let mut e = 0;
                let mut i = 5;
                while i + 1 < words.len() {
                    let (month, day) = events[e % events.len()];
                    words[i] = month;
                    words[i + 1] = day;
                    e += 1;
                    i += 23;
                }
                let n_images = (req.size / 4000).min(12) as usize;
                ContentObject::text(
                    &req.url,
                    MimeType::Html,
                    synth_html(&req.url, n_images, &words),
                )
            }
            mime => ContentObject::synthetic(&req.url, mime, req.size),
        }
    }
}

impl Default for OriginServer {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerLogic for OriginServer {
    fn class(&self) -> WorkerClass {
        WorkerClass::new(Self::CLASS)
    }

    fn service_time(&mut self, _job: &Job, _now: SimTime, rng: &mut Pcg32) -> Duration {
        self.timing.miss_penalty(rng).mul_f64(self.penalty_scale)
    }

    fn process(
        &mut self,
        job: &Job,
        _now: SimTime,
        _rng: &mut Pcg32,
    ) -> Result<Payload, WorkerError> {
        let Some(req) = sns_core::payload_as::<FetchRequest>(&job.input) else {
            return Err(WorkerError::Failed("bad fetch request".into()));
        };
        Ok(Arc::new(Self::make_object(req)))
    }

    /// Waiting on the wide area, not on cluster CPU.
    fn cpu_bound(&self) -> bool {
        false
    }

    /// The Internet is highly concurrent.
    fn concurrency(&self) -> u32 {
        256
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_sim::ComponentId;

    fn job(req: FetchRequest) -> Job {
        Job {
            id: 1,
            class: OriginServer::CLASS.into(),
            op: "fetch".into(),
            input: Arc::new(req),
            profile: None,
            reply_to: ComponentId(1),
            sampled: true,
        }
    }

    #[test]
    fn html_fetch_is_real_markup_of_roughly_right_size() {
        let req = FetchRequest {
            url: "http://origin/p.html".into(),
            mime: MimeType::Html,
            size: 5000,
        };
        let obj = OriginServer::make_object(&req);
        let crate::content::Body::Text(t) = &obj.body else {
            panic!("html must be text");
        };
        assert!(t.starts_with("<html>"));
        let ratio = obj.len() as f64 / 5000.0;
        assert!((0.3..3.0).contains(&ratio), "size ratio {ratio}");
    }

    #[test]
    fn image_fetch_is_synthetic_with_exact_size() {
        let req = FetchRequest {
            url: "http://origin/i.jpg".into(),
            mime: MimeType::Jpeg,
            size: 12_000,
        };
        let obj = OriginServer::make_object(&req);
        assert_eq!(obj.len(), 12_000);
        assert_eq!(obj.mime, MimeType::Jpeg);
    }

    #[test]
    fn fetch_delay_spans_miss_penalty_range() {
        let mut o = OriginServer::new();
        let mut rng = Pcg32::new(9);
        let j = job(FetchRequest {
            url: "u".into(),
            mime: MimeType::Gif,
            size: 100,
        });
        let mut max = Duration::ZERO;
        for _ in 0..1000 {
            let t = o.service_time(&j, SimTime::ZERO, &mut rng);
            assert!(t >= Duration::from_millis(100));
            assert!(t <= Duration::from_secs(100));
            max = max.max(t);
        }
        assert!(max > Duration::from_secs(2), "heavy tail exercised");
    }

    #[test]
    fn penalty_scale_shrinks_delay() {
        let mut o = OriginServer::new().with_penalty_scale(0.01);
        let mut rng = Pcg32::new(9);
        let j = job(FetchRequest {
            url: "u".into(),
            mime: MimeType::Gif,
            size: 100,
        });
        for _ in 0..100 {
            assert!(o.service_time(&j, SimTime::ZERO, &mut rng) < Duration::from_secs(2));
        }
    }

    #[test]
    fn process_roundtrip() {
        let mut o = OriginServer::new();
        let mut rng = Pcg32::new(9);
        let j = job(FetchRequest {
            url: "http://x/a.gif".into(),
            mime: MimeType::Gif,
            size: 2000,
        });
        let p = o.process(&j, SimTime::ZERO, &mut rng).unwrap();
        let obj = ContentObject::from_payload(&p).unwrap();
        assert_eq!(obj.url, "http://x/a.gif");
        assert_eq!(obj.len(), 2000);
    }
}
