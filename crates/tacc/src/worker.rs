//! The TACC building-block traits and the host that runs them as SNS
//! workers.
//!
//! A [`TaccWorker`] is a *stateless* transformation on a single content
//! object; an [`Aggregator`] collates several objects into one. Both
//! receive [`TaccArgs`] — the per-user customisation parameters delivered
//! with each request (§2.3) — so "the same workers \[can\] be reused for
//! different services" (e.g. one image scaler parameterised for slow
//! modems or for PDA screens).
//!
//! [`TaccWorkerHost`] adapts either kind into an [`sns_core::WorkerLogic`]
//! so the SNS layer can replicate, load-balance, restart and reap it
//! without knowing what it computes.

use std::any::Any;
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use sns_core::msg::{Job, ProfileData};
use sns_core::worker::{WorkerError, WorkerLogic};
use sns_core::{AppData, Payload, WorkerClass};
use sns_sim::rng::Pcg32;
use sns_sim::time::SimTime;
use sns_workload::MimeType;

use crate::content::ContentObject;

/// Why a TACC operation failed.
#[derive(Debug, Clone)]
pub enum TaccError {
    /// Input the worker cannot handle; the front end falls back to the
    /// original content (§3.1.8 approximate answers).
    Unsupported(String),
    /// Pathological input crashes the worker process (§3.1.6: "Although
    /// pathological input data occasionally causes a distiller to crash,
    /// the process-peer fault tolerance … means we don't have to worry").
    PathologicalInput,
}

/// Per-request worker arguments: the user's customisation profile merged
/// over service defaults.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaccArgs {
    map: BTreeMap<String, String>,
}

impl TaccArgs {
    /// Builds args from service defaults overlaid with the user profile.
    pub fn merged(defaults: &BTreeMap<String, String>, profile: Option<&ProfileData>) -> Self {
        let mut map = defaults.clone();
        if let Some(p) = profile {
            for (k, v) in p.iter() {
                map.insert(k.clone(), v.clone());
            }
        }
        TaccArgs { map }
    }

    /// Creates args from a plain map.
    pub fn from_map(map: BTreeMap<String, String>) -> Self {
        TaccArgs { map }
    }

    /// Reads a string argument.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.map.get(key).map(String::as_str)
    }

    /// Reads a numeric argument with a default.
    pub fn get_f64(&self, key: &str, default: f64) -> f64 {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Reads a boolean argument with a default.
    pub fn get_bool(&self, key: &str, default: bool) -> bool {
        self.get(key)
            .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
            .unwrap_or(default)
    }

    /// Stable hash of (worker, args): the cache-variant discriminator for
    /// post-transformation content (§2.3 "caches can store
    /// post-transformation … content").
    pub fn variant_hash(&self, worker: &str) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        let mut eat = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        eat(worker.as_bytes());
        for (k, v) in &self.map {
            eat(k.as_bytes());
            eat(b"=");
            eat(v.as_bytes());
            eat(b";");
        }
        h | 1 // never 0: 0 means "original" in CacheKey
    }

    /// The underlying map.
    pub fn as_map(&self) -> &BTreeMap<String, String> {
        &self.map
    }
}

/// A stateless transformation on one content object.
pub trait TaccWorker: Send {
    /// Short name (`"gif"`, `"jpeg"`, `"html"`, …); the SNS class becomes
    /// `distiller/<name>`.
    fn name(&self) -> &'static str;

    /// Whether this worker can transform the given MIME type.
    fn accepts(&self, mime: MimeType) -> bool;

    /// Predicted CPU cost for an input (drives Figure 7 / Table 2).
    fn cost(&self, input: &ContentObject, args: &TaccArgs, rng: &mut Pcg32) -> Duration;

    /// Transforms the object.
    fn transform(
        &mut self,
        input: &ContentObject,
        args: &TaccArgs,
        rng: &mut Pcg32,
    ) -> Result<ContentObject, TaccError>;
}

/// A collation of several content objects into one.
pub trait Aggregator: Send {
    /// Short name; the SNS class becomes `aggregator/<name>`.
    fn name(&self) -> &'static str;

    /// Predicted CPU cost.
    fn cost(&self, inputs: &[ContentObject], args: &TaccArgs, rng: &mut Pcg32) -> Duration;

    /// Collates the inputs.
    fn aggregate(
        &mut self,
        inputs: &[ContentObject],
        args: &TaccArgs,
        rng: &mut Pcg32,
    ) -> Result<ContentObject, TaccError>;
}

/// Payload for aggregation jobs: the already-fetched inputs.
#[derive(Debug, Clone)]
pub struct AggregateRequest {
    /// Objects to collate.
    pub inputs: Vec<ContentObject>,
}

impl AppData for AggregateRequest {
    fn wire_size(&self) -> u64 {
        self.inputs.iter().map(|o| o.wire_size()).sum::<u64>() + 16
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

enum Kind {
    Transform(Box<dyn TaccWorker>),
    Aggregate(Box<dyn Aggregator>),
}

/// Adapter running a TACC building block as SNS worker logic.
pub struct TaccWorkerHost {
    kind: Kind,
    class: WorkerClass,
    defaults: BTreeMap<String, String>,
}

impl TaccWorkerHost {
    /// Hosts a transformation worker as class `distiller/<name>`.
    pub fn transformer(w: Box<dyn TaccWorker>, defaults: BTreeMap<String, String>) -> Self {
        let class = WorkerClass::new(format!("distiller/{}", w.name()));
        TaccWorkerHost {
            kind: Kind::Transform(w),
            class,
            defaults,
        }
    }

    /// Hosts an aggregator as class `aggregator/<name>`.
    pub fn aggregator(a: Box<dyn Aggregator>, defaults: BTreeMap<String, String>) -> Self {
        let class = WorkerClass::new(format!("aggregator/{}", a.name()));
        TaccWorkerHost {
            kind: Kind::Aggregate(a),
            class,
            defaults,
        }
    }

    fn args(&self, job: &Job) -> TaccArgs {
        TaccArgs::merged(&self.defaults, job.profile.as_ref())
    }
}

impl WorkerLogic for TaccWorkerHost {
    fn class(&self) -> WorkerClass {
        self.class.clone()
    }

    fn service_time(&mut self, job: &Job, _now: SimTime, rng: &mut Pcg32) -> Duration {
        let args = self.args(job);
        match &self.kind {
            Kind::Transform(w) => match ContentObject::from_payload(&job.input) {
                Some(obj) => w.cost(obj, &args, rng),
                None => Duration::from_micros(100),
            },
            Kind::Aggregate(a) => match sns_core::payload_as::<AggregateRequest>(&job.input) {
                Some(req) => a.cost(&req.inputs, &args, rng),
                None => Duration::from_micros(100),
            },
        }
    }

    fn process(
        &mut self,
        job: &Job,
        _now: SimTime,
        rng: &mut Pcg32,
    ) -> Result<Payload, WorkerError> {
        let args = self.args(job);
        let result = match &mut self.kind {
            Kind::Transform(w) => {
                let Some(obj) = ContentObject::from_payload(&job.input) else {
                    return Err(WorkerError::Failed("not a content object".into()));
                };
                if !w.accepts(obj.mime) {
                    return Err(WorkerError::Failed(format!(
                        "{} does not accept {}",
                        w.name(),
                        obj.mime
                    )));
                }
                w.transform(obj, &args, rng)
            }
            Kind::Aggregate(a) => {
                let Some(req) = sns_core::payload_as::<AggregateRequest>(&job.input) else {
                    return Err(WorkerError::Failed("not an aggregate request".into()));
                };
                a.aggregate(&req.inputs, &args, rng)
            }
        };
        match result {
            Ok(out) => Ok(Arc::new(out)),
            Err(TaccError::Unsupported(why)) => Err(WorkerError::Failed(why)),
            Err(TaccError::PathologicalInput) => Err(WorkerError::Crash),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_sim::ComponentId;

    struct Halver;
    impl TaccWorker for Halver {
        fn name(&self) -> &'static str {
            "halver"
        }
        fn accepts(&self, mime: MimeType) -> bool {
            mime == MimeType::Gif
        }
        fn cost(&self, input: &ContentObject, _a: &TaccArgs, _r: &mut Pcg32) -> Duration {
            Duration::from_nanos(input.len() * 1000)
        }
        fn transform(
            &mut self,
            input: &ContentObject,
            args: &TaccArgs,
            _rng: &mut Pcg32,
        ) -> Result<ContentObject, TaccError> {
            if args.get_bool("poison", false) {
                return Err(TaccError::PathologicalInput);
            }
            let mut out = input.clone();
            if let crate::content::Body::Synthetic { len, .. } = &mut out.body {
                *len /= 2;
            }
            out.quality *= 0.5;
            out.lineage.push("halver".into());
            Ok(out)
        }
    }

    fn job(obj: ContentObject, profile: Option<ProfileData>) -> Job {
        Job {
            id: 1,
            class: "distiller/halver".into(),
            op: "transform".into(),
            input: obj.into_payload(),
            profile,
            reply_to: ComponentId(1),
            sampled: true,
        }
    }

    #[test]
    fn host_transforms_and_names_class() {
        let mut host = TaccWorkerHost::transformer(Box::new(Halver), BTreeMap::new());
        assert_eq!(host.class().name(), "distiller/halver");
        let mut rng = Pcg32::new(1);
        let j = job(ContentObject::synthetic("u", MimeType::Gif, 1000), None);
        assert_eq!(
            host.service_time(&j, SimTime::ZERO, &mut rng),
            Duration::from_millis(1)
        );
        let out = host.process(&j, SimTime::ZERO, &mut rng).unwrap();
        let obj = ContentObject::from_payload(&out).unwrap();
        assert_eq!(obj.len(), 500);
        assert_eq!(obj.lineage, vec!["halver"]);
        assert_eq!(obj.quality, 0.5);
    }

    #[test]
    fn host_rejects_wrong_mime() {
        let mut host = TaccWorkerHost::transformer(Box::new(Halver), BTreeMap::new());
        let mut rng = Pcg32::new(1);
        let j = job(ContentObject::synthetic("u", MimeType::Jpeg, 1000), None);
        match host.process(&j, SimTime::ZERO, &mut rng) {
            Err(WorkerError::Failed(_)) => {}
            other => panic!("expected Failed, got {other:?}"),
        }
    }

    #[test]
    fn pathological_input_becomes_crash() {
        let mut host = TaccWorkerHost::transformer(Box::new(Halver), BTreeMap::new());
        let mut rng = Pcg32::new(1);
        let mut profile = BTreeMap::new();
        profile.insert("poison".to_string(), "1".to_string());
        let j = job(
            ContentObject::synthetic("u", MimeType::Gif, 1000),
            Some(Arc::new(profile)),
        );
        assert!(matches!(
            host.process(&j, SimTime::ZERO, &mut rng),
            Err(WorkerError::Crash)
        ));
    }

    #[test]
    fn profile_overrides_defaults_in_args() {
        let mut defaults = BTreeMap::new();
        defaults.insert("quality".into(), "50".into());
        defaults.insert("scale".into(), "2".into());
        let mut profile = BTreeMap::new();
        profile.insert("quality".to_string(), "25".to_string());
        let args = TaccArgs::merged(&defaults, Some(&Arc::new(profile)));
        assert_eq!(args.get_f64("quality", 0.0), 25.0);
        assert_eq!(args.get_f64("scale", 0.0), 2.0);
    }

    #[test]
    fn variant_hash_distinguishes_args_and_workers() {
        let a = TaccArgs::from_map(BTreeMap::from([("q".into(), "25".into())]));
        let b = TaccArgs::from_map(BTreeMap::from([("q".into(), "50".into())]));
        assert_ne!(a.variant_hash("gif"), b.variant_hash("gif"));
        assert_ne!(a.variant_hash("gif"), a.variant_hash("jpeg"));
        assert_eq!(a.variant_hash("gif"), a.variant_hash("gif"));
        assert_ne!(a.variant_hash("gif"), 0);
    }
}
