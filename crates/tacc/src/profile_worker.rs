//! The customisation database as an SNS worker (§3.1.4).
//!
//! The one ACID component: reads return the profile key-value pairs for
//! a user token; writes are atomic, WAL-durable transactions. Front ends
//! keep a write-through read cache in front of this worker, so "user
//! preference reads … are absorbed" before reaching it.

use std::any::Any;
use std::sync::Arc;
use std::time::Duration;

use sns_core::msg::{Job, ProfileData};
use sns_core::worker::{WorkerError, WorkerLogic};
use sns_core::{AppData, Payload, WorkerClass};
use sns_profiledb::{MemDevice, ProfileDb, Txn, Wal};
use sns_sim::rng::Pcg32;
use sns_sim::time::SimTime;

/// Profile read request.
#[derive(Debug, Clone)]
pub struct ProfileGet {
    /// User token.
    pub user: String,
}

impl AppData for ProfileGet {
    fn wire_size(&self) -> u64 {
        self.user.len() as u64 + 16
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Profile write request: key-value settings for one user, committed
/// atomically.
#[derive(Debug, Clone)]
pub struct ProfilePut {
    /// User token.
    pub user: String,
    /// Settings to upsert.
    pub settings: Vec<(String, String)>,
}

impl AppData for ProfilePut {
    fn wire_size(&self) -> u64 {
        self.user.len() as u64
            + self
                .settings
                .iter()
                .map(|(k, v)| (k.len() + v.len() + 8) as u64)
                .sum::<u64>()
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Profile read reply.
#[derive(Debug, Clone)]
pub struct ProfileReply {
    /// The profile, if the user is registered.
    pub profile: Option<ProfileData>,
}

impl AppData for ProfileReply {
    fn wire_size(&self) -> u64 {
        self.profile
            .as_ref()
            .map(|p| {
                p.iter()
                    .map(|(k, v)| (k.len() + v.len() + 8) as u64)
                    .sum::<u64>()
            })
            .unwrap_or(8)
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// The customisation-database worker.
pub struct ProfileWorker {
    db: ProfileDb<MemDevice>,
    read_time: Duration,
    commit_time: Duration,
}

impl ProfileWorker {
    /// Worker class of the profile database.
    pub const CLASS: &'static str = "profiledb";

    /// Creates an empty in-memory-device database worker.
    pub fn new() -> Self {
        ProfileWorker {
            db: ProfileDb::open(Wal::new(MemDevice::new())).expect("empty log"),
            read_time: Duration::from_millis(1),
            // A commit pays an fsync.
            commit_time: Duration::from_millis(8),
        }
    }

    /// Pre-populates profiles (service bootstrap).
    pub fn with_profiles(mut self, users: &[(&str, &[(&str, &str)])]) -> Self {
        for (user, settings) in users {
            let mut txn = Txn::new();
            for (k, v) in *settings {
                txn = txn.put(*user, *k, *v);
            }
            self.db.commit(txn).expect("bootstrap commit");
        }
        self
    }

    /// Pre-populates profiles from owned data (builder/factory use).
    pub fn seeded(profiles: &[(String, Vec<(String, String)>)]) -> Self {
        let mut w = Self::new();
        for (user, settings) in profiles {
            let mut txn = Txn::new();
            for (k, v) in settings {
                txn = txn.put(user.clone(), k.clone(), v.clone());
            }
            w.db.commit(txn).expect("bootstrap commit");
        }
        w
    }
}

impl Default for ProfileWorker {
    fn default() -> Self {
        Self::new()
    }
}

impl WorkerLogic for ProfileWorker {
    fn class(&self) -> WorkerClass {
        WorkerClass::new(Self::CLASS)
    }

    fn service_time(&mut self, job: &Job, _now: SimTime, _rng: &mut Pcg32) -> Duration {
        match job.op.as_str() {
            "get" => self.read_time,
            _ => self.commit_time,
        }
    }

    fn process(
        &mut self,
        job: &Job,
        _now: SimTime,
        _rng: &mut Pcg32,
    ) -> Result<Payload, WorkerError> {
        match job.op.as_str() {
            "get" => {
                let Some(get) = sns_core::payload_as::<ProfileGet>(&job.input) else {
                    return Err(WorkerError::Failed("bad profile get".into()));
                };
                let profile = self.db.profile(&get.user).cloned().map(Arc::new);
                Ok(Arc::new(ProfileReply { profile }))
            }
            "put" => {
                let Some(put) = sns_core::payload_as::<ProfilePut>(&job.input) else {
                    return Err(WorkerError::Failed("bad profile put".into()));
                };
                let mut txn = Txn::new();
                for (k, v) in &put.settings {
                    txn = txn.put(put.user.clone(), k.clone(), v.clone());
                }
                self.db
                    .commit(txn)
                    .map_err(|e| WorkerError::Failed(e.to_string()))?;
                Ok(Arc::new(ProfileReply { profile: None }))
            }
            other => Err(WorkerError::Failed(format!("unknown profile op {other}"))),
        }
    }

    /// Dominated by log I/O, not CPU.
    fn cpu_bound(&self) -> bool {
        false
    }

    /// HotBot's parallel Informix handled ~400 req/s (§4.6); modest
    /// concurrency models that.
    fn concurrency(&self) -> u32 {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_sim::ComponentId;

    fn job(op: &str, input: Payload) -> Job {
        Job {
            id: 1,
            class: ProfileWorker::CLASS.into(),
            op: op.into(),
            input,
            profile: None,
            reply_to: ComponentId(1),
            sampled: true,
        }
    }

    #[test]
    fn get_returns_bootstrap_profile() {
        let mut w =
            ProfileWorker::new().with_profiles(&[("u1", &[("quality", "25"), ("scale", "2")])]);
        let mut rng = Pcg32::new(1);
        let r = w
            .process(
                &job("get", Arc::new(ProfileGet { user: "u1".into() })),
                SimTime::ZERO,
                &mut rng,
            )
            .unwrap();
        let reply = sns_core::payload_as::<ProfileReply>(&r).unwrap();
        let p = reply.profile.as_ref().unwrap();
        assert_eq!(p.get("quality").map(String::as_str), Some("25"));
    }

    #[test]
    fn unknown_user_is_none_not_error() {
        let mut w = ProfileWorker::new();
        let mut rng = Pcg32::new(1);
        let r = w
            .process(
                &job(
                    "get",
                    Arc::new(ProfileGet {
                        user: "ghost".into(),
                    }),
                ),
                SimTime::ZERO,
                &mut rng,
            )
            .unwrap();
        assert!(sns_core::payload_as::<ProfileReply>(&r)
            .unwrap()
            .profile
            .is_none());
    }

    #[test]
    fn put_then_get() {
        let mut w = ProfileWorker::new();
        let mut rng = Pcg32::new(1);
        w.process(
            &job(
                "put",
                Arc::new(ProfilePut {
                    user: "u2".into(),
                    settings: vec![("keywords".into(), "rust".into())],
                }),
            ),
            SimTime::ZERO,
            &mut rng,
        )
        .unwrap();
        let r = w
            .process(
                &job("get", Arc::new(ProfileGet { user: "u2".into() })),
                SimTime::ZERO,
                &mut rng,
            )
            .unwrap();
        let reply = sns_core::payload_as::<ProfileReply>(&r).unwrap();
        assert_eq!(
            reply
                .profile
                .as_ref()
                .unwrap()
                .get("keywords")
                .map(String::as_str),
            Some("rust")
        );
    }

    #[test]
    fn commit_costs_more_than_read() {
        let mut w = ProfileWorker::new();
        let mut rng = Pcg32::new(1);
        let read = w.service_time(
            &job("get", Arc::new(ProfileGet { user: "u".into() })),
            SimTime::ZERO,
            &mut rng,
        );
        let write = w.service_time(
            &job(
                "put",
                Arc::new(ProfilePut {
                    user: "u".into(),
                    settings: vec![],
                }),
            ),
            SimTime::ZERO,
            &mut rng,
        );
        assert!(write > read);
    }
}
