//! Unix-pipeline-like composition of TACC workers (§2.3).
//!
//! "Our initial implementation allows Unix-pipeline-like chaining of an
//! arbitrary number of stateless transformations and aggregations." A
//! [`PipelineSpec`] names the stages; the front end's dispatch logic
//! executes them in order, feeding each stage's output to the next, and
//! computes the cache-variant hash of any prefix so intermediate results
//! can be cached (§2.3: caches store "even intermediate-state content").

use crate::worker::TaccArgs;

/// An ordered chain of TACC worker names.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PipelineSpec {
    stages: Vec<String>,
}

impl PipelineSpec {
    /// An empty pipeline (identity: content passes through unmodified).
    pub fn identity() -> Self {
        PipelineSpec::default()
    }

    /// A single-stage pipeline.
    pub fn single(stage: impl Into<String>) -> Self {
        PipelineSpec {
            stages: vec![stage.into()],
        }
    }

    /// Builds from a list of stage names.
    pub fn of(stages: &[&str]) -> Self {
        PipelineSpec {
            stages: stages.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Appends a stage.
    pub fn then(mut self, stage: impl Into<String>) -> Self {
        self.stages.push(stage.into());
        self
    }

    /// Concatenates two pipelines (associative).
    pub fn compose(mut self, other: &PipelineSpec) -> Self {
        self.stages.extend(other.stages.iter().cloned());
        self
    }

    /// The stage names in execution order.
    pub fn stages(&self) -> &[String] {
        &self.stages
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// Whether the pipeline is the identity.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Cache-variant hash of the first `prefix_len` stages under `args`:
    /// the key under which that intermediate result may be cached.
    /// `prefix_len == 0` yields 0, the "original content" variant.
    pub fn variant_of_prefix(&self, prefix_len: usize, args: &TaccArgs) -> u64 {
        let mut acc = 0u64;
        for stage in self.stages.iter().take(prefix_len) {
            // Chain the per-stage variant hashes, order-sensitively.
            let h = args.variant_hash(stage);
            acc = acc
                .rotate_left(17)
                .wrapping_mul(0x9E3779B97F4A7C15)
                .wrapping_add(h);
        }
        if prefix_len == 0 {
            0
        } else {
            acc | 1
        }
    }

    /// Variant hash of the full pipeline.
    pub fn final_variant(&self, args: &TaccArgs) -> u64 {
        self.variant_of_prefix(self.stages.len(), args)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn args(q: &str) -> TaccArgs {
        TaccArgs::from_map(BTreeMap::from([("q".to_string(), q.to_string())]))
    }

    #[test]
    fn composition_is_associative() {
        let a = PipelineSpec::single("x");
        let b = PipelineSpec::single("y");
        let c = PipelineSpec::single("z");
        let left = a.clone().compose(&b).compose(&c);
        let right = a.compose(&b.compose(&c));
        assert_eq!(left, right);
        assert_eq!(left.stages(), &["x", "y", "z"]);
    }

    #[test]
    fn identity_is_neutral() {
        let p = PipelineSpec::of(&["gif", "html"]);
        assert_eq!(p.clone().compose(&PipelineSpec::identity()), p);
        assert_eq!(PipelineSpec::identity().compose(&p), p);
    }

    #[test]
    fn variants_depend_on_order_args_and_prefix() {
        let p1 = PipelineSpec::of(&["a", "b"]);
        let p2 = PipelineSpec::of(&["b", "a"]);
        let q = args("25");
        assert_ne!(p1.final_variant(&q), p2.final_variant(&q));
        assert_ne!(p1.final_variant(&q), p1.final_variant(&args("50")));
        assert_ne!(p1.variant_of_prefix(1, &q), p1.variant_of_prefix(2, &q));
        assert_eq!(p1.variant_of_prefix(0, &q), 0, "prefix 0 is the original");
        assert_ne!(p1.final_variant(&q), 0);
    }

    #[test]
    fn prefix_variants_are_shared_across_longer_pipelines() {
        // A cached intermediate from [a] is reusable when running [a, b].
        let short = PipelineSpec::of(&["a"]);
        let long = PipelineSpec::of(&["a", "b"]);
        let q = args("25");
        assert_eq!(
            short.final_variant(&q),
            long.variant_of_prefix(1, &q),
            "same prefix ⇒ same cached variant"
        );
    }
}
