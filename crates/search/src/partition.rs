//! Static partitioning, fan-out and collation — HotBot's data layout.
//!
//! §3.2: documents are distributed randomly across partitions; every
//! query fans out to all live partitions; per-partition top-k lists are
//! collated into the global top-k. A dead partition's documents are
//! simply missing from results until it returns (graceful degradation:
//! "it is acceptable to lose part of the database temporarily").

use std::collections::BTreeSet;

use crate::doc::Document;
use crate::index::{InvertedIndex, SearchHit};

/// Outcome of a partitioned query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    /// Collated global top-k.
    pub hits: Vec<SearchHit>,
    /// Fraction of the corpus that was searchable, in `[0,1]`.
    pub coverage: f64,
    /// Partitions that answered.
    pub partitions_answered: usize,
    /// Partitions that were down.
    pub partitions_down: usize,
}

/// A corpus statically partitioned across N indexes.
pub struct PartitionedIndex {
    parts: Vec<InvertedIndex>,
    down: BTreeSet<usize>,
    docs_per_part: Vec<u64>,
}

impl PartitionedIndex {
    /// Creates `n` empty partitions.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        PartitionedIndex {
            parts: (0..n).map(|_| InvertedIndex::new()).collect(),
            down: BTreeSet::new(),
            docs_per_part: vec![0; n],
        }
    }

    /// Number of partitions.
    pub fn partitions(&self) -> usize {
        self.parts.len()
    }

    /// Partition a document id lands on ("distributes documents
    /// randomly": a stable hash of the id).
    pub fn partition_of(&self, doc_id: u64) -> usize {
        // Splitmix-style mix of the id for a random-looking but stable
        // placement.
        let mut z = doc_id.wrapping_mul(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        ((z ^ (z >> 31)) % self.parts.len() as u64) as usize
    }

    /// Indexes a document on its partition.
    pub fn add(&mut self, doc: &Document) {
        let p = self.partition_of(doc.id);
        self.parts[p].add(doc);
        self.docs_per_part[p] += 1;
    }

    /// Total documents indexed (including on down partitions).
    pub fn total_docs(&self) -> u64 {
        self.docs_per_part.iter().sum()
    }

    /// Documents currently searchable (live partitions only).
    pub fn searchable_docs(&self) -> u64 {
        self.docs_per_part
            .iter()
            .enumerate()
            .filter(|(i, _)| !self.down.contains(i))
            .map(|(_, &c)| c)
            .sum()
    }

    /// Marks a partition down (node failure).
    pub fn set_down(&mut self, part: usize) {
        self.down.insert(part);
    }

    /// Brings a partition back (fast restart; its index was on local
    /// disk/RAID so contents survive, §3.2).
    pub fn set_up(&mut self, part: usize) {
        self.down.remove(&part);
    }

    /// Which partitions are down.
    pub fn down_partitions(&self) -> Vec<usize> {
        self.down.iter().copied().collect()
    }

    /// Direct read access to one partition's index (worker-side use).
    pub fn part(&self, i: usize) -> &InvertedIndex {
        &self.parts[i]
    }

    /// Fan-out + collate. Never fails: down partitions reduce coverage
    /// instead (BASE approximate answers).
    pub fn query(&self, q: &str, k: usize) -> QueryOutcome {
        let mut all: Vec<SearchHit> = Vec::new();
        let mut answered = 0;
        for (i, part) in self.parts.iter().enumerate() {
            if self.down.contains(&i) {
                continue;
            }
            answered += 1;
            all.extend(part.query(q, k));
        }
        all.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("finite scores")
                .then(a.doc.cmp(&b.doc))
        });
        all.truncate(k);
        let total = self.total_docs();
        let coverage = if total == 0 {
            1.0
        } else {
            self.searchable_docs() as f64 / total as f64
        };
        QueryOutcome {
            hits: all,
            coverage,
            partitions_answered: answered,
            partitions_down: self.down.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::doc::CorpusGenerator;

    fn corpus(n: usize) -> Vec<Document> {
        CorpusGenerator::with_defaults(42).generate(n)
    }

    fn build(nparts: usize, docs: &[Document]) -> PartitionedIndex {
        let mut pi = PartitionedIndex::new(nparts);
        for d in docs {
            pi.add(d);
        }
        pi
    }

    #[test]
    fn partitioned_equals_monolithic_when_all_up() {
        let docs = corpus(500);
        let pi = build(7, &docs);
        let mut mono = InvertedIndex::new();
        for d in &docs {
            mono.add(d);
        }
        for q in ["w0", "w1 w5", "w10 w100 w3", "w999"] {
            let a = pi.query(q, 10);
            let b = mono.query(q, 10);
            assert_eq!(a.hits, b, "query {q:?} must collate exactly");
            assert_eq!(a.coverage, 1.0);
        }
    }

    #[test]
    fn placement_is_roughly_balanced() {
        let docs = corpus(2600);
        let pi = build(26, &docs);
        for (i, &c) in pi.docs_per_part.iter().enumerate() {
            assert!(
                (50..=150).contains(&c),
                "partition {i} holds {c} of 2600 docs"
            );
        }
    }

    #[test]
    fn one_down_partition_degrades_gracefully() {
        // The paper's 26-node example: losing one node drops 54M -> ~51M
        // docs, i.e. coverage ≈ 25/26 ≈ 0.96.
        let docs = corpus(2600);
        let mut pi = build(26, &docs);
        let full = pi.query("w0", 20);
        pi.set_down(3);
        let degraded = pi.query("w0", 20);
        assert_eq!(degraded.partitions_down, 1);
        assert_eq!(degraded.partitions_answered, 25);
        assert!(
            (degraded.coverage - 25.0 / 26.0).abs() < 0.03,
            "coverage {}",
            degraded.coverage
        );
        // Results still arrive and every surviving hit was in (or ranks
        // consistently with) the full result set.
        assert!(!degraded.hits.is_empty());
        let lost_part = 3;
        for h in &degraded.hits {
            assert_ne!(pi.partition_of(h.doc), lost_part);
        }
        // Recovery restores full coverage.
        pi.set_up(3);
        let recovered = pi.query("w0", 20);
        assert_eq!(recovered.hits, full.hits);
        assert_eq!(recovered.coverage, 1.0);
    }

    #[test]
    fn all_partitions_down_returns_empty_not_error() {
        let docs = corpus(50);
        let mut pi = build(2, &docs);
        pi.set_down(0);
        pi.set_down(1);
        let out = pi.query("w0", 5);
        assert!(out.hits.is_empty());
        assert_eq!(out.partitions_answered, 0);
        assert_eq!(out.coverage, 0.0);
    }

    #[test]
    fn searchable_docs_tracks_down_set() {
        let docs = corpus(1000);
        let mut pi = build(10, &docs);
        assert_eq!(pi.total_docs(), 1000);
        assert_eq!(pi.searchable_docs(), 1000);
        pi.set_down(0);
        assert!(pi.searchable_docs() < 1000);
        assert_eq!(pi.total_docs(), 1000);
    }
}
