//! # sns-search — the partitioned full-text search substrate (HotBot)
//!
//! The Inktomi/HotBot search engine (§1.1, §3.2) is an *aggregation*
//! service: "HotBot workers statically partition the search-engine
//! database for load balancing. Thus each worker handles a subset of the
//! database proportional to its CPU power, and every query goes to all
//! workers in parallel." This crate implements that substrate from
//! scratch:
//!
//! * [`doc`] — documents and a deterministic synthetic corpus generator
//!   (the 54 M-page crawl is not available; word frequencies are
//!   Zipf-distributed over a synthetic vocabulary);
//! * [`index`] — an inverted index with tokenisation, term-frequency
//!   scoring and top-k retrieval;
//! * [`partition`] — static random partitioning, all-partitions query
//!   fan-out, collation of per-partition top-k lists, and **graceful
//!   degradation**: a down partition removes its share of documents from
//!   coverage but never fails the query (BASE approximate answers —
//!   §3.2: with 26 nodes "the loss of one machine results in the
//!   database dropping from 54M to about 51M documents");
//! * [`qcache`] — the integrated cache of recent searches used for
//!   incremental delivery (Table 1).

#![warn(missing_docs)]

pub mod doc;
pub mod index;
pub mod partition;
pub mod qcache;

pub use doc::{CorpusGenerator, Document};
pub use index::{InvertedIndex, SearchHit};
pub use partition::{PartitionedIndex, QueryOutcome};
pub use qcache::QueryCache;

/// Splits text into lowercase alphanumeric tokens.
///
/// # Examples
///
/// ```
/// let t = sns_search::tokenize("Hello, World! x86-64");
/// assert_eq!(t, vec!["hello", "world", "x86", "64"]);
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|s| !s.is_empty())
        .map(|s| s.to_lowercase())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenize_basics() {
        assert_eq!(tokenize(""), Vec::<String>::new());
        assert_eq!(tokenize("  A  b "), vec!["a", "b"]);
        assert_eq!(tokenize("foo_bar"), vec!["foo", "bar"]);
    }
}
