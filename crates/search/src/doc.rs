//! Documents and the synthetic corpus generator.
//!
//! Substituting for the 54-million-page crawl: documents whose words are
//! drawn from a Zipf-distributed synthetic vocabulary, so term document
//! frequencies have the realistic skew that makes ranking and partitioned
//! retrieval non-trivial.

use sns_sim::rng::Pcg32;

/// A document in the corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// Stable identifier.
    pub id: u64,
    /// Title line (indexed with the body).
    pub title: String,
    /// Body text.
    pub body: String,
}

impl Document {
    /// Full indexable text.
    pub fn text(&self) -> String {
        format!("{} {}", self.title, self.body)
    }
}

/// Deterministic synthetic corpus generator.
///
/// Vocabulary words are `w0, w1, …`; word `wk` is drawn with probability
/// ∝ 1/(k+1)^alpha, so low-numbered words are common terms and
/// high-numbered words are rare.
pub struct CorpusGenerator {
    rng: Pcg32,
    vocab: usize,
    alpha: f64,
    words_per_doc: usize,
    next_id: u64,
    cdf: Vec<f64>,
}

impl CorpusGenerator {
    /// Creates a generator over `vocab` words with Zipf exponent `alpha`.
    pub fn new(seed: u64, vocab: usize, words_per_doc: usize, alpha: f64) -> Self {
        assert!(vocab > 0 && words_per_doc > 0);
        let mut cdf = Vec::with_capacity(vocab);
        let mut acc = 0.0;
        for k in 1..=vocab {
            acc += 1.0 / (k as f64).powf(alpha);
            cdf.push(acc);
        }
        for c in &mut cdf {
            *c /= acc;
        }
        CorpusGenerator {
            rng: Pcg32::new(seed),
            vocab,
            alpha,
            words_per_doc,
            next_id: 0,
            cdf,
        }
    }

    /// Default shape: 20k vocabulary, 120 words/doc, alpha 1.0.
    pub fn with_defaults(seed: u64) -> Self {
        Self::new(seed, 20_000, 120, 1.0)
    }

    fn word(&mut self) -> String {
        let u = self.rng.f64();
        let idx = match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.vocab - 1),
        };
        format!("w{idx}")
    }

    /// Generates the next document.
    pub fn next_doc(&mut self) -> Document {
        let id = self.next_id;
        self.next_id += 1;
        let title_len = 2 + self.rng.below(6) as usize;
        let title_words: Vec<String> = (0..title_len).map(|_| self.word()).collect();
        let body_words: Vec<String> = (0..self.words_per_doc).map(|_| self.word()).collect();
        Document {
            id,
            title: title_words.join(" "),
            body: body_words.join(" "),
        }
    }

    /// Generates a batch of documents.
    pub fn generate(&mut self, n: usize) -> Vec<Document> {
        (0..n).map(|_| self.next_doc()).collect()
    }

    /// Zipf exponent in use.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_sequential_and_unique() {
        let mut g = CorpusGenerator::with_defaults(1);
        let docs = g.generate(100);
        for (i, d) in docs.iter().enumerate() {
            assert_eq!(d.id, i as u64);
            assert!(!d.body.is_empty());
        }
    }

    #[test]
    fn word_frequencies_are_skewed() {
        let mut g = CorpusGenerator::new(2, 1000, 200, 1.0);
        let docs = g.generate(50);
        let mut counts = std::collections::HashMap::new();
        for d in &docs {
            for w in d.body.split(' ') {
                *counts.entry(w.to_string()).or_insert(0u32) += 1;
            }
        }
        let common = counts.get("w0").copied().unwrap_or(0);
        let rare = counts.get("w900").copied().unwrap_or(0);
        assert!(common > 10 * rare.max(1), "w0={common} w900={rare}");
    }

    #[test]
    fn deterministic() {
        let d1 = CorpusGenerator::with_defaults(7).generate(10);
        let d2 = CorpusGenerator::with_defaults(7).generate(10);
        assert_eq!(d1, d2);
    }
}
