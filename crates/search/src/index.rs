//! The inverted index: postings, scoring and top-k retrieval.
//!
//! Scoring is sublinear term frequency, `score(d, q) = Σ_t∈q (1 + ln
//! tf(t, d))` over matched terms. The score of a document depends only on
//! that document's own postings, which makes per-partition top-k lists
//! *exactly* mergeable by the coordinator — no global statistics round is
//! needed (the property HotBot's static partitioning exploits).

use std::collections::BTreeMap;
use std::collections::HashMap;

use crate::doc::Document;
use crate::tokenize;

/// One query result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit {
    /// Document id.
    pub doc: u64,
    /// Relevance score (higher is better).
    pub score: f64,
}

/// An inverted index over a set of documents.
#[derive(Debug, Default)]
pub struct InvertedIndex {
    /// term → (doc → term frequency). BTreeMaps for deterministic order.
    postings: HashMap<String, BTreeMap<u64, u32>>,
    doc_count: u64,
    /// Total postings entries (term-doc pairs), a size metric.
    postings_entries: u64,
}

impl InvertedIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Indexes one document (title + body).
    pub fn add(&mut self, doc: &Document) {
        let mut seen_new = false;
        for token in tokenize(&doc.text()) {
            let entry = self.postings.entry(token).or_default();
            let tf = entry.entry(doc.id).or_insert(0);
            if *tf == 0 {
                self.postings_entries += 1;
                seen_new = true;
            }
            *tf += 1;
        }
        if seen_new {
            self.doc_count += 1;
        }
    }

    /// Number of indexed documents.
    pub fn doc_count(&self) -> u64 {
        self.doc_count
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.postings.len()
    }

    /// Total postings entries (index size metric).
    pub fn postings_entries(&self) -> u64 {
        self.postings_entries
    }

    /// Document frequency of a term.
    pub fn df(&self, term: &str) -> usize {
        self.postings.get(term).map_or(0, |p| p.len())
    }

    /// Scores every matching document and returns the top `k` hits,
    /// ranked by score then ascending doc id (deterministic).
    pub fn query(&self, q: &str, k: usize) -> Vec<SearchHit> {
        let terms = tokenize(q);
        if terms.is_empty() || k == 0 {
            return Vec::new();
        }
        let mut scores: BTreeMap<u64, f64> = BTreeMap::new();
        for term in &terms {
            if let Some(posting) = self.postings.get(term) {
                for (&doc, &tf) in posting {
                    *scores.entry(doc).or_insert(0.0) += 1.0 + f64::from(tf).ln();
                }
            }
        }
        let mut hits: Vec<SearchHit> = scores
            .into_iter()
            .map(|(doc, score)| SearchHit { doc, score })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("scores are finite")
                .then(a.doc.cmp(&b.doc))
        });
        hits.truncate(k);
        hits
    }

    /// Estimated CPU seconds to evaluate a query on commodity hardware of
    /// the paper's era (drives the simulation's worker cost model): linear
    /// in the postings scanned.
    pub fn query_cost_estimate(&self, q: &str) -> f64 {
        let scanned: u64 = tokenize(q).iter().map(|t| self.df(t) as u64).sum();
        // ~1 µs per posting scanned plus fixed parse/collate overhead.
        20e-6 + scanned as f64 * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(id: u64, body: &str) -> Document {
        Document {
            id,
            title: String::new(),
            body: body.to_string(),
        }
    }

    #[test]
    fn query_finds_matching_docs() {
        let mut ix = InvertedIndex::new();
        ix.add(&doc(1, "rust systems programming"));
        ix.add(&doc(2, "haskell functional programming"));
        ix.add(&doc(3, "cooking recipes"));
        let hits = ix.query("programming", 10);
        assert_eq!(hits.len(), 2);
        let ids: Vec<u64> = hits.iter().map(|h| h.doc).collect();
        assert!(ids.contains(&1) && ids.contains(&2));
        assert!(ix.query("rust", 10).len() == 1);
        assert!(ix.query("quantum", 10).is_empty());
    }

    #[test]
    fn repeated_terms_score_higher() {
        let mut ix = InvertedIndex::new();
        ix.add(&doc(1, "cats cats cats cats"));
        ix.add(&doc(2, "cats and dogs"));
        let hits = ix.query("cats", 10);
        assert_eq!(hits[0].doc, 1);
        assert!(hits[0].score > hits[1].score);
    }

    #[test]
    fn multi_term_sums_scores() {
        let mut ix = InvertedIndex::new();
        ix.add(&doc(1, "alpha beta"));
        ix.add(&doc(2, "alpha"));
        let hits = ix.query("alpha beta", 10);
        assert_eq!(hits[0].doc, 1, "matching both terms wins");
    }

    #[test]
    fn top_k_truncates_and_ties_break_by_id() {
        let mut ix = InvertedIndex::new();
        for i in 0..20 {
            ix.add(&doc(i, "same words here"));
        }
        let hits = ix.query("same", 5);
        assert_eq!(hits.len(), 5);
        let ids: Vec<u64> = hits.iter().map(|h| h.doc).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4], "ties broken by ascending id");
    }

    #[test]
    fn counts_and_df() {
        let mut ix = InvertedIndex::new();
        ix.add(&doc(1, "a b a"));
        ix.add(&doc(2, "b c"));
        assert_eq!(ix.doc_count(), 2);
        assert_eq!(ix.df("a"), 1);
        assert_eq!(ix.df("b"), 2);
        assert_eq!(ix.df("zz"), 0);
        assert_eq!(ix.postings_entries(), 4); // a@1, b@1, b@2, c@2
    }

    #[test]
    fn empty_query_is_empty() {
        let mut ix = InvertedIndex::new();
        ix.add(&doc(1, "something"));
        assert!(ix.query("", 10).is_empty());
        assert!(ix.query("   !!!", 10).is_empty());
        assert!(ix.query("something", 0).is_empty());
    }

    #[test]
    fn cost_grows_with_df() {
        let mut ix = InvertedIndex::new();
        for i in 0..100 {
            ix.add(&doc(i, "common"));
        }
        ix.add(&doc(1000, "rareword"));
        assert!(ix.query_cost_estimate("common") > ix.query_cost_estimate("rareword"));
    }
}
