//! The integrated cache of recent searches (Table 1: HotBot caches
//! "recent searches, for incremental delivery").
//!
//! A full result list is computed once per (query, coverage) and then
//! paged out of the cache as the user clicks "next 10": incremental
//! delivery without re-running the fan-out.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::index::SearchHit;

/// A bounded cache of complete result lists, keyed by normalised query.
pub struct QueryCache {
    entries: BTreeMap<String, Vec<SearchHit>>,
    order: VecDeque<String>,
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl QueryCache {
    /// Creates a cache of at most `capacity` recent result lists.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        QueryCache {
            entries: BTreeMap::new(),
            order: VecDeque::new(),
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    fn normalize(q: &str) -> String {
        crate::tokenize(q).join(" ")
    }

    /// Fetches a page of results, computing the full list via `run` only
    /// on a cache miss. `page` is zero-based; `page_size` results per
    /// page.
    pub fn page(
        &mut self,
        query: &str,
        page: usize,
        page_size: usize,
        run: impl FnOnce() -> Vec<SearchHit>,
    ) -> Vec<SearchHit> {
        let key = Self::normalize(query);
        if !self.entries.contains_key(&key) {
            self.misses += 1;
            let full = run();
            self.order.push_back(key.clone());
            if self.order.len() > self.capacity {
                if let Some(victim) = self.order.pop_front() {
                    self.entries.remove(&victim);
                }
            }
            self.entries.insert(key.clone(), full);
        } else {
            self.hits += 1;
        }
        let full = &self.entries[&key];
        full.iter()
            .skip(page * page_size)
            .take(page_size)
            .cloned()
            .collect()
    }

    /// Invalidates everything (e.g. after coverage changes when a
    /// partition dies — stale results are tolerable BASE data, but the
    /// service may choose freshness).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.order.clear();
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Result lists currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits(n: usize) -> Vec<SearchHit> {
        (0..n)
            .map(|i| SearchHit {
                doc: i as u64,
                score: (n - i) as f64,
            })
            .collect()
    }

    #[test]
    fn second_page_serves_from_cache() {
        let mut qc = QueryCache::new(8);
        let mut runs = 0;
        let p0 = qc.page("rust lang", 0, 10, || {
            runs += 1;
            hits(25)
        });
        assert_eq!(p0.len(), 10);
        assert_eq!(p0[0].doc, 0);
        let p1 = qc.page("rust lang", 1, 10, || {
            runs += 1;
            hits(25)
        });
        assert_eq!(p1.len(), 10);
        assert_eq!(p1[0].doc, 10);
        let p2 = qc.page("rust lang", 2, 10, || {
            runs += 1;
            hits(25)
        });
        assert_eq!(p2.len(), 5, "last partial page");
        assert_eq!(runs, 1, "fan-out ran once");
        assert_eq!(qc.stats(), (2, 1));
    }

    #[test]
    fn normalisation_unifies_queries() {
        let mut qc = QueryCache::new(8);
        let _ = qc.page("Rust  LANG!", 0, 5, || hits(5));
        let again = qc.page("rust lang", 0, 5, || panic!("must be cached"));
        assert_eq!(again.len(), 5);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut qc = QueryCache::new(2);
        let _ = qc.page("q1", 0, 5, || hits(1));
        let _ = qc.page("q2", 0, 5, || hits(1));
        let _ = qc.page("q3", 0, 5, || hits(1));
        assert_eq!(qc.len(), 2);
        // q1 must have been evicted: a new run is required.
        let mut reran = false;
        let _ = qc.page("q1", 0, 5, || {
            reran = true;
            hits(1)
        });
        assert!(reran);
    }

    #[test]
    fn out_of_range_page_is_empty() {
        let mut qc = QueryCache::new(2);
        let p = qc.page("q", 9, 10, || hits(5));
        assert!(p.is_empty());
    }
}
