//! Property tests for the search substrate: partitioned retrieval must
//! equal monolithic retrieval on arbitrary corpora and queries, ranking
//! must match a naive scorer, and degradation must only ever shrink the
//! result set.

use sns_testkit::{gens, props, tk_assert, tk_assert_eq, Gen};

use sns_search::doc::Document;
use sns_search::index::InvertedIndex;
use sns_search::partition::PartitionedIndex;
use sns_search::tokenize;

fn word() -> Gen<String> {
    gens::u32_in(0..40).map(|w| format!("w{w}"))
}

fn corpus_gen() -> Gen<Vec<Document>> {
    let n_gen = gens::usize_in(5..40);
    let words_gen = gens::vec(word(), 1..30);
    Gen::new(move |src| {
        let n = n_gen.run(src);
        (0..n as u64)
            .map(|id| Document {
                id,
                title: String::new(),
                body: words_gen.run(src).join(" "),
            })
            .collect()
    })
}

/// Naive scorer: identical semantics, O(corpus) per query.
fn naive_query(corpus: &[Document], q: &str, k: usize) -> Vec<(u64, f64)> {
    let terms = tokenize(q);
    let mut scored: Vec<(u64, f64)> = corpus
        .iter()
        .filter_map(|d| {
            let tokens = tokenize(&d.text());
            let mut score = 0.0;
            for term in &terms {
                let tf = tokens.iter().filter(|t| *t == term).count();
                if tf > 0 {
                    score += 1.0 + (tf as f64).ln();
                }
            }
            (score > 0.0).then_some((d.id, score))
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    scored.truncate(k);
    scored
}

props! {
    fn index_matches_naive_scan(
        corpus in corpus_gen(),
        q in gens::vec(word(), 1..4),
    ) {
        let query = q.join(" ");
        let mut ix = InvertedIndex::new();
        for d in &corpus {
            ix.add(d);
        }
        let got = ix.query(&query, 10);
        let want = naive_query(&corpus, &query, 10);
        tk_assert_eq!(got.len(), want.len());
        for (hit, (doc, score)) in got.iter().zip(&want) {
            tk_assert_eq!(hit.doc, *doc);
            tk_assert!((hit.score - score).abs() < 1e-9);
        }
    }

    fn partitioned_equals_monolithic(
        corpus in corpus_gen(),
        nparts in gens::usize_in(1..8),
        q in gens::vec(word(), 1..4),
    ) {
        let query = q.join(" ");
        let mut mono = InvertedIndex::new();
        let mut parts = PartitionedIndex::new(nparts);
        for d in &corpus {
            mono.add(d);
            parts.add(d);
        }
        let outcome = parts.query(&query, 10);
        tk_assert_eq!((outcome.coverage - 1.0).abs() < 1e-12, true);
        let want = mono.query(&query, 10);
        tk_assert_eq!(outcome.hits, want);
    }

    fn degradation_only_removes_results(
        corpus in corpus_gen(),
        down in gens::usize_in(0..4),
        q in gens::vec(word(), 1..3),
    ) {
        let query = q.join(" ");
        let mut parts = PartitionedIndex::new(4);
        for d in &corpus {
            parts.add(d);
        }
        let full = parts.query(&query, 50);
        parts.set_down(down);
        let degraded = parts.query(&query, 50);
        tk_assert!(degraded.coverage <= 1.0);
        // Every degraded hit was in the full result set.
        for h in &degraded.hits {
            tk_assert!(full.hits.contains(h), "degradation invented a result");
        }
        // Recovery is exact.
        parts.set_up(down);
        let back = parts.query(&query, 50);
        tk_assert_eq!(back.hits, full.hits);
    }

    fn tokenize_roundtrips_clean_words(
        words in gens::vec(gens::string("[a-z]{1,8}"), 0..20),
    ) {
        let text = words.join(" ");
        tk_assert_eq!(tokenize(&text), words);
    }
}
