//! A small MPMC channel over `Mutex<VecDeque>` + `Condvar` — the one
//! place the runtime needs semantics `std::sync::mpsc` does not offer:
//! clonable receivers (so the manager can salvage a crashed worker's
//! queued jobs for redispatch), a queue-length gauge for load reports,
//! and explicit `close()` that lets receivers drain remaining messages
//! before observing disconnection (shutdown-drains-queues).
//!
//! Reply paths, which are strictly one-shot SPSC, use
//! `std::sync::mpsc::sync_channel(1)` instead — no shim needed there.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when the channel is closed; the
/// unsent message is handed back.
#[derive(Debug)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The deadline passed with the queue empty (channel still open).
    Timeout,
    /// The queue is empty and the channel is closed or all senders are
    /// gone; no message will ever arrive.
    Disconnected,
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecvError {
    /// Queue empty right now.
    Empty,
    /// Queue empty and closed/sender-less.
    Disconnected,
}

struct State<T> {
    queue: VecDeque<T>,
    senders: usize,
    closed: bool,
}

struct Shared<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    not_full: Condvar,
    cap: Option<usize>,
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl<T> Shared<T> {
    fn close(&self) {
        lock(&self.state).closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    fn len(&self) -> usize {
        lock(&self.state).queue.len()
    }
}

/// Sending half; clonable (multi-producer).
pub struct Sender<T>(Arc<Shared<T>>);

/// Receiving half; clonable (multi-consumer).
pub struct Receiver<T>(Arc<Shared<T>>);

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        lock(&self.0.state).senders += 1;
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = lock(&self.0.state);
        st.senders -= 1;
        if st.senders == 0 {
            drop(st);
            self.0.not_empty.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Sender<T> {
    /// Enqueues `value`, blocking while a bounded channel is full.
    /// Fails (returning the value) once the channel is closed.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut st = lock(&self.0.state);
        loop {
            if st.closed {
                return Err(SendError(value));
            }
            match self.0.cap {
                Some(cap) if st.queue.len() >= cap => {
                    st = self
                        .0
                        .not_full
                        .wait(st)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                _ => break,
            }
        }
        st.queue.push_back(value);
        drop(st);
        self.0.not_empty.notify_one();
        Ok(())
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the channel: future sends fail, receivers drain what is
    /// already queued and then observe `Disconnected`.
    pub fn close(&self) {
        self.0.close();
    }
}

impl<T> Receiver<T> {
    /// Dequeues a message, waiting up to `timeout`. Queued messages are
    /// delivered even after `close()` — disconnection is only reported
    /// once the queue is drained.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut st = lock(&self.0.state);
        loop {
            if let Some(v) = st.queue.pop_front() {
                drop(st);
                self.0.not_full.notify_one();
                return Ok(v);
            }
            if st.closed || st.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .0
                .not_empty
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            st = guard;
        }
    }

    /// Dequeues a message if one is immediately available.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut st = lock(&self.0.state);
        if let Some(v) = st.queue.pop_front() {
            drop(st);
            self.0.not_full.notify_one();
            return Ok(v);
        }
        if st.closed || st.senders == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Steals one message from the *back* of the queue without ever
    /// blocking: returns `None` immediately if the lock is contended or
    /// the queue is empty. Work-stealing consumers take the newest
    /// message so the queue's owner — draining from the front — keeps
    /// FIFO order for everything it processes itself, and a thief never
    /// waits behind a busy owner.
    pub fn try_steal(&self) -> Option<T> {
        let mut st = self.0.state.try_lock().ok()?;
        let v = st.queue.pop_back()?;
        drop(st);
        self.0.not_full.notify_one();
        Some(v)
    }

    /// Messages currently queued.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// See [`Sender::close`].
    pub fn close(&self) {
        self.0.close();
    }
}

fn channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(State {
            queue: VecDeque::new(),
            senders: 1,
            closed: false,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        cap,
    });
    (Sender(Arc::clone(&shared)), Receiver(shared))
}

/// An unbounded MPMC channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

/// A bounded MPMC channel; `send` blocks while `cap` messages queue.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap.max(1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_order_across_clones() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        tx2.send(2).unwrap();
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
        assert_eq!(rx.clone().recv_timeout(Duration::from_millis(10)), Ok(2));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
    }

    #[test]
    fn close_drains_then_disconnects() {
        let (tx, rx) = unbounded();
        tx.send("queued").unwrap();
        tx.close();
        assert!(tx.send("late").is_err());
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok("queued"));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn dropping_all_senders_disconnects() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        drop(tx);
        tx2.send(7).unwrap();
        drop(tx2);
        assert_eq!(rx.try_recv(), Ok(7));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_send_blocks_until_recv() {
        let (tx, rx) = bounded(1);
        tx.send(1u32).unwrap();
        let t = std::thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the main thread receives
            tx.send(3).unwrap();
        });
        let mut got = Vec::new();
        for _ in 0..3 {
            got.push(rx.recv_timeout(Duration::from_secs(2)).unwrap());
        }
        t.join().unwrap();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn steal_takes_newest_and_never_blocks() {
        let (tx, rx) = unbounded();
        for i in 0..4u32 {
            tx.send(i).unwrap();
        }
        let thief = rx.clone();
        assert_eq!(thief.try_steal(), Some(3), "thief takes the back");
        assert_eq!(rx.try_recv(), Ok(0), "owner keeps FIFO at the front");
        assert_eq!(thief.try_steal(), Some(2));
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(thief.try_steal(), None, "empty queue steals nothing");
        // A bounded channel's blocked sender wakes when a thief frees a
        // slot.
        let (btx, brx) = bounded(1);
        btx.send(10u32).unwrap();
        let t = std::thread::spawn(move || btx.send(11).unwrap());
        let mut stolen = None;
        while stolen.is_none() {
            stolen = brx.try_steal();
        }
        t.join().unwrap();
        assert_eq!(stolen, Some(10));
        assert_eq!(brx.try_recv(), Ok(11));
    }

    #[test]
    fn two_consumers_split_the_work() {
        let (tx, rx) = unbounded();
        for i in 0..100u32 {
            tx.send(i).unwrap();
        }
        tx.close();
        let rx2 = rx.clone();
        let worker = |rx: Receiver<u32>| {
            std::thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv_timeout(Duration::from_millis(200)) {
                    got.push(v);
                }
                got
            })
        };
        let (a, b) = (worker(rx), worker(rx2));
        let mut all: Vec<u32> = a.join().unwrap();
        all.extend(b.join().unwrap());
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }
}
