//! # sns-rt — the real multi-threaded runtime
//!
//! The simulator in `sns-sim` runs the architecture over virtual time;
//! this crate runs the *same worker code* (`sns_core::WorkerLogic`
//! implementations — TACC distillers, cache partitions, anything) as
//! actual OS threads connected by channels, demonstrating that the
//! component abstractions are not simulation artifacts. It is the
//! paper's "simple matter of software" claim made literal: the SNS
//! mechanics — registration beacons, queue-length load reports, lottery
//! scheduling on slightly stale hints, crash detection and process-peer
//! restart — reappear here over plain `std::sync` primitives instead of
//! the simulated SAN. Worker inboxes use the in-repo [`chan`] MPMC shim
//! (clonable receivers let the manager salvage a crashed worker's queue
//! for redispatch); one-shot replies use `std::sync::mpsc`.
//!
//! Every scheduling and respawn *decision* is made by the sans-IO
//! control plane shared with the simulator
//! ([`sns_core::ControlPlane`] for the manager half,
//! [`sns_core::DispatchPlane`] for the submit path): this crate only
//! feeds those machines wall-clock timestamps, load reports and death
//! notices, and maps the returned effect lists onto threads and
//! channels. The simulator and this runtime therefore cannot drift —
//! they *are* the same policy code, which the
//! `control_plane_parity` differential test pins down.
//!
//! Scope: this is the laptop-scale runtime for examples and tests, not a
//! distributed deployment; "nodes" are threads and the SAN is a channel
//! fabric. Service times from the worker logic are honoured by sleeping
//! (scaled by [`RtConfig::time_scale`], so tests stay fast).
//!
//! ```
//! use sns_rt::{RtCluster, RtConfig};
//! use sns_core::{Blob, Payload, WorkerClass};
//! use sns_core::msg::Job;
//! use sns_core::worker::{WorkerError, WorkerLogic};
//! use sns_sim::rng::Pcg32;
//! use sns_sim::time::SimTime;
//! use std::time::Duration;
//!
//! struct Echo;
//! impl WorkerLogic for Echo {
//!     fn class(&self) -> WorkerClass { "echo".into() }
//!     fn service_time(&mut self, _: &Job, _: SimTime, _: &mut Pcg32) -> Duration {
//!         Duration::from_millis(5)
//!     }
//!     fn process(&mut self, job: &Job, _: SimTime, _: &mut Pcg32)
//!         -> Result<Payload, WorkerError>
//!     {
//!         Ok(Blob::payload(job.input.wire_size() / 2, "echoed"))
//!     }
//! }
//!
//! let cluster = RtCluster::start(RtConfig::default());
//! cluster.add_workers("echo", 2, || Box::new(Echo));
//! let reply = cluster
//!     .submit("echo", "echo", Blob::payload(1000, "hi"), None)
//!     .recv_timeout(Duration::from_secs(5))
//!     .expect("worker answers");
//! assert!(matches!(reply, sns_core::msg::JobResult::Ok(_)));
//! cluster.shutdown();
//! ```

#![warn(missing_docs)]

pub mod chan;

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sns_core::control::{
    ClusterView, ControlConfig, ControlEffect, ControlPlane, DispatchEffect, DispatchPlane,
    NodeLoad, SpawnPolicy, TimeoutVerdict,
};
use sns_core::invariant::MonitorLog;
use sns_core::monitor::MonitorEvent;
use sns_core::msg::{JobResult, ProfileData};
use sns_core::trace::{self, TraceLog, Tracer};
use sns_core::worker::{WorkerError, WorkerLogic};
use sns_core::{intern_class, Payload, SnsConfig, WorkerClass};
use sns_sim::rng::Pcg32;
use sns_sim::time::SimTime;
use sns_sim::{ComponentId, NodeId};

/// Poison-aware lock: a thread that panicked while holding a lock left
/// consistent-enough state (all invariants here are monotonic counters
/// and maps that tolerate partial updates), so recover the guard instead
/// of unwrapping — but *count* the event so operators and tests can see
/// it happened.
fn lock<'a, T>(m: &'a Mutex<T>, poisoned: &AtomicU64) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(e) => {
            poisoned.fetch_add(1, Ordering::Relaxed);
            e.into_inner()
        }
    }
}

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct RtConfig {
    /// Multiplier applied to worker service times (0.01 = run the
    /// cluster 100x faster than the modelled hardware).
    pub time_scale: f64,
    /// Worker load-report period.
    pub report_period: Duration,
    /// Manager hint-publication (beacon) period.
    pub beacon_period: Duration,
    /// RNG seed for worker streams and lottery draws.
    pub seed: u64,
    /// Restart crashed workers (process peers).
    pub restart_on_crash: bool,
    /// Virtual nodes (placement domains for fault injection; threads do
    /// not actually move).
    pub nodes: usize,
    /// Wall-clock backstop for a submitted job before the dispatch plane
    /// is asked to retry or give up. Generous by default: the inline
    /// refusal path already handles dead-worker retries, so this only
    /// fires for jobs stranded with no live worker.
    pub dispatch_timeout: Duration,
    /// Record end-to-end spans (dispatch, queue wait, service) into an
    /// in-memory trace, exportable via [`RtCluster::trace_snapshot`].
    /// Timestamps are wall-clock nanoseconds since cluster start.
    pub tracing: bool,
}

impl Default for RtConfig {
    fn default() -> Self {
        RtConfig {
            time_scale: 0.1,
            report_period: Duration::from_millis(50),
            beacon_period: Duration::from_millis(100),
            seed: 0x517e,
            restart_on_crash: true,
            nodes: 1,
            dispatch_timeout: Duration::from_secs(60),
            tracing: false,
        }
    }
}

/// Builds fresh worker logic for (re)starts.
pub type RtWorkerFactory = Box<dyn Fn() -> Box<dyn WorkerLogic> + Send + Sync>;

struct RtJob {
    job: sns_core::msg::Job,
    reply: mpsc::SyncSender<JobResult>,
    /// When the job entered a worker inbox (queue-wait span start;
    /// survives salvage/redispatch so the wait covers the whole gap).
    enqueued: SimTime,
}

/// One live worker thread's handle.
struct WorkerHandle {
    id: u64,
    class: WorkerClass,
    node: NodeId,
    inbox: chan::Sender<RtJob>,
    /// Second receiver on the inbox (MPMC): lets the manager drain jobs
    /// a crashed worker left queued and redispatch them.
    salvage: chan::Receiver<RtJob>,
    /// Shared queue-length gauge (inbox depth + in-service).
    qlen: Arc<AtomicU64>,
    alive: Arc<AtomicBool>,
    /// Fault-injection flag: when set, the worker dies at the next loop
    /// iteration without replying (a modelled process crash).
    kill: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

/// A virtual placement domain: the control plane sees these as nodes;
/// killing one crashes every worker placed on it and removes it from
/// the placement view until revived.
struct VNode {
    node: NodeId,
    alive: bool,
    /// Service-time multiplier (f64 bits) — straggler injection.
    slow: Arc<AtomicU64>,
}

/// Everything the control and dispatch planes decide over, under one
/// lock so every decision sees a consistent cluster.
struct Inner {
    control: ControlPlane,
    dispatch: DispatchPlane,
    workers: Vec<WorkerHandle>,
    factories: BTreeMap<WorkerClass, Arc<RtWorkerFactory>>,
    policies: BTreeMap<WorkerClass, SpawnPolicy>,
    /// Salvage receivers of dead workers awaiting redispatch.
    morgue: Vec<(WorkerClass, chan::Receiver<RtJob>)>,
    /// Reply channel per outstanding job id.
    replies: BTreeMap<u64, mpsc::SyncSender<JobResult>>,
    /// Wall-clock dispatch deadline per outstanding job id.
    deadlines: BTreeMap<u64, Instant>,
    /// Job ids already counted in `submitted` (retries resend the same
    /// id; the conservation ledger must count it once).
    counted: BTreeSet<u64>,
    rng: Pcg32,
    vnodes: Vec<VNode>,
}

/// The component id the control plane runs under (workers count up
/// from the next id).
const MANAGER: ComponentId = ComponentId(1);

/// A running cluster of real worker threads.
///
/// All policy — lottery scheduling with the §4.5 queue-delta
/// correction, stale-hint eviction and retry, process-peer restart,
/// class minimums — lives in the shared sans-IO planes; this type owns
/// the threads, channels and clocks and applies the planes' effects.
pub struct RtCluster {
    cfg: RtConfig,
    inner: Arc<Mutex<Inner>>,
    running: Arc<AtomicBool>,
    manager_on: Arc<AtomicBool>,
    /// Fault injection: suppress hint publication (beacons) so stubs
    /// run on stale data (§3.1.8).
    beacon_blackout: AtomicBool,
    next_id: AtomicU64,
    incarnation: AtomicU64,
    manager: Mutex<Option<JoinHandle<()>>>,
    started: Instant,
    /// Decision log in canonical monitor-event form — the same stream
    /// the simulator's `MonitorTap` captures, so chaos invariants and
    /// the parity test run against either backend unchanged.
    log: Arc<Mutex<MonitorLog>>,
    counters: Mutex<BTreeMap<&'static str, u64>>,
    /// Jobs accepted into some worker's queue.
    pub submitted: Arc<AtomicU64>,
    /// Jobs completed successfully.
    pub jobs_done: Arc<AtomicU64>,
    /// Worker crashes (pathological input or injected).
    pub crashes: Arc<AtomicU64>,
    /// Process-peer restarts performed.
    pub restarts: Arc<AtomicU64>,
    /// Orphaned jobs salvaged from dead workers' queues.
    pub redispatched: Arc<AtomicU64>,
    /// Times a poisoned lock was recovered (a worker panicked while
    /// holding it).
    pub lock_poisoned: Arc<AtomicU64>,
    /// Span recorder shared by the submit path and the worker threads;
    /// disabled (no-op) unless [`RtConfig::tracing`] is set.
    tracer: Tracer,
}

impl RtCluster {
    /// Starts a cluster (manager thread included, incarnation 1).
    pub fn start(cfg: RtConfig) -> Arc<RtCluster> {
        let plane_sns = Self::plane_sns(&cfg);
        let vnodes = (0..cfg.nodes.max(1))
            .map(|i| VNode {
                node: NodeId(i as u32),
                alive: true,
                slow: Arc::new(AtomicU64::new(1.0f64.to_bits())),
            })
            .collect();
        let seed = cfg.seed;
        let cluster = Arc::new(RtCluster {
            inner: Arc::new(Mutex::new(Inner {
                // Placeholder incarnation 0; `start_manager` installs
                // the real plane before any work is accepted.
                control: ControlPlane::new(ControlConfig {
                    sns: plane_sns.clone(),
                    incarnation: 0,
                    restart_front_ends: false,
                }),
                dispatch: {
                    let mut d = DispatchPlane::new(plane_sns);
                    d.set_tracing(cfg.tracing);
                    d
                },
                workers: Vec::new(),
                factories: BTreeMap::new(),
                policies: BTreeMap::new(),
                morgue: Vec::new(),
                replies: BTreeMap::new(),
                deadlines: BTreeMap::new(),
                counted: BTreeSet::new(),
                rng: Pcg32::new(seed),
                vnodes,
            })),
            running: Arc::new(AtomicBool::new(true)),
            manager_on: Arc::new(AtomicBool::new(false)),
            beacon_blackout: AtomicBool::new(false),
            next_id: AtomicU64::new(MANAGER.0 + 1),
            incarnation: AtomicU64::new(0),
            manager: Mutex::new(None),
            started: Instant::now(),
            log: Arc::new(Mutex::new(MonitorLog::default())),
            counters: Mutex::new(BTreeMap::new()),
            submitted: Arc::new(AtomicU64::new(0)),
            jobs_done: Arc::new(AtomicU64::new(0)),
            crashes: Arc::new(AtomicU64::new(0)),
            restarts: Arc::new(AtomicU64::new(0)),
            redispatched: Arc::new(AtomicU64::new(0)),
            lock_poisoned: Arc::new(AtomicU64::new(0)),
            tracer: if cfg.tracing {
                Tracer::enabled()
            } else {
                Tracer::disabled()
            },
            cfg,
        });
        cluster.start_manager();
        cluster
    }

    /// The layer config the shared planes run under: rt timing, with
    /// report-silence inference disabled — worker deaths here are
    /// *observed* (thread exit), not inferred, so the explicit
    /// death-notice path must be the only one that fires.
    fn plane_sns(cfg: &RtConfig) -> SnsConfig {
        SnsConfig {
            report_period: cfg.report_period,
            beacon_period: cfg.beacon_period,
            dispatch_timeout: cfg.dispatch_timeout,
            worker_report_timeout: Duration::from_secs(3600),
            ..SnsConfig::default()
        }
    }

    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.started.elapsed().as_nanos() as u64)
    }

    fn lock_inner(&self) -> MutexGuard<'_, Inner> {
        lock(&self.inner, &self.lock_poisoned)
    }

    fn incr(&self, key: &'static str, n: u64) {
        *lock(&self.counters, &self.lock_poisoned)
            .entry(key)
            .or_insert(0) += n;
    }

    /// The control plane's placement snapshot: alive virtual nodes with
    /// their live-worker counts.
    fn view_of(inner: &Inner) -> ClusterView {
        let mut dedicated = Vec::new();
        for v in &inner.vnodes {
            if !v.alive {
                continue;
            }
            let components = inner
                .workers
                .iter()
                .filter(|w| w.node == v.node && w.alive.load(Ordering::Relaxed))
                .count() as u32;
            dedicated.push(NodeLoad {
                node: v.node,
                components,
            });
        }
        ClusterView {
            dedicated,
            overflow: Vec::new(),
            pinned_alive: BTreeMap::new(),
            spawn_latency: Duration::ZERO,
        }
    }

    /// Adds `n` workers of a class built by `factory` (kept for
    /// restarts). Hints are published immediately so submits can land
    /// before the first beacon tick.
    pub fn add_workers(
        &self,
        class: &str,
        n: usize,
        factory: impl Fn() -> Box<dyn WorkerLogic> + Send + Sync + 'static,
    ) {
        let class = WorkerClass::new(class);
        let mut guard = self.lock_inner();
        let inner = &mut *guard;
        inner
            .factories
            .insert(class.clone(), Arc::new(Box::new(factory)));
        let policy = inner.policies.entry(class.clone()).or_insert(SpawnPolicy {
            min_workers: 0,
            max_workers: 0,
            max_per_node: 0,
            auto_scale: false,
            restart_on_crash: self.cfg.restart_on_crash,
            pinned_node: None,
        });
        if self.cfg.restart_on_crash {
            policy.min_workers += n as u32;
        }
        let policy = policy.clone();
        inner.control.add_class(class.clone(), policy);
        let now = self.now();
        let target = inner.control.class_strength(&class) + n as u32;
        let view = Self::view_of(inner);
        let mut out = Vec::new();
        inner
            .control
            .ensure_workers(&class, target, now, &view, &mut out);
        self.apply_control(inner, out, false, now);
        self.refresh_hints(inner);
    }

    /// Applies control-plane effects, in order, onto threads/channels.
    /// `count_restarts` distinguishes recovery spawns from bootstrap.
    fn apply_control(
        &self,
        inner: &mut Inner,
        effects: Vec<ControlEffect>,
        count_restarts: bool,
        now: SimTime,
    ) {
        for effect in effects {
            match effect {
                ControlEffect::Spawn {
                    token,
                    class,
                    node,
                    overflow: _,
                } => {
                    let Some(factory) = inner.factories.get(&class).map(Arc::clone) else {
                        continue;
                    };
                    let slow = inner
                        .vnodes
                        .iter()
                        .find(|v| v.node == node)
                        .map(|v| Arc::clone(&v.slow))
                        .unwrap_or_else(|| Arc::new(AtomicU64::new(1.0f64.to_bits())));
                    let handle = self.spawn_worker_thread(factory(), node, slow);
                    let id = ComponentId(handle.id);
                    inner.control.confirm_spawn(token, id);
                    // Registration is synchronous here (no SAN between
                    // the manager and a thread it just started); the
                    // Watch effect is meaningless to this driver.
                    inner
                        .control
                        .on_register_worker(id, class, node, false, now, &mut Vec::new());
                    inner.workers.push(handle);
                    if count_restarts {
                        self.restarts.fetch_add(1, Ordering::Relaxed);
                    }
                }
                ControlEffect::Shutdown { worker } => {
                    // Graceful reap: close the inbox; the thread drains
                    // its queue and exits.
                    if let Some(w) = inner.workers.iter().find(|w| ComponentId(w.id) == worker) {
                        w.inbox.close();
                    }
                }
                ControlEffect::Beacon(data) => {
                    if self.beacon_blackout.load(Ordering::Relaxed) {
                        continue;
                    }
                    let mut out = Vec::new();
                    {
                        let Inner { dispatch, rng, .. } = inner;
                        dispatch.on_beacon(&data);
                        dispatch.flush_pending(rng, &mut out);
                    }
                    self.deliver(inner, out);
                }
                ControlEffect::Emit(ev) => {
                    // Mirror decisions into the trace as instants (the
                    // sim monitor does the same), so recoveries line up
                    // with the request spans they perturb.
                    if self.tracer.is_enabled() && !matches!(ev, MonitorEvent::Heartbeat { .. }) {
                        self.tracer
                            .instant(ev.kind_key(), trace::CAT_MONITOR, MANAGER, now);
                    }
                    lock(&self.log, &self.lock_poisoned).push(now, ev);
                }
                ControlEffect::Incr { key, n } => self.incr(key, n),
                // No front-end processes, no engine watch list, no
                // stats hub, no rival managers in this runtime.
                ControlEffect::SpawnFrontEnd { .. }
                | ControlEffect::Watch(_)
                | ControlEffect::Unwatch(_)
                | ControlEffect::Sample { .. }
                | ControlEffect::StepDown => {}
            }
        }
    }

    /// Applies dispatch-plane effects. Jobs aimed at dead workers are
    /// refused inline, which feeds the plane's timeout/retry path
    /// immediately instead of waiting out a wall-clock timer.
    fn deliver(&self, inner: &mut Inner, effects: Vec<DispatchEffect>) {
        let mut queue: VecDeque<DispatchEffect> = effects.into();
        while let Some(effect) = queue.pop_front() {
            match effect {
                DispatchEffect::SendJob { worker, job } => {
                    let target = inner
                        .workers
                        .iter()
                        .find(|w| ComponentId(w.id) == worker && w.alive.load(Ordering::Relaxed))
                        .map(|w| (w.inbox.clone(), Arc::clone(&w.qlen)));
                    let Some((inbox, qlen)) = target else {
                        self.refuse(inner, job.id, &mut queue);
                        continue;
                    };
                    let Some(reply) = inner.replies.get(&job.id).cloned() else {
                        continue; // reply channel gone: job already settled
                    };
                    qlen.fetch_add(1, Ordering::Relaxed);
                    match inbox.send(RtJob {
                        job: (*job).clone(),
                        reply,
                        enqueued: self.now(),
                    }) {
                        Ok(()) => {
                            if inner.counted.insert(job.id) {
                                self.submitted.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(chan::SendError(_)) => self.refuse(inner, job.id, &mut queue),
                    }
                }
                DispatchEffect::NeedWorker { class, .. } => {
                    if self.manager_on.load(Ordering::Relaxed) {
                        let now = self.now();
                        let view = Self::view_of(inner);
                        let mut out = Vec::new();
                        inner.control.on_need_worker(&class, now, &view, &mut out);
                        self.apply_control(inner, out, true, now);
                    }
                }
                DispatchEffect::Incr { key, n } => self.incr(key, n),
                DispatchEffect::Span(s) => self.tracer.record(s),
            }
        }
    }

    /// A job could not be handed to its chosen worker: run the plane's
    /// timeout path now (evict the dead hint, retry elsewhere or give
    /// up) and queue whatever it decides.
    fn refuse(&self, inner: &mut Inner, job_id: u64, queue: &mut VecDeque<DispatchEffect>) {
        let now = self.now();
        let mut out = Vec::new();
        let verdict = {
            let Inner { dispatch, rng, .. } = inner;
            dispatch.on_timeout(rng, now, job_id, &mut out)
        };
        match verdict {
            TimeoutVerdict::Retried => {
                inner
                    .deadlines
                    .insert(job_id, Instant::now() + self.cfg.dispatch_timeout);
            }
            TimeoutVerdict::GaveUp(_) => {
                inner.deadlines.remove(&job_id);
                if let Some(tx) = inner.replies.remove(&job_id) {
                    let _ = tx.try_send(JobResult::Failed("no live worker".into()));
                }
            }
            TimeoutVerdict::Unknown => {
                inner.deadlines.remove(&job_id);
            }
        }
        queue.extend(out);
    }

    /// Submits a job; the reply arrives on the returned channel. The
    /// worker is chosen by the shared dispatch plane (lottery over
    /// beacon hints with the §4.5 queue-delta correction); a stale pick
    /// is refused by the driver and retried through the same plane.
    pub fn submit(
        &self,
        class: &str,
        op: &str,
        input: Payload,
        profile: Option<ProfileData>,
    ) -> mpsc::Receiver<JobResult> {
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        if !self.running.load(Ordering::Relaxed) {
            let _ = reply_tx.send(JobResult::Failed("cluster is shut down".into()));
            return reply_rx;
        }
        let class = WorkerClass::new(class);
        let mut guard = self.lock_inner();
        let inner = &mut *guard;
        if !inner.factories.contains_key(&class) {
            drop(guard);
            let _ = reply_tx.send(JobResult::Failed(format!("no workers of class {class}")));
            return reply_rx;
        }
        let now = self.now();
        let mut out = Vec::new();
        let job_id = {
            let Inner { dispatch, rng, .. } = inner;
            dispatch.dispatch(
                rng,
                now,
                ComponentId::EXTERNAL,
                class,
                op.to_string(),
                input,
                profile,
                None,
                &mut out,
            )
        };
        inner.replies.insert(job_id, reply_tx);
        inner
            .deadlines
            .insert(job_id, Instant::now() + self.cfg.dispatch_timeout);
        self.deliver(inner, out);
        reply_rx
    }

    /// Spawns one worker thread. The thread honours service times by
    /// sleeping (scaled), crashes by *not replying* (the queue is
    /// salvaged later), and reports completions straight into the
    /// dispatch plane.
    fn spawn_worker_thread(
        &self,
        mut logic: Box<dyn WorkerLogic>,
        node: NodeId,
        slow: Arc<AtomicU64>,
    ) -> WorkerHandle {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let class = logic.class();
        let (tx, rx) = chan::unbounded::<RtJob>();
        let salvage = rx.clone();
        let qlen = Arc::new(AtomicU64::new(0));
        let alive = Arc::new(AtomicBool::new(true));
        let kill = Arc::new(AtomicBool::new(false));

        let running = Arc::clone(&self.running);
        let jobs_done = Arc::clone(&self.jobs_done);
        let crashes = Arc::clone(&self.crashes);
        let log = Arc::clone(&self.log);
        let poisoned = Arc::clone(&self.lock_poisoned);
        let weak: Weak<Mutex<Inner>> = Arc::downgrade(&self.inner);
        let time_scale = self.cfg.time_scale;
        let seed = self.cfg.seed ^ id;
        let started = self.started;
        let tracer = self.tracer.clone();
        let class_key = intern_class(class.name());
        let alive_t = Arc::clone(&alive);
        let kill_t = Arc::clone(&kill);
        let qlen_t = Arc::clone(&qlen);
        let class_t = class.clone();

        let crash = {
            let crashes = Arc::clone(&crashes);
            let log = Arc::clone(&log);
            let poisoned = Arc::clone(&poisoned);
            let alive = Arc::clone(&alive_t);
            let class = class_t.clone();
            move || {
                crashes.fetch_add(1, Ordering::Relaxed);
                let now = SimTime::from_nanos(started.elapsed().as_nanos() as u64);
                lock(&log, &poisoned).push(
                    now,
                    MonitorEvent::WorkerCrashed {
                        worker: ComponentId(id),
                        class: class.clone(),
                    },
                );
                // The store is last: once the manager sees !alive it
                // will join this thread, which must not block again.
                alive.store(false, Ordering::Relaxed);
            }
        };

        let join = std::thread::Builder::new()
            .name(format!("sns-rt-{}-{}", class.name().replace('/', "-"), id))
            .spawn(move || {
                let mut rng = Pcg32::new(seed);
                loop {
                    if kill_t.load(Ordering::Relaxed) {
                        crash();
                        return;
                    }
                    let rt_job = match rx.recv_timeout(Duration::from_millis(50)) {
                        Ok(j) => j,
                        Err(chan::RecvTimeoutError::Timeout) => {
                            if running.load(Ordering::Relaxed) {
                                continue;
                            } else {
                                break;
                            }
                        }
                        Err(chan::RecvTimeoutError::Disconnected) => break,
                    };
                    qlen_t.store(rx.len() as u64 + 1, Ordering::Relaxed);
                    let now = SimTime::from_nanos(started.elapsed().as_nanos() as u64);
                    let me = ComponentId(id);
                    let parent = trace::job_span_id(rt_job.job.reply_to, rt_job.job.id);
                    if tracer.is_enabled() {
                        tracer.record(trace::span(
                            trace::queue_span_id(me, rt_job.job.id),
                            Some(parent),
                            trace::QUEUE,
                            trace::CAT_WORKER,
                            me,
                            class_key,
                            rt_job.enqueued,
                            now,
                            0,
                            true,
                        ));
                    }
                    let service = logic.service_time(&rt_job.job, now, &mut rng);
                    let factor = time_scale.max(0.0) * f64::from_bits(slow.load(Ordering::Relaxed));
                    std::thread::sleep(service.mul_f64(factor));
                    let done = SimTime::from_nanos(started.elapsed().as_nanos() as u64);
                    let service_span = |bytes: u64, ok: bool| {
                        if tracer.is_enabled() {
                            tracer.record(trace::span(
                                trace::service_span_id(me, rt_job.job.id),
                                Some(parent),
                                trace::SERVICE,
                                trace::CAT_WORKER,
                                me,
                                class_key,
                                now,
                                done,
                                bytes,
                                ok,
                            ));
                        }
                    };
                    match logic.process(&rt_job.job, now, &mut rng) {
                        Ok(payload) => {
                            jobs_done.fetch_add(1, Ordering::Relaxed);
                            service_span(payload.wire_size(), true);
                            let _ = rt_job.reply.send(JobResult::Ok(payload));
                            finish(&weak, &poisoned, &tracer, done, rt_job.job.id);
                        }
                        Err(WorkerError::Failed(reason)) => {
                            service_span(0, false);
                            let _ = rt_job.reply.send(JobResult::Failed(reason));
                            finish(&weak, &poisoned, &tracer, done, rt_job.job.id);
                        }
                        Err(WorkerError::Crash) => {
                            // No reply, no settlement: the job vanishes
                            // with the "process" (§3.1.6); dispatch
                            // state is reclaimed by the deadline sweep.
                            service_span(0, false);
                            crash();
                            return;
                        }
                    }
                    qlen_t.store(rx.len() as u64, Ordering::Relaxed);
                }
            })
            .expect("spawn worker thread");

        WorkerHandle {
            id,
            class,
            node,
            inbox: tx,
            salvage,
            qlen,
            alive,
            kill,
            join: Some(join),
        }
    }

    /// One manager-loop step: reconcile deaths, feed load reports,
    /// tick the control plane (beacon + policy), salvage orphaned
    /// queues, sweep dispatch deadlines.
    fn control_step(&self) {
        let now = self.now();
        let mut guard = self.lock_inner();
        let inner = &mut *guard;
        self.process_deaths(inner, now);
        let reports: Vec<(u64, WorkerClass, u32, NodeId)> = inner
            .workers
            .iter()
            .filter(|w| w.alive.load(Ordering::Relaxed))
            .map(|w| {
                (
                    w.id,
                    w.class.clone(),
                    w.qlen.load(Ordering::Relaxed) as u32,
                    w.node,
                )
            })
            .collect();
        for (id, class, qlen, node) in reports {
            let mut out = Vec::new();
            inner.control.on_load_report(
                ComponentId(id),
                class,
                qlen,
                now,
                || (node, false),
                &mut out,
            );
            self.apply_control(inner, out, true, now);
        }
        let view = Self::view_of(inner);
        let mut out = Vec::new();
        inner.control.on_tick(now, &view, &mut out);
        self.apply_control(inner, out, true, now);
        self.drain_morgue(inner);
        self.sweep_deadlines(inner);
    }

    /// Joins dead worker threads, moves their queues to the morgue and
    /// notifies the control plane (which decides whether a process
    /// peer is started, §3.1.3).
    fn process_deaths(&self, inner: &mut Inner, now: SimTime) {
        while let Some(idx) = inner
            .workers
            .iter()
            .position(|w| !w.alive.load(Ordering::Relaxed))
        {
            let mut dead = inner.workers.remove(idx);
            if let Some(j) = dead.join.take() {
                let _ = j.join();
            }
            inner
                .morgue
                .push((dead.class.clone(), dead.salvage.clone()));
            let view = Self::view_of(inner);
            let mut out = Vec::new();
            inner
                .control
                .on_peer_death(ComponentId(dead.id), now, &view, &mut out);
            self.apply_control(inner, out, true, now);
        }
    }

    /// Redispatches jobs stranded in dead workers' queues onto the
    /// newest live worker of the class (the replacement, when there is
    /// one).
    fn drain_morgue(&self, inner: &mut Inner) {
        let morgue = std::mem::take(&mut inner.morgue);
        let mut kept = Vec::new();
        for (class, salvage) in morgue {
            let target = inner
                .workers
                .iter()
                .filter(|w| w.class == class && w.alive.load(Ordering::Relaxed))
                .max_by_key(|w| w.id)
                .map(|w| (w.inbox.clone(), Arc::clone(&w.qlen)));
            let Some((inbox, qlen)) = target else {
                kept.push((class, salvage)); // no survivor yet: try next step
                continue;
            };
            let mut moved = 0u64;
            while let Ok(orphan) = salvage.try_recv() {
                if inbox.send(orphan).is_ok() {
                    moved += 1;
                }
            }
            if moved > 0 {
                qlen.fetch_add(moved, Ordering::Relaxed);
                self.redispatched.fetch_add(moved, Ordering::Relaxed);
            }
        }
        inner.morgue = kept;
    }

    /// Runs the dispatch plane's timeout handler for every job past its
    /// wall-clock deadline.
    fn sweep_deadlines(&self, inner: &mut Inner) {
        let wall = Instant::now();
        let expired: Vec<u64> = inner
            .deadlines
            .iter()
            .filter(|&(_, d)| *d <= wall)
            .map(|(&id, _)| id)
            .collect();
        for job_id in expired {
            let mut queue = VecDeque::new();
            self.refuse(inner, job_id, &mut queue);
            let effects: Vec<DispatchEffect> = queue.into_iter().collect();
            self.deliver(inner, effects);
        }
    }

    /// Publishes the control plane's current hints to the dispatch
    /// plane immediately (test hook; ignores the beacon blackout since
    /// the call is explicit).
    pub fn refresh_hints_now(&self) {
        let mut guard = self.lock_inner();
        self.refresh_hints(&mut guard);
    }

    fn refresh_hints(&self, inner: &mut Inner) {
        let b = inner.control.make_beacon(self.now());
        let mut out = Vec::new();
        {
            let Inner { dispatch, rng, .. } = inner;
            dispatch.on_beacon(&b);
            dispatch.flush_pending(rng, &mut out);
        }
        self.deliver(inner, out);
    }

    /// Live workers of a class.
    pub fn workers_of(&self, class: &str) -> usize {
        let class = WorkerClass::new(class);
        self.lock_inner()
            .workers
            .iter()
            .filter(|w| w.class == class && w.alive.load(Ordering::Relaxed))
            .count()
    }

    /// Injects a crash into one live worker of `class`. Returns whether
    /// a victim existed.
    pub fn crash_worker(&self, class: &str) -> bool {
        let class = WorkerClass::new(class);
        let inner = self.lock_inner();
        for w in &inner.workers {
            if w.class == class
                && w.alive.load(Ordering::Relaxed)
                && !w.kill.load(Ordering::Relaxed)
            {
                w.kill.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Kills virtual node `which` (mod the alive count): every worker
    /// placed on it crashes and the node leaves the placement view, so
    /// replacements cannot land there until [`RtCluster::revive_node`].
    /// Returns the number of workers killed, or `None` when no node is
    /// alive.
    pub fn kill_node(&self, which: usize) -> Option<u64> {
        let mut inner = self.lock_inner();
        let alive: Vec<usize> = inner
            .vnodes
            .iter()
            .enumerate()
            .filter(|(_, v)| v.alive)
            .map(|(i, _)| i)
            .collect();
        if alive.is_empty() {
            return None;
        }
        let idx = alive[which % alive.len()];
        inner.vnodes[idx].alive = false;
        let node = inner.vnodes[idx].node;
        let mut killed = 0;
        for w in &inner.workers {
            if w.node == node
                && w.alive.load(Ordering::Relaxed)
                && !w.kill.swap(true, Ordering::Relaxed)
            {
                killed += 1;
            }
        }
        Some(killed)
    }

    /// Revives a dead virtual node (mod the dead count); the class
    /// minimums repopulate it on the next manager tick. Returns whether
    /// a dead node existed.
    pub fn revive_node(&self, which: usize) -> bool {
        let mut inner = self.lock_inner();
        let dead: Vec<usize> = inner
            .vnodes
            .iter()
            .enumerate()
            .filter(|(_, v)| !v.alive)
            .map(|(i, _)| i)
            .collect();
        if dead.is_empty() {
            return false;
        }
        inner.vnodes[dead[which % dead.len()]].alive = true;
        true
    }

    /// Multiplies service times of workers on alive virtual node
    /// `which` (mod the alive count) by `factor` (straggler injection;
    /// 1.0 restores). Returns whether a node was targeted.
    pub fn set_node_slowdown(&self, which: usize, factor: f64) -> bool {
        let inner = self.lock_inner();
        let alive: Vec<&VNode> = inner.vnodes.iter().filter(|v| v.alive).collect();
        if alive.is_empty() {
            return false;
        }
        alive[which % alive.len()]
            .slow
            .store(factor.to_bits(), Ordering::Relaxed);
        true
    }

    /// Suppresses/permits hint publication (fault injection: front-end
    /// stubs keep scheduling on stale hints, §3.1.8).
    pub fn set_beacon_blackout(&self, on: bool) {
        self.beacon_blackout.store(on, Ordering::Relaxed);
    }

    /// Snapshot of the decision log (same canonical event stream as the
    /// simulator's monitor tap).
    pub fn monitor_log(&self) -> MonitorLog {
        lock(&self.log, &self.lock_poisoned).clone()
    }

    /// The cluster's span recorder (disabled unless
    /// [`RtConfig::tracing`] was set).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Snapshot of the recorded trace, or `None` when tracing is off.
    /// Timestamps are wall-clock nanoseconds since cluster start; use
    /// [`sns_core::trace::normalized`] for time-free comparisons.
    pub fn trace_snapshot(&self) -> Option<TraceLog> {
        self.tracer.snapshot()
    }

    /// A control/dispatch plane counter (e.g. `"manager.load_reports"`,
    /// `"stub.retries"`).
    pub fn counter(&self, key: &str) -> u64 {
        lock(&self.counters, &self.lock_poisoned)
            .get(key)
            .copied()
            .unwrap_or(0)
    }

    /// Stops the manager thread (fault injection). Workers keep
    /// serving; crashed workers stay dead until a new incarnation.
    pub fn kill_manager(&self) {
        self.manager_on.store(false, Ordering::Relaxed);
        let handle = lock(&self.manager, &self.lock_poisoned).take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }

    /// Starts a manager thread under a fresh incarnation: rebuilds the
    /// control plane's soft state from the live workers (§3.1.3 — "all
    /// state is rebuilt from registrations and load reports"),
    /// reconciles deaths that happened while no manager ran, and tops
    /// populations back up to their class minimums.
    pub fn start_manager(self: &Arc<Self>) {
        let mut slot = lock(&self.manager, &self.lock_poisoned);
        if slot.is_some() || !self.running.load(Ordering::Relaxed) {
            return;
        }
        self.manager_on.store(true, Ordering::Relaxed);
        let inc = self.incarnation.fetch_add(1, Ordering::Relaxed) + 1;
        {
            let mut guard = self.lock_inner();
            let inner = &mut *guard;
            let now = self.now();
            let mut control = ControlPlane::new(ControlConfig {
                sns: Self::plane_sns(&self.cfg),
                incarnation: inc,
                restart_front_ends: false,
            });
            for (class, policy) in &inner.policies {
                control.add_class(class.clone(), policy.clone());
            }
            inner.control = control;
            let view = Self::view_of(inner);
            let mut out = Vec::new();
            inner
                .control
                .on_start(now, MANAGER, NodeId(0), &view, &mut out);
            self.apply_control(inner, out, true, now);
            // Reconcile deaths from the manager-less window, then adopt
            // the survivors into the fresh incarnation's soft state.
            self.process_deaths(inner, now);
            let live: Vec<(u64, WorkerClass, NodeId)> = inner
                .workers
                .iter()
                .filter(|w| w.alive.load(Ordering::Relaxed))
                .map(|w| (w.id, w.class.clone(), w.node))
                .collect();
            for (id, class, node) in live {
                inner.control.on_register_worker(
                    ComponentId(id),
                    class,
                    node,
                    false,
                    now,
                    &mut Vec::new(),
                );
            }
            let classes: Vec<(WorkerClass, u32)> = inner
                .policies
                .iter()
                .map(|(c, p)| (c.clone(), p.min_workers))
                .collect();
            for (class, min) in classes {
                let view = Self::view_of(inner);
                let mut out = Vec::new();
                inner
                    .control
                    .ensure_workers(&class, min, now, &view, &mut out);
                self.apply_control(inner, out, true, now);
            }
            self.drain_morgue(inner);
            self.refresh_hints(inner);
        }
        let weak = Arc::downgrade(self);
        let handle = std::thread::Builder::new()
            .name("sns-rt-manager".into())
            .spawn(move || loop {
                let Some(cluster) = weak.upgrade() else {
                    return;
                };
                if !cluster.running.load(Ordering::Relaxed)
                    || !cluster.manager_on.load(Ordering::Relaxed)
                {
                    return;
                }
                cluster.control_step();
                let period = cluster.cfg.beacon_period;
                drop(cluster); // don't keep the cluster alive while asleep
                std::thread::sleep(period);
            })
            .expect("spawn manager thread");
        *slot = Some(handle);
    }

    /// Stops everything: the manager thread first, then the workers
    /// (closing their inboxes so queued work is *drained*, not
    /// dropped). Jobs stranded in dead workers' queues are failed.
    pub fn shutdown(&self) {
        self.running.store(false, Ordering::Relaxed);
        self.kill_manager();
        let mut inner = self.lock_inner();
        for w in &inner.workers {
            w.inbox.close();
        }
        let mut workers = std::mem::take(&mut inner.workers);
        drop(inner); // don't hold the cluster lock while draining
        for w in &mut workers {
            if let Some(j) = w.join.take() {
                let _ = j.join();
            }
        }
        let mut inner = self.lock_inner();
        let morgue = std::mem::take(&mut inner.morgue);
        for (_class, salvage) in morgue {
            while let Ok(orphan) = salvage.try_recv() {
                let _ = orphan
                    .reply
                    .try_send(JobResult::Failed("cluster is shut down".into()));
            }
        }
        for w in &workers {
            while let Ok(orphan) = w.salvage.try_recv() {
                let _ = orphan
                    .reply
                    .try_send(JobResult::Failed("cluster is shut down".into()));
            }
        }
        inner.replies.clear();
        inner.deadlines.clear();
    }
}

/// Settles a completed job in the dispatch plane (called from worker
/// threads; the weak ref breaks the `Arc` cycle with the cluster).
/// Span effects the plane emits (the closed dispatch span) go straight
/// to `tracer`.
fn finish(
    weak: &Weak<Mutex<Inner>>,
    poisoned: &AtomicU64,
    tracer: &Tracer,
    now: SimTime,
    job_id: u64,
) {
    if let Some(m) = weak.upgrade() {
        let mut inner = lock(&m, poisoned);
        let mut out = Vec::new();
        inner.dispatch.on_response(job_id, now, &mut out);
        inner.replies.remove(&job_id);
        inner.deadlines.remove(&job_id);
        drop(inner);
        for effect in out {
            if let DispatchEffect::Span(s) = effect {
                tracer.record(s);
            }
        }
    }
}

impl Drop for RtCluster {
    fn drop(&mut self) {
        self.running.store(false, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_core::msg::Job;
    use sns_core::Blob;

    struct Echo {
        /// Crash on inputs tagged "poison".
        _private: (),
    }

    impl WorkerLogic for Echo {
        fn class(&self) -> WorkerClass {
            "echo".into()
        }
        fn service_time(&mut self, _j: &Job, _n: SimTime, _r: &mut Pcg32) -> Duration {
            Duration::from_millis(5)
        }
        fn process(
            &mut self,
            job: &Job,
            _n: SimTime,
            _r: &mut Pcg32,
        ) -> Result<Payload, WorkerError> {
            let blob = sns_core::payload_as::<Blob>(&job.input).expect("blob");
            if blob.tag == "poison" {
                return Err(WorkerError::Crash);
            }
            Ok(Blob::payload(blob.len / 2, "echoed"))
        }
    }

    fn cluster() -> Arc<RtCluster> {
        let c = RtCluster::start(RtConfig {
            time_scale: 0.05,
            report_period: Duration::from_millis(10),
            beacon_period: Duration::from_millis(20),
            ..Default::default()
        });
        c.add_workers("echo", 3, || Box::new(Echo { _private: () }));
        c
    }

    #[test]
    fn real_threads_process_real_jobs() {
        let c = cluster();
        let mut receivers = Vec::new();
        for i in 0..50 {
            receivers.push(c.submit("echo", "echo", Blob::payload(1000 + i, "x"), None));
        }
        for rx in receivers {
            match rx.recv_timeout(Duration::from_secs(10)).expect("reply") {
                JobResult::Ok(p) => assert!(p.wire_size() >= 500),
                JobResult::Failed(e) => panic!("job failed: {e}"),
            }
        }
        assert_eq!(c.jobs_done.load(Ordering::Relaxed), 50);
        c.shutdown();
    }

    #[test]
    fn crash_is_detected_and_worker_restarted() {
        let c = cluster();
        assert_eq!(c.workers_of("echo"), 3);
        // Poison until we actually kill someone (lottery may spread).
        let rx = c.submit("echo", "echo", Blob::payload(10, "poison"), None);
        // No reply ever comes from a crashed worker.
        assert!(rx.recv_timeout(Duration::from_millis(300)).is_err());
        // The manager notices and restores the population.
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if c.workers_of("echo") == 3 && c.restarts.load(Ordering::Relaxed) >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(c.workers_of("echo"), 3, "process peer restart");
        assert!(c.crashes.load(Ordering::Relaxed) >= 1);
        // And the survivors still serve.
        let rx = c.submit("echo", "echo", Blob::payload(100, "x"), None);
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(5)),
            Ok(JobResult::Ok(_))
        ));
        c.shutdown();
    }

    #[test]
    fn injected_crash_restores_population() {
        let c = cluster();
        assert!(c.crash_worker("echo"), "a live echo worker exists");
        assert!(!c.crash_worker("ghost"), "unknown class has no target");
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if c.workers_of("echo") == 3 && c.crashes.load(Ordering::Relaxed) >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(c.workers_of("echo"), 3);
        assert!(c.crashes.load(Ordering::Relaxed) >= 1);
        assert!(c.restarts.load(Ordering::Relaxed) >= 1);
        c.shutdown();
    }

    #[test]
    fn manager_failover_pauses_then_resumes_restarts() {
        let c = cluster();
        c.kill_manager();
        assert!(c.crash_worker("echo"));
        // With no manager, the dead worker stays dead.
        std::thread::sleep(Duration::from_millis(300));
        assert_eq!(c.workers_of("echo"), 2);
        // A new incarnation recovers the population.
        c.start_manager();
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if c.workers_of("echo") == 3 {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(c.workers_of("echo"), 3, "failover restart");
        c.shutdown();
    }

    #[test]
    fn submit_falls_back_when_hinted_worker_died() {
        let c = cluster();
        // Freeze hints, then kill a worker: hints now reference a dead id.
        c.set_beacon_blackout(true);
        c.refresh_hints_now();
        assert!(c.crash_worker("echo"));
        std::thread::sleep(Duration::from_millis(150)); // let it die
                                                        // Every submit must still land on a live worker.
        let receivers: Vec<_> = (0..20)
            .map(|_| c.submit("echo", "echo", Blob::payload(64, "x"), None))
            .collect();
        for rx in receivers {
            assert!(matches!(
                rx.recv_timeout(Duration::from_secs(5)),
                Ok(JobResult::Ok(_))
            ));
        }
        assert_eq!(c.submitted.load(Ordering::Relaxed), 20);
        c.set_beacon_blackout(false);
        c.shutdown();
    }

    #[test]
    fn unknown_class_fails_softly() {
        let c = cluster();
        let rx = c.submit("ghost", "op", Blob::payload(1, "x"), None);
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(1)),
            Ok(JobResult::Failed(_))
        ));
        c.shutdown();
    }

    #[test]
    fn load_spreads_across_threads() {
        let c = cluster();
        let receivers: Vec<_> = (0..60)
            .map(|_| c.submit("echo", "echo", Blob::payload(512, "x"), None))
            .collect();
        for rx in receivers {
            assert!(rx.recv_timeout(Duration::from_secs(10)).is_ok());
        }
        c.shutdown();
    }

    #[test]
    fn node_kill_and_revive_round_trip() {
        let c = RtCluster::start(RtConfig {
            time_scale: 0.05,
            report_period: Duration::from_millis(10),
            beacon_period: Duration::from_millis(20),
            nodes: 2,
            ..Default::default()
        });
        c.add_workers("echo", 4, || Box::new(Echo { _private: () }));
        assert_eq!(c.workers_of("echo"), 4);
        let killed = c.kill_node(0).expect("a node is alive");
        assert!(killed >= 1, "node held at least one worker");
        // The survivor node absorbs the class minimum.
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if c.workers_of("echo") == 4 {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(c.workers_of("echo"), 4, "respawned on the surviving node");
        assert!(c.revive_node(0));
        assert!(!c.revive_node(0), "no dead node remains");
        assert!(c.set_node_slowdown(0, 2.0));
        assert!(c.set_node_slowdown(0, 1.0));
        let rx = c.submit("echo", "echo", Blob::payload(64, "x"), None);
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(5)),
            Ok(JobResult::Ok(_))
        ));
        c.shutdown();
    }

    #[test]
    fn monitor_log_records_decision_stream() {
        let c = cluster();
        assert!(c.crash_worker("echo"));
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if c.restarts.load(Ordering::Relaxed) >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        c.shutdown();
        let log = c.monitor_log();
        assert!(log.count("started") >= 1, "manager start logged");
        assert_eq!(log.count("spawned"), 4, "3 bootstrap + 1 restart");
        assert_eq!(log.count("crashed"), 1);
        assert_eq!(log.count("peer_restarted"), 1);
        assert!(c.counter("manager.load_reports") >= 1);
        assert_eq!(c.lock_poisoned.load(Ordering::Relaxed), 0);
    }
}
