//! # sns-rt — the real multi-threaded runtime
//!
//! The simulator in `sns-sim` runs the architecture over virtual time;
//! this crate runs the *same worker code* (`sns_core::WorkerLogic`
//! implementations — TACC distillers, cache partitions, anything) as
//! actual OS threads connected by channels, demonstrating that the
//! component abstractions are not simulation artifacts. It is the
//! paper's "simple matter of software" claim made literal: the SNS
//! mechanics — registration beacons, queue-length load reports, lottery
//! scheduling on slightly stale hints, crash detection and process-peer
//! restart — reappear here over plain `std::sync` primitives instead of
//! the simulated SAN. Worker inboxes use the in-repo [`chan`] MPMC shim
//! (clonable receivers let the manager salvage a crashed worker's queue
//! for redispatch); one-shot replies use `std::sync::mpsc`.
//!
//! Scope: this is the laptop-scale runtime for examples and tests, not a
//! distributed deployment; "nodes" are threads and the SAN is a channel
//! fabric. Service times from the worker logic are honoured by sleeping
//! (scaled by [`RtConfig::time_scale`], so tests stay fast).
//!
//! ```
//! use sns_rt::{RtCluster, RtConfig};
//! use sns_core::{Blob, Payload, WorkerClass};
//! use sns_core::msg::Job;
//! use sns_core::worker::{WorkerError, WorkerLogic};
//! use sns_sim::rng::Pcg32;
//! use sns_sim::time::SimTime;
//! use std::time::Duration;
//!
//! struct Echo;
//! impl WorkerLogic for Echo {
//!     fn class(&self) -> WorkerClass { "echo".into() }
//!     fn service_time(&mut self, _: &Job, _: SimTime, _: &mut Pcg32) -> Duration {
//!         Duration::from_millis(5)
//!     }
//!     fn process(&mut self, job: &Job, _: SimTime, _: &mut Pcg32)
//!         -> Result<Payload, WorkerError>
//!     {
//!         Ok(Blob::payload(job.input.wire_size() / 2, "echoed"))
//!     }
//! }
//!
//! let cluster = RtCluster::start(RtConfig::default());
//! cluster.add_workers("echo", 2, || Box::new(Echo));
//! let reply = cluster
//!     .submit("echo", "echo", Blob::payload(1000, "hi"), None)
//!     .recv_timeout(Duration::from_secs(5))
//!     .expect("worker answers");
//! assert!(matches!(reply, sns_core::msg::JobResult::Ok(_)));
//! cluster.shutdown();
//! ```

#![warn(missing_docs)]

pub mod chan;

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sns_core::msg::{Job, JobResult, ProfileData};
use sns_core::worker::{WorkerError, WorkerLogic};
use sns_core::{Payload, WorkerClass};
use sns_sim::rng::Pcg32;
use sns_sim::time::SimTime;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct RtConfig {
    /// Multiplier applied to worker service times (0.01 = run the
    /// cluster 100x faster than the modelled hardware).
    pub time_scale: f64,
    /// Worker load-report period.
    pub report_period: Duration,
    /// Manager hint-publication (beacon) period.
    pub beacon_period: Duration,
    /// RNG seed for worker streams and lottery draws.
    pub seed: u64,
    /// Restart crashed workers (process peers).
    pub restart_on_crash: bool,
}

impl Default for RtConfig {
    fn default() -> Self {
        RtConfig {
            time_scale: 0.1,
            report_period: Duration::from_millis(50),
            beacon_period: Duration::from_millis(100),
            seed: 0x517e,
            restart_on_crash: true,
        }
    }
}

/// Builds fresh worker logic for (re)starts.
pub type RtWorkerFactory = Box<dyn Fn() -> Box<dyn WorkerLogic> + Send + Sync>;

struct RtJob {
    job: Job,
    reply: mpsc::SyncSender<JobResult>,
}

/// One live worker thread's handle.
struct WorkerHandle {
    id: u64,
    class: WorkerClass,
    inbox: chan::Sender<RtJob>,
    /// Second receiver on the inbox (MPMC): lets the manager drain jobs
    /// a crashed worker left queued and redispatch them.
    salvage: chan::Receiver<RtJob>,
    /// Shared queue-length gauge (inbox depth + in-service).
    qlen: Arc<AtomicU64>,
    alive: Arc<AtomicBool>,
    /// Fault-injection flag: when set, the worker dies at the next loop
    /// turn (between jobs, like a crash on pathological input).
    kill: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

/// A point-in-time load hint, as published by the manager thread.
#[derive(Clone)]
struct Hint {
    worker: u64,
    qlen: u64,
}

#[derive(Default)]
struct Registry {
    workers: Vec<WorkerHandle>,
    factories: Vec<(WorkerClass, Arc<RtWorkerFactory>)>,
    /// class → hints, refreshed by the manager thread ("beacons").
    hints: std::collections::BTreeMap<String, Vec<Hint>>,
}

/// The threaded cluster.
pub struct RtCluster {
    cfg: RtConfig,
    inner: Arc<Mutex<Registry>>,
    running: Arc<AtomicBool>,
    manager_on: Arc<AtomicBool>,
    /// While set, the manager skips hint refresh (beacons "lost"); hints
    /// go stale but process-peer restarts continue.
    beacon_blackout: Arc<AtomicBool>,
    next_id: AtomicU64,
    rng: Mutex<Pcg32>,
    manager: Mutex<Option<JoinHandle<()>>>,
    started: Instant,
    /// Jobs accepted into some worker's inbox.
    pub submitted: Arc<AtomicU64>,
    /// Jobs completed across all workers.
    pub jobs_done: Arc<AtomicU64>,
    /// Worker crashes observed.
    pub crashes: Arc<AtomicU64>,
    /// Process-peer restarts performed.
    pub restarts: Arc<AtomicU64>,
    /// Jobs salvaged from crashed workers' queues and redispatched.
    pub redispatched: Arc<AtomicU64>,
}

impl RtCluster {
    /// Starts the runtime (manager thread included).
    pub fn start(cfg: RtConfig) -> Arc<Self> {
        let cluster = Arc::new(RtCluster {
            cfg: cfg.clone(),
            inner: Arc::new(Mutex::new(Registry::default())),
            running: Arc::new(AtomicBool::new(true)),
            manager_on: Arc::new(AtomicBool::new(true)),
            beacon_blackout: Arc::new(AtomicBool::new(false)),
            next_id: AtomicU64::new(1),
            rng: Mutex::new(Pcg32::new(cfg.seed)),
            manager: Mutex::new(None),
            started: Instant::now(),
            submitted: Arc::new(AtomicU64::new(0)),
            jobs_done: Arc::new(AtomicU64::new(0)),
            crashes: Arc::new(AtomicU64::new(0)),
            restarts: Arc::new(AtomicU64::new(0)),
            redispatched: Arc::new(AtomicU64::new(0)),
        });
        cluster.start_manager();
        cluster
    }

    /// Starts the manager thread if none is running (initial start and
    /// failover recovery after [`RtCluster::kill_manager`]).
    pub fn start_manager(self: &Arc<Self>) {
        let mut slot = lock(&self.manager);
        if slot.is_some() || !self.running.load(Ordering::Relaxed) {
            return;
        }
        self.manager_on.store(true, Ordering::Relaxed);
        // The manager thread: refresh hints from the workers' shared
        // queue gauges and restart dead workers (process peers).
        let cluster = Arc::clone(self);
        let mgr = std::thread::Builder::new()
            .name("sns-rt-manager".into())
            .spawn(move || cluster.manager_loop())
            .expect("spawn manager thread");
        *slot = Some(mgr);
    }

    /// Kills the manager thread (fault injection): hints freeze and dead
    /// workers stay dead until [`RtCluster::start_manager`] brings a new
    /// incarnation up. Worker threads keep serving their queues.
    pub fn kill_manager(&self) {
        self.manager_on.store(false, Ordering::Relaxed);
        if let Some(m) = lock(&self.manager).take() {
            let _ = m.join();
        }
    }

    /// Forces (or lifts) a beacon blackout: while on, the manager keeps
    /// restarting dead workers but stops refreshing hints, so front-end
    /// submits run on increasingly stale data (§3.1.8, §4.6).
    pub fn set_beacon_blackout(&self, on: bool) {
        self.beacon_blackout.store(on, Ordering::Relaxed);
    }

    /// Injects a crash into one live worker of `class` (picked in
    /// registration order): the thread dies between jobs, exactly like a
    /// crash on pathological input. Returns whether a target was found.
    pub fn crash_worker(&self, class: &str) -> bool {
        let reg = lock(&self.inner);
        for w in &reg.workers {
            if w.class.name() == class
                && w.alive.load(Ordering::Relaxed)
                && !w.kill.swap(true, Ordering::Relaxed)
            {
                return true;
            }
        }
        false
    }

    fn manager_loop(&self) {
        while self.running.load(Ordering::Relaxed) && self.manager_on.load(Ordering::Relaxed) {
            std::thread::sleep(self.cfg.beacon_period);
            let mut reg = lock(&self.inner);
            // Collect load "reports" (the gauges are the report channel;
            // the staleness comes from the beacon period, as in §3.1.8).
            if !self.beacon_blackout.load(Ordering::Relaxed) {
                let mut hints = std::collections::BTreeMap::new();
                for w in &reg.workers {
                    if !w.alive.load(Ordering::Relaxed) {
                        continue;
                    }
                    hints
                        .entry(w.class.name().to_string())
                        .or_insert_with(Vec::new)
                        .push(Hint {
                            worker: w.id,
                            qlen: w.qlen.load(Ordering::Relaxed),
                        });
                }
                reg.hints = hints;
            }
            // Process-peer restarts: replace dead workers.
            if self.cfg.restart_on_crash {
                let dead: Vec<(usize, WorkerClass)> = reg
                    .workers
                    .iter()
                    .enumerate()
                    .filter(|(_, w)| !w.alive.load(Ordering::Relaxed))
                    .map(|(i, w)| (i, w.class.clone()))
                    .collect();
                for (idx, class) in dead.into_iter().rev() {
                    let factory = reg
                        .factories
                        .iter()
                        .find(|(c, _)| c == &class)
                        .map(|(_, f)| Arc::clone(f));
                    let mut old = reg.workers.remove(idx);
                    if let Some(j) = old.join.take() {
                        let _ = j.join();
                    }
                    if let Some(factory) = factory {
                        let handle = self.spawn_worker_thread(factory());
                        // Salvage the dead worker's queue: whatever it
                        // never got to starts over on the replacement.
                        let mut moved = 0u64;
                        while let Ok(orphan) = old.salvage.try_recv() {
                            if handle.inbox.send(orphan).is_ok() {
                                moved += 1;
                            }
                        }
                        if moved > 0 {
                            handle.qlen.store(moved, Ordering::Relaxed);
                            self.redispatched.fetch_add(moved, Ordering::Relaxed);
                        }
                        reg.workers.push(handle);
                        self.restarts.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
    }

    fn spawn_worker_thread(&self, mut logic: Box<dyn WorkerLogic>) -> WorkerHandle {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let class = logic.class();
        let (tx, rx) = chan::unbounded::<RtJob>();
        let qlen = Arc::new(AtomicU64::new(0));
        let alive = Arc::new(AtomicBool::new(true));
        let kill = Arc::new(AtomicBool::new(false));
        let running = Arc::clone(&self.running);
        let time_scale = self.cfg.time_scale;
        let seed = self.cfg.seed ^ id;
        let started = self.started;
        let jobs_done = Arc::clone(&self.jobs_done);
        let crashes = Arc::clone(&self.crashes);
        let qlen_t = Arc::clone(&qlen);
        let alive_t = Arc::clone(&alive);
        let kill_t = Arc::clone(&kill);
        let salvage = rx.clone();
        let join = std::thread::Builder::new()
            .name(format!("sns-rt-{}-{id}", class.name().replace('/', "-")))
            .spawn(move || {
                let mut rng = Pcg32::new(seed);
                loop {
                    // Injected crash: die *before* taking a job off the
                    // queue, so anything still queued is salvageable and
                    // no accepted job loses its reply.
                    if kill_t.load(Ordering::Relaxed) {
                        crashes.fetch_add(1, Ordering::Relaxed);
                        alive_t.store(false, Ordering::Relaxed);
                        return;
                    }
                    let rt_job = match rx.recv_timeout(Duration::from_millis(50)) {
                        Ok(j) => j,
                        Err(chan::RecvTimeoutError::Timeout) => {
                            if running.load(Ordering::Relaxed) {
                                continue;
                            }
                            break; // idle and shutting down
                        }
                        // Closed and drained: every queued job was served
                        // before exit (shutdown drains queues).
                        Err(chan::RecvTimeoutError::Disconnected) => break,
                    };
                    qlen_t.store(rx.len() as u64 + 1, Ordering::Relaxed);
                    let now = SimTime::from_nanos(started.elapsed().as_nanos() as u64);
                    let service = logic.service_time(&rt_job.job, now, &mut rng);
                    std::thread::sleep(service.mul_f64(time_scale.max(0.0)));
                    match logic.process(&rt_job.job, now, &mut rng) {
                        Ok(payload) => {
                            jobs_done.fetch_add(1, Ordering::Relaxed);
                            let _ = rt_job.reply.send(JobResult::Ok(payload));
                        }
                        Err(WorkerError::Failed(reason)) => {
                            let _ = rt_job.reply.send(JobResult::Failed(reason));
                        }
                        Err(WorkerError::Crash) => {
                            // The worker process dies: no reply; the
                            // manager notices and restarts (§3.1.3).
                            crashes.fetch_add(1, Ordering::Relaxed);
                            alive_t.store(false, Ordering::Relaxed);
                            return;
                        }
                    }
                    qlen_t.store(rx.len() as u64, Ordering::Relaxed);
                }
            })
            .expect("spawn worker thread");
        WorkerHandle {
            id,
            class,
            inbox: tx,
            salvage,
            qlen,
            alive,
            kill,
            join: Some(join),
        }
    }

    /// Registers a class factory and starts `n` workers of it.
    pub fn add_workers(
        &self,
        class: &str,
        n: usize,
        factory: impl Fn() -> Box<dyn WorkerLogic> + Send + Sync + 'static,
    ) {
        let factory: Arc<RtWorkerFactory> = Arc::new(Box::new(factory));
        let mut reg = lock(&self.inner);
        reg.factories
            .push((WorkerClass::new(class), Arc::clone(&factory)));
        for _ in 0..n {
            let handle = self.spawn_worker_thread(factory());
            reg.workers.push(handle);
        }
        drop(reg);
        self.refresh_hints_now();
    }

    /// Forces an immediate hint refresh (otherwise hints update every
    /// beacon period, deliberately stale).
    pub fn refresh_hints_now(&self) {
        let mut reg = lock(&self.inner);
        let mut hints = std::collections::BTreeMap::new();
        for w in &reg.workers {
            if w.alive.load(Ordering::Relaxed) {
                hints
                    .entry(w.class.name().to_string())
                    .or_insert_with(Vec::new)
                    .push(Hint {
                        worker: w.id,
                        qlen: w.qlen.load(Ordering::Relaxed),
                    });
            }
        }
        reg.hints = hints;
    }

    /// Live workers of a class.
    pub fn workers_of(&self, class: &str) -> usize {
        lock(&self.inner)
            .workers
            .iter()
            .filter(|w| w.class.name() == class && w.alive.load(Ordering::Relaxed))
            .count()
    }

    /// Submits a job to the least-loaded worker of `class` (lottery over
    /// the possibly-stale hints, §3.1.2) and returns the reply channel.
    pub fn submit(
        &self,
        class: &str,
        op: &str,
        input: Payload,
        profile: Option<ProfileData>,
    ) -> mpsc::Receiver<JobResult> {
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        if !self.running.load(Ordering::Relaxed) {
            let _ = reply_tx.send(JobResult::Failed("cluster is shut down".into()));
            return reply_rx;
        }
        let reg = lock(&self.inner);
        let Some(hints) = reg.hints.get(class).filter(|h| !h.is_empty()) else {
            drop(reg);
            let _ = reply_tx.send(JobResult::Failed(format!("no workers of class {class}")));
            return reply_rx;
        };
        let tickets: Vec<f64> = hints.iter().map(|h| 1.0 / (1.0 + h.qlen as f64)).collect();
        let pick = {
            let mut rng = lock(&self.rng);
            hints[rng.weighted(&tickets)].worker
        };
        let job = Job {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            class: WorkerClass::new(class),
            op: op.to_string(),
            input,
            profile,
            reply_to: sns_sim::ComponentId::EXTERNAL,
        };
        // The pick came from stale hints; if that worker has since died
        // or vanished, recover with any live worker of the class rather
        // than failing the request (§3.1.8 stale-choice recovery).
        let target = reg
            .workers
            .iter()
            .find(|w| w.id == pick && w.alive.load(Ordering::Relaxed))
            .or_else(|| {
                reg.workers
                    .iter()
                    .find(|w| w.class.name() == class && w.alive.load(Ordering::Relaxed))
            });
        if let Some(w) = target {
            w.qlen.fetch_add(1, Ordering::Relaxed); // local delta (§4.5)
            match w.inbox.send(RtJob {
                job,
                reply: reply_tx,
            }) {
                Ok(()) => {
                    self.submitted.fetch_add(1, Ordering::Relaxed);
                }
                Err(chan::SendError(rejected)) => {
                    let _ = rejected
                        .reply
                        .send(JobResult::Failed("worker inbox closed".into()));
                }
            }
        } else {
            let _ = reply_tx.send(JobResult::Failed("worker vanished".into()));
        }
        reply_rx
    }

    /// Stops every thread and waits for them. Worker inboxes are closed
    /// (not discarded): each worker drains its remaining queue — every
    /// accepted job gets a reply — before exiting.
    pub fn shutdown(&self) {
        self.running.store(false, Ordering::Relaxed);
        if let Some(m) = lock(&self.manager).take() {
            let _ = m.join();
        }
        let mut reg = lock(&self.inner);
        for w in &reg.workers {
            w.inbox.close();
        }
        let mut workers = std::mem::take(&mut reg.workers);
        drop(reg); // don't hold the registry lock while draining
        for w in &mut workers {
            if let Some(j) = w.join.take() {
                let _ = j.join();
            }
        }
    }
}

impl Drop for RtCluster {
    fn drop(&mut self) {
        self.running.store(false, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_core::Blob;

    struct Echo {
        /// Crash on inputs tagged "poison".
        _private: (),
    }

    impl WorkerLogic for Echo {
        fn class(&self) -> WorkerClass {
            "echo".into()
        }
        fn service_time(&mut self, _j: &Job, _n: SimTime, _r: &mut Pcg32) -> Duration {
            Duration::from_millis(5)
        }
        fn process(
            &mut self,
            job: &Job,
            _n: SimTime,
            _r: &mut Pcg32,
        ) -> Result<Payload, WorkerError> {
            let blob = sns_core::payload_as::<Blob>(&job.input).expect("blob");
            if blob.tag == "poison" {
                return Err(WorkerError::Crash);
            }
            Ok(Blob::payload(blob.len / 2, "echoed"))
        }
    }

    fn cluster() -> Arc<RtCluster> {
        let c = RtCluster::start(RtConfig {
            time_scale: 0.05,
            report_period: Duration::from_millis(10),
            beacon_period: Duration::from_millis(20),
            ..Default::default()
        });
        c.add_workers("echo", 3, || Box::new(Echo { _private: () }));
        c
    }

    #[test]
    fn real_threads_process_real_jobs() {
        let c = cluster();
        let mut receivers = Vec::new();
        for i in 0..50 {
            receivers.push(c.submit("echo", "echo", Blob::payload(1000 + i, "x"), None));
        }
        for rx in receivers {
            match rx.recv_timeout(Duration::from_secs(10)).expect("reply") {
                JobResult::Ok(p) => assert!(p.wire_size() >= 500),
                JobResult::Failed(e) => panic!("job failed: {e}"),
            }
        }
        assert_eq!(c.jobs_done.load(Ordering::Relaxed), 50);
        c.shutdown();
    }

    #[test]
    fn crash_is_detected_and_worker_restarted() {
        let c = cluster();
        assert_eq!(c.workers_of("echo"), 3);
        // Poison until we actually kill someone (lottery may spread).
        let rx = c.submit("echo", "echo", Blob::payload(10, "poison"), None);
        // No reply ever comes from a crashed worker.
        assert!(rx.recv_timeout(Duration::from_millis(300)).is_err());
        // The manager notices and restores the population.
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if c.workers_of("echo") == 3 && c.restarts.load(Ordering::Relaxed) >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(c.workers_of("echo"), 3, "process peer restart");
        assert!(c.crashes.load(Ordering::Relaxed) >= 1);
        // And the survivors still serve.
        let rx = c.submit("echo", "echo", Blob::payload(100, "x"), None);
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(5)),
            Ok(JobResult::Ok(_))
        ));
        c.shutdown();
    }

    #[test]
    fn injected_crash_restores_population() {
        let c = cluster();
        assert!(c.crash_worker("echo"), "a live echo worker exists");
        assert!(!c.crash_worker("ghost"), "unknown class has no target");
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if c.workers_of("echo") == 3 && c.crashes.load(Ordering::Relaxed) >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(c.workers_of("echo"), 3);
        assert!(c.crashes.load(Ordering::Relaxed) >= 1);
        assert!(c.restarts.load(Ordering::Relaxed) >= 1);
        c.shutdown();
    }

    #[test]
    fn manager_failover_pauses_then_resumes_restarts() {
        let c = cluster();
        c.kill_manager();
        assert!(c.crash_worker("echo"));
        // With no manager, the dead worker stays dead.
        std::thread::sleep(Duration::from_millis(300));
        assert_eq!(c.workers_of("echo"), 2);
        // A new incarnation recovers the population.
        c.start_manager();
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if c.workers_of("echo") == 3 {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(c.workers_of("echo"), 3, "failover restart");
        c.shutdown();
    }

    #[test]
    fn submit_falls_back_when_hinted_worker_died() {
        let c = cluster();
        // Freeze hints, then kill a worker: hints now reference a dead id.
        c.set_beacon_blackout(true);
        c.refresh_hints_now();
        assert!(c.crash_worker("echo"));
        std::thread::sleep(Duration::from_millis(150)); // let it die
                                                        // Every submit must still land on a live worker.
        let receivers: Vec<_> = (0..20)
            .map(|_| c.submit("echo", "echo", Blob::payload(64, "x"), None))
            .collect();
        for rx in receivers {
            assert!(matches!(
                rx.recv_timeout(Duration::from_secs(5)),
                Ok(JobResult::Ok(_))
            ));
        }
        assert_eq!(c.submitted.load(Ordering::Relaxed), 20);
        c.set_beacon_blackout(false);
        c.shutdown();
    }

    #[test]
    fn unknown_class_fails_softly() {
        let c = cluster();
        let rx = c.submit("ghost", "op", Blob::payload(1, "x"), None);
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(1)),
            Ok(JobResult::Failed(_))
        ));
        c.shutdown();
    }

    #[test]
    fn load_spreads_across_threads() {
        let c = cluster();
        let receivers: Vec<_> = (0..60)
            .map(|_| c.submit("echo", "echo", Blob::payload(512, "x"), None))
            .collect();
        for rx in receivers {
            assert!(rx.recv_timeout(Duration::from_secs(10)).is_ok());
        }
        c.shutdown();
    }
}
