//! # sns-rt — the real multi-threaded runtime
//!
//! The simulator in `sns-sim` runs the architecture over virtual time;
//! this crate runs the *same worker code* (`sns_core::WorkerLogic`
//! implementations — TACC distillers, cache partitions, anything) as
//! actual OS threads connected by channels, demonstrating that the
//! component abstractions are not simulation artifacts. It is the
//! paper's "simple matter of software" claim made literal: the SNS
//! mechanics — registration beacons, queue-length load reports, lottery
//! scheduling on slightly stale hints, crash detection and process-peer
//! restart — reappear here over plain `std::sync` primitives instead of
//! the simulated SAN. Worker inboxes use the in-repo [`chan`] MPMC shim
//! (clonable receivers let the manager salvage a crashed worker's queue
//! for redispatch, and let idle workers steal queued jobs); one-shot
//! replies use `std::sync::mpsc`.
//!
//! Every scheduling and respawn *decision* is made by the sans-IO
//! control plane shared with the simulator
//! ([`sns_core::ControlPlane`] for the manager half,
//! [`sns_core::DispatchPlane`] for the submit path): this crate only
//! feeds those machines wall-clock timestamps, load reports and death
//! notices, and maps the returned effect lists onto threads and
//! channels. The simulator and this runtime therefore cannot drift —
//! they *are* the same policy code, which the
//! `control_plane_parity` differential test pins down.
//!
//! ## Lock topology
//!
//! The submit path never takes a global lock. Dispatch state lives in a
//! [`sns_core::ShardedDispatch`] — N independent
//! [`DispatchPlane`](sns_core::control::DispatchPlane)
//! shards, each behind its own mutex, with job-id spaces strided so a
//! response routes back to its shard arithmetically. Control state
//! (policy, membership, spawn decisions) stays behind a single mutex
//! that only the manager thread and fault injectors touch; worker
//! lookup is a read-mostly `RwLock` routing table. The lock order is
//! `control → shard → routes` and no path ever acquires two shard
//! locks at once (see DESIGN.md §6g).
//!
//! Scope: this is the laptop-scale runtime for examples and tests, not a
//! distributed deployment; "nodes" are threads and the SAN is a channel
//! fabric. Service times from the worker logic are honoured by sleeping
//! (scaled by [`RtConfig::time_scale`], so tests stay fast).
//!
//! ```
//! use sns_rt::{RtCluster, RtConfig};
//! use sns_core::{Blob, Payload, WorkerClass};
//! use sns_core::msg::Job;
//! use sns_core::worker::{WorkerError, WorkerLogic};
//! use sns_sim::rng::Pcg32;
//! use sns_sim::time::SimTime;
//! use std::time::Duration;
//!
//! struct Echo;
//! impl WorkerLogic for Echo {
//!     fn class(&self) -> WorkerClass { "echo".into() }
//!     fn service_time(&mut self, _: &Job, _: SimTime, _: &mut Pcg32) -> Duration {
//!         Duration::from_millis(5)
//!     }
//!     fn process(&mut self, job: &Job, _: SimTime, _: &mut Pcg32)
//!         -> Result<Payload, WorkerError>
//!     {
//!         Ok(Blob::payload(job.input.wire_size() / 2, "echoed"))
//!     }
//! }
//!
//! let cluster = RtCluster::start(RtConfig::new());
//! cluster.add_workers("echo", 2, || Box::new(Echo));
//! let reply = cluster
//!     .submit("echo", "echo", Blob::payload(1000, "hi"), None)
//!     .recv_timeout(Duration::from_secs(5))
//!     .expect("worker answers");
//! assert!(matches!(reply, sns_core::msg::JobResult::Ok(_)));
//! cluster.shutdown();
//! ```

#![warn(missing_docs)]

pub mod chan;
pub mod exec;

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{
    Arc, Mutex, MutexGuard, OnceLock, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard, Weak,
};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use sns_core::cluster::{Cluster, SettleStats};
use sns_core::control::{
    ClusterView, ControlConfig, ControlEffect, ControlPlane, DispatchEffect, NodeLoad, SpawnPolicy,
    TimeoutVerdict,
};
use sns_core::invariant::MonitorLog;
use sns_core::monitor::MonitorEvent;
use sns_core::msg::{BeaconData, JobResult, ProfileData};
use sns_core::shard::{DispatchShard, ShardedDispatch};
use sns_core::trace::{self, Sampling, SpanCtx, TraceLog, Tracer};
use sns_core::worker::{WorkerError, WorkerLogic};
use sns_core::{intern_class, Payload, SnsConfig, WorkerClass};
use sns_sim::rng::Pcg32;
use sns_sim::time::SimTime;
use sns_sim::{ComponentId, MetricKey, NodeId};

/// Poison-aware lock: a thread that panicked while holding a lock left
/// consistent-enough state (all invariants here are monotonic counters
/// and maps that tolerate partial updates), so recover the guard instead
/// of unwrapping — but *count* the event so operators and tests can see
/// it happened.
fn lock<'a, T>(m: &'a Mutex<T>, poisoned: &AtomicU64) -> MutexGuard<'a, T> {
    match m.lock() {
        Ok(g) => g,
        Err(e) => {
            poisoned.fetch_add(1, Ordering::Relaxed);
            e.into_inner()
        }
    }
}

fn read_routes(r: &RwLock<Routes>) -> RwLockReadGuard<'_, Routes> {
    r.read().unwrap_or_else(PoisonError::into_inner)
}

/// Runtime configuration. Build with [`RtConfig::new`] and the fluent
/// `with_*` methods; direct struct construction still works but the
/// builder is the supported surface going forward.
#[derive(Debug, Clone)]
pub struct RtConfig {
    /// Multiplier applied to worker service times (0.01 = run the
    /// cluster 100x faster than the modelled hardware).
    pub time_scale: f64,
    /// Worker load-report period.
    pub report_period: Duration,
    /// Manager hint-publication (beacon) period.
    pub beacon_period: Duration,
    /// RNG seed for worker streams and lottery draws.
    pub seed: u64,
    /// Restart crashed workers (process peers).
    pub restart_on_crash: bool,
    /// Virtual nodes (placement domains for fault injection; threads do
    /// not actually move).
    pub nodes: usize,
    /// Wall-clock backstop for a submitted job before the dispatch plane
    /// is asked to retry or give up. Generous by default: the inline
    /// refusal path already handles dead-worker retries, so this only
    /// fires for jobs stranded with no live worker.
    pub dispatch_timeout: Duration,
    /// Record end-to-end spans (dispatch, queue wait, service) into an
    /// in-memory trace, exportable via [`RtCluster::trace_snapshot`].
    /// Timestamps are wall-clock nanoseconds since cluster start.
    pub tracing: bool,
    /// Dispatch shards (`0` = auto: the machine's available
    /// parallelism, clamped to 2..=16). Each shard is an independent
    /// lottery + outstanding-job tracker behind its own lock; submits
    /// round-robin across them, so concurrent submitters contend
    /// 1/shards of the time.
    pub shards: usize,
    /// Let idle workers steal queued jobs from same-class siblings
    /// (newest-first, via [`chan::Receiver::try_steal`]). Off by
    /// default: stealing empties a crashed worker's queue before the
    /// manager can salvage it, which is correct (the thief *completes*
    /// the work) but makes salvage-path assertions vacuous — chaos
    /// tests that exercise salvage leave this off; throughput runs
    /// turn it on.
    pub work_stealing: bool,
    /// Head-sampling rate when tracing: keep roughly one request in
    /// `trace_sample_rate` (`<= 1` keeps all). The decision stream is
    /// seeded from [`RtConfig::seed`], so the sampled request set
    /// matches the simulator's for the same seed and rate.
    pub trace_sample_rate: u32,
}

impl Default for RtConfig {
    fn default() -> Self {
        RtConfig {
            time_scale: 0.1,
            report_period: Duration::from_millis(50),
            beacon_period: Duration::from_millis(100),
            seed: 0x517e,
            restart_on_crash: true,
            nodes: 1,
            dispatch_timeout: Duration::from_secs(60),
            tracing: false,
            shards: 0,
            work_stealing: false,
            trace_sample_rate: 1,
        }
    }
}

impl RtConfig {
    /// Default configuration; chain `with_*` methods to customise.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the service-time multiplier.
    pub fn with_time_scale(mut self, v: f64) -> Self {
        self.time_scale = v;
        self
    }

    /// Sets the worker load-report period.
    pub fn with_report_period(mut self, v: Duration) -> Self {
        self.report_period = v;
        self
    }

    /// Sets the manager beacon period.
    pub fn with_beacon_period(mut self, v: Duration) -> Self {
        self.beacon_period = v;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, v: u64) -> Self {
        self.seed = v;
        self
    }

    /// Enables/disables process-peer restart of crashed workers.
    pub fn with_restart_on_crash(mut self, v: bool) -> Self {
        self.restart_on_crash = v;
        self
    }

    /// Sets the number of virtual placement nodes.
    pub fn with_nodes(mut self, v: usize) -> Self {
        self.nodes = v;
        self
    }

    /// Sets the wall-clock dispatch timeout backstop.
    pub fn with_dispatch_timeout(mut self, v: Duration) -> Self {
        self.dispatch_timeout = v;
        self
    }

    /// Enables span tracing.
    pub fn with_tracing(mut self, v: bool) -> Self {
        self.tracing = v;
        self
    }

    /// Sets the dispatch shard count (`0` = auto).
    pub fn with_shards(mut self, v: usize) -> Self {
        self.shards = v;
        self
    }

    /// Enables same-class work stealing between worker queues.
    pub fn with_work_stealing(mut self, v: bool) -> Self {
        self.work_stealing = v;
        self
    }

    /// Sets the head-sampling rate used when tracing (keep ~1 in `v`).
    pub fn with_trace_sampling(mut self, v: u32) -> Self {
        self.trace_sample_rate = v;
        self
    }

    /// The head-sampling policy a cluster built from this config uses:
    /// the configured rate over a decision stream derived from the
    /// cluster seed (the same derivation the sim-side builders use, so
    /// both backends sample the same request set).
    pub fn sampling(&self) -> Sampling {
        Sampling::per(self.trace_sample_rate, self.seed)
    }

    /// The shard count a cluster built from this config will use: the
    /// explicit value (capped at 64), or — when `shards == 0` — the
    /// machine's available parallelism clamped to 2..=16.
    pub fn resolved_shards(&self) -> usize {
        if self.shards == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .clamp(2, 16)
        } else {
            self.shards.min(64)
        }
    }
}

/// Builds fresh worker logic for (re)starts.
pub type RtWorkerFactory = Box<dyn Fn() -> Box<dyn WorkerLogic> + Send + Sync>;

struct RtJob {
    job: sns_core::msg::Job,
    reply: mpsc::SyncSender<JobResult>,
    /// When the job entered a worker inbox (queue-wait span start;
    /// survives salvage/redispatch so the wait covers the whole gap).
    enqueued: SimTime,
}

/// One live worker thread's handle.
struct WorkerHandle {
    id: u64,
    class: WorkerClass,
    node: NodeId,
    inbox: chan::Sender<RtJob>,
    /// Second receiver on the inbox (MPMC): lets the manager drain jobs
    /// a crashed worker left queued and redispatch them.
    salvage: chan::Receiver<RtJob>,
    /// Shared queue-length gauge (inbox depth + in-service).
    qlen: Arc<AtomicU64>,
    alive: Arc<AtomicBool>,
    /// Fault-injection flag: when set, the worker dies at the next loop
    /// iteration without replying (a modelled process crash).
    kill: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

/// A virtual placement domain: the control plane sees these as nodes;
/// killing one crashes every worker placed on it and removes it from
/// the placement view until revived.
struct VNode {
    node: NodeId,
    alive: bool,
    /// Service-time multiplier (f64 bits) — straggler injection.
    slow: Arc<AtomicU64>,
}

/// Data-path view of one worker: enough to hand a job over (or steal
/// one back) without touching the control lock. The `alive` and `qlen`
/// cells are shared with the [`WorkerHandle`], so this entry observes
/// deaths without bookkeeping.
struct Route {
    class: WorkerClass,
    inbox: chan::Sender<RtJob>,
    /// Extra receiver on the worker's inbox, used by thieves.
    queue: chan::Receiver<RtJob>,
    qlen: Arc<AtomicU64>,
    alive: Arc<AtomicBool>,
}

/// The read-mostly routing table: worker id → channel endpoints, plus
/// the set of classes that have ever been registered (submit's
/// fail-fast check for unknown classes).
#[derive(Default)]
struct Routes {
    classes: BTreeSet<WorkerClass>,
    workers: BTreeMap<u64, Route>,
}

/// Per-shard driver state living under the shard lock, so one
/// acquisition covers both the plane's decision and this bookkeeping.
#[derive(Default)]
struct ShardExt {
    /// Reply channel per outstanding job id.
    replies: BTreeMap<u64, mpsc::SyncSender<JobResult>>,
    /// Wall-clock dispatch deadline per outstanding job id.
    deadlines: BTreeMap<u64, Instant>,
    /// Job ids already counted in `submitted` (retries resend the same
    /// id; the conservation ledger must count it once).
    counted: BTreeSet<u64>,
    /// Dispatch-plane counters (`stub.*`), rolled up by
    /// [`RtCluster::counter`]. Keyed by interned name so the hot path
    /// never touches a global intern table.
    counters: BTreeMap<&'static str, u64>,
}

/// Control-plane state: policy, membership, spawn/restart machinery.
/// Only the manager thread, fault injectors and `add_workers` take
/// this lock — never the submit or response path.
struct ControlInner {
    control: ControlPlane,
    workers: Vec<WorkerHandle>,
    factories: BTreeMap<WorkerClass, Arc<RtWorkerFactory>>,
    policies: BTreeMap<WorkerClass, SpawnPolicy>,
    /// Salvage receivers of dead workers awaiting redispatch.
    morgue: Vec<(WorkerClass, chan::Receiver<RtJob>)>,
    vnodes: Vec<VNode>,
}

/// The component id the control plane runs under (workers count up
/// from the next id).
const MANAGER: ComponentId = ComponentId(1);

/// A running cluster of real worker threads.
///
/// All policy — lottery scheduling with the §4.5 queue-delta
/// correction, stale-hint eviction and retry, process-peer restart,
/// class minimums — lives in the shared sans-IO planes; this type owns
/// the threads, channels and clocks and applies the planes' effects.
pub struct RtCluster {
    cfg: RtConfig,
    control: Mutex<ControlInner>,
    /// The sharded dispatch state: submits round-robin across shards,
    /// responses route back by job id.
    shards: Arc<ShardedDispatch<ShardExt>>,
    routes: Arc<RwLock<Routes>>,
    running: Arc<AtomicBool>,
    manager_on: Arc<AtomicBool>,
    /// Fault injection: suppress hint publication (beacons) so stubs
    /// run on stale data (§3.1.8).
    beacon_blackout: AtomicBool,
    next_id: AtomicU64,
    incarnation: AtomicU64,
    manager: Mutex<Option<JoinHandle<()>>>,
    started: Instant,
    /// Decision log in canonical monitor-event form — the same stream
    /// the simulator's `MonitorTap` captures, so chaos invariants and
    /// the parity test run against either backend unchanged.
    log: Arc<Mutex<MonitorLog>>,
    /// Control-plane counters (`manager.*`); dispatch counters live in
    /// the shards.
    counters: Mutex<BTreeMap<&'static str, u64>>,
    /// Reply channels for jobs submitted through the [`Cluster`] trait,
    /// drained by [`Cluster::settle`].
    pending: Mutex<Vec<mpsc::Receiver<JobResult>>>,
    /// Back-reference set by [`RtCluster::start`], so `&self` methods
    /// (trait-object safe) can hand the manager thread a weak handle.
    self_weak: OnceLock<Weak<RtCluster>>,
    /// Jobs accepted into some worker's queue.
    pub submitted: Arc<AtomicU64>,
    /// Jobs completed successfully.
    pub jobs_done: Arc<AtomicU64>,
    /// Worker crashes (pathological input or injected).
    pub crashes: Arc<AtomicU64>,
    /// Process-peer restarts performed.
    pub restarts: Arc<AtomicU64>,
    /// Orphaned jobs salvaged from dead workers' queues.
    pub redispatched: Arc<AtomicU64>,
    /// Times a poisoned lock was recovered (a worker panicked while
    /// holding it).
    pub lock_poisoned: Arc<AtomicU64>,
    /// Span recorder shared by the submit path and the worker threads;
    /// disabled (no-op) unless [`RtConfig::tracing`] is set.
    tracer: Tracer,
}

impl RtCluster {
    /// Starts a cluster (manager thread included, incarnation 1).
    pub fn start(cfg: RtConfig) -> Arc<RtCluster> {
        let plane_sns = Self::plane_sns(&cfg);
        let vnodes = (0..cfg.nodes.max(1))
            .map(|i| VNode {
                node: NodeId(i as u32),
                alive: true,
                slow: Arc::new(AtomicU64::new(1.0f64.to_bits())),
            })
            .collect();
        let shards = Arc::new(ShardedDispatch::new(
            &plane_sns,
            cfg.resolved_shards(),
            cfg.seed,
            cfg.tracing,
            cfg.sampling(),
            |_| ShardExt::default(),
        ));
        let cluster = Arc::new(RtCluster {
            control: Mutex::new(ControlInner {
                // Placeholder incarnation 0; `start_manager` installs
                // the real plane before any work is accepted.
                control: ControlPlane::new(ControlConfig {
                    sns: plane_sns,
                    incarnation: 0,
                    restart_front_ends: false,
                }),
                workers: Vec::new(),
                factories: BTreeMap::new(),
                policies: BTreeMap::new(),
                morgue: Vec::new(),
                vnodes,
            }),
            shards,
            routes: Arc::new(RwLock::new(Routes::default())),
            running: Arc::new(AtomicBool::new(true)),
            manager_on: Arc::new(AtomicBool::new(false)),
            beacon_blackout: AtomicBool::new(false),
            next_id: AtomicU64::new(MANAGER.0 + 1),
            incarnation: AtomicU64::new(0),
            manager: Mutex::new(None),
            started: Instant::now(),
            log: Arc::new(Mutex::new(MonitorLog::default())),
            counters: Mutex::new(BTreeMap::new()),
            pending: Mutex::new(Vec::new()),
            self_weak: OnceLock::new(),
            submitted: Arc::new(AtomicU64::new(0)),
            jobs_done: Arc::new(AtomicU64::new(0)),
            crashes: Arc::new(AtomicU64::new(0)),
            restarts: Arc::new(AtomicU64::new(0)),
            redispatched: Arc::new(AtomicU64::new(0)),
            lock_poisoned: Arc::new(AtomicU64::new(0)),
            tracer: if cfg.tracing {
                Tracer::sampled(cfg.sampling())
            } else {
                Tracer::disabled()
            },
            cfg,
        });
        let _ = cluster.self_weak.set(Arc::downgrade(&cluster));
        cluster.start_manager();
        cluster
    }

    /// The layer config the shared planes run under: rt timing, with
    /// report-silence inference disabled — worker deaths here are
    /// *observed* (thread exit), not inferred, so the explicit
    /// death-notice path must be the only one that fires.
    fn plane_sns(cfg: &RtConfig) -> SnsConfig {
        SnsConfig {
            report_period: cfg.report_period,
            beacon_period: cfg.beacon_period,
            dispatch_timeout: cfg.dispatch_timeout,
            worker_report_timeout: Duration::from_secs(3600),
            ..SnsConfig::default()
        }
    }

    fn now(&self) -> SimTime {
        SimTime::from_nanos(self.started.elapsed().as_nanos() as u64)
    }

    fn lock_control(&self) -> MutexGuard<'_, ControlInner> {
        lock(&self.control, &self.lock_poisoned)
    }

    fn write_routes(&self) -> RwLockWriteGuard<'_, Routes> {
        self.routes.write().unwrap_or_else(PoisonError::into_inner)
    }

    fn incr(&self, key: &'static str, n: u64) {
        *lock(&self.counters, &self.lock_poisoned)
            .entry(key)
            .or_insert(0) += n;
    }

    /// The control plane's placement snapshot: alive virtual nodes with
    /// their live-worker counts.
    fn view_of(inner: &ControlInner) -> ClusterView {
        let mut dedicated = Vec::new();
        for v in &inner.vnodes {
            if !v.alive {
                continue;
            }
            let components = inner
                .workers
                .iter()
                .filter(|w| w.node == v.node && w.alive.load(Ordering::Relaxed))
                .count() as u32;
            dedicated.push(NodeLoad {
                node: v.node,
                components,
            });
        }
        ClusterView {
            dedicated,
            overflow: Vec::new(),
            pinned_alive: BTreeMap::new(),
            spawn_latency: Duration::ZERO,
        }
    }

    /// Adds `n` workers of a class built by `factory` (kept for
    /// restarts). Hints are published immediately so submits can land
    /// before the first beacon tick.
    pub fn add_workers(
        &self,
        class: &str,
        n: usize,
        factory: impl Fn() -> Box<dyn WorkerLogic> + Send + Sync + 'static,
    ) {
        let class = WorkerClass::new(class);
        self.write_routes().classes.insert(class.clone());
        let mut guard = self.lock_control();
        let inner = &mut *guard;
        inner
            .factories
            .insert(class.clone(), Arc::new(Box::new(factory)));
        let policy = inner.policies.entry(class.clone()).or_insert(SpawnPolicy {
            min_workers: 0,
            max_workers: 0,
            max_per_node: 0,
            auto_scale: false,
            restart_on_crash: self.cfg.restart_on_crash,
            pinned_node: None,
            tenant: "shared",
        });
        if self.cfg.restart_on_crash {
            policy.min_workers += n as u32;
        }
        let policy = policy.clone();
        inner.control.add_class(class.clone(), policy);
        let now = self.now();
        let target = inner.control.class_strength(&class) + n as u32;
        let view = Self::view_of(inner);
        let mut out = Vec::new();
        inner
            .control
            .ensure_workers(&class, target, now, &view, &mut out);
        self.apply_control(inner, out, false, now);
        self.refresh_hints(inner);
    }

    /// Applies control-plane effects, in order, onto threads/channels.
    /// `count_restarts` distinguishes recovery spawns from bootstrap.
    /// Caller holds the control lock (`inner`); shard and route locks
    /// are taken underneath it, per the lock order.
    fn apply_control(
        &self,
        inner: &mut ControlInner,
        effects: Vec<ControlEffect>,
        count_restarts: bool,
        now: SimTime,
    ) {
        for effect in effects {
            match effect {
                ControlEffect::Spawn {
                    token,
                    class,
                    node,
                    overflow: _,
                } => {
                    let Some(factory) = inner.factories.get(&class).map(Arc::clone) else {
                        continue;
                    };
                    let slow = inner
                        .vnodes
                        .iter()
                        .find(|v| v.node == node)
                        .map(|v| Arc::clone(&v.slow))
                        .unwrap_or_else(|| Arc::new(AtomicU64::new(1.0f64.to_bits())));
                    let handle = self.spawn_worker_thread(factory(), node, slow);
                    let id = ComponentId(handle.id);
                    inner.control.confirm_spawn(token, id);
                    // Registration is synchronous here (no SAN between
                    // the manager and a thread it just started); the
                    // Watch effect is meaningless to this driver.
                    inner.control.on_register_worker(
                        id,
                        class.clone(),
                        node,
                        false,
                        now,
                        &mut Vec::new(),
                    );
                    self.write_routes().workers.insert(
                        handle.id,
                        Route {
                            class,
                            inbox: handle.inbox.clone(),
                            queue: handle.salvage.clone(),
                            qlen: Arc::clone(&handle.qlen),
                            alive: Arc::clone(&handle.alive),
                        },
                    );
                    inner.workers.push(handle);
                    if count_restarts {
                        self.restarts.fetch_add(1, Ordering::Relaxed);
                    }
                }
                ControlEffect::Shutdown { worker } => {
                    // Graceful reap: close the inbox; the thread drains
                    // its queue and exits. Deregister now (the sim
                    // worker does the same on drain completion) so the
                    // later thread-exit reap is not mistaken for a
                    // crash and respawned as a process peer.
                    if let Some(w) = inner.workers.iter().find(|w| ComponentId(w.id) == worker) {
                        w.inbox.close();
                        inner.control.on_deregister_worker(worker, &mut Vec::new());
                    }
                }
                ControlEffect::Beacon(data) => {
                    if self.beacon_blackout.load(Ordering::Relaxed) {
                        continue;
                    }
                    self.publish_beacon(inner, &data);
                }
                ControlEffect::Emit(ev) => {
                    // Mirror decisions into the trace as instants (the
                    // sim monitor does the same), so recoveries line up
                    // with the request spans they perturb.
                    if self.tracer.is_enabled() && !matches!(ev, MonitorEvent::Heartbeat { .. }) {
                        self.tracer
                            .instant(ev.kind_key(), trace::CAT_MONITOR, MANAGER, now);
                    }
                    lock(&self.log, &self.lock_poisoned).push(now, ev);
                }
                ControlEffect::Incr { key, n } => self.incr(key, n),
                // No front-end processes, no engine watch list, no
                // stats hub, no rival managers in this runtime.
                ControlEffect::SpawnFrontEnd { .. }
                | ControlEffect::Watch(_)
                | ControlEffect::Unwatch(_)
                | ControlEffect::Sample { .. }
                | ControlEffect::StepDown => {}
            }
        }
    }

    /// Broadcasts a hint snapshot to every dispatch shard and delivers
    /// whatever each shard flushes. Caller holds the control lock.
    fn publish_beacon(&self, inner: &mut ControlInner, data: &BeaconData) {
        let mut need = Vec::new();
        self.shards.broadcast_beacon(data, |_, shard, out| {
            self.deliver_shard(shard, out, &mut need)
        });
        self.need_workers_locked(inner, need);
    }

    /// Runs the control plane's on-demand spawn path for each class a
    /// dispatch shard reported starved. Caller holds the control lock.
    fn need_workers_locked(&self, inner: &mut ControlInner, need: Vec<WorkerClass>) {
        for class in need {
            if !self.manager_on.load(Ordering::Relaxed) {
                continue;
            }
            let now = self.now();
            let view = Self::view_of(inner);
            let mut out = Vec::new();
            inner.control.on_need_worker(&class, now, &view, &mut out);
            self.apply_control(inner, out, true, now);
        }
    }

    /// Like [`Self::need_workers_locked`] but acquires the control lock
    /// — the deferred half of the submit path (shard locks are released
    /// before this runs, preserving the `control → shard` order).
    fn need_workers(&self, need: Vec<WorkerClass>) {
        if need.is_empty() {
            return;
        }
        let mut guard = self.lock_control();
        self.need_workers_locked(&mut guard, need);
    }

    /// Applies one shard's dispatch effects. Jobs aimed at dead workers
    /// are refused inline, which feeds the plane's timeout/retry path
    /// immediately instead of waiting out a wall-clock timer.
    /// `NeedWorker` effects are *deferred* into `need` — handling them
    /// requires the control lock, which must never be acquired while a
    /// shard is held.
    fn deliver_shard(
        &self,
        shard: &mut DispatchShard<ShardExt>,
        effects: Vec<DispatchEffect>,
        need: &mut Vec<WorkerClass>,
    ) {
        let mut queue: VecDeque<DispatchEffect> = effects.into();
        while let Some(effect) = queue.pop_front() {
            match effect {
                DispatchEffect::SendJob { worker, job } => {
                    let target = {
                        let routes = read_routes(&self.routes);
                        routes
                            .workers
                            .get(&worker.0)
                            .filter(|r| r.alive.load(Ordering::Relaxed))
                            .map(|r| (r.inbox.clone(), Arc::clone(&r.qlen)))
                    };
                    let Some((inbox, qlen)) = target else {
                        self.refuse_in_shard(shard, job.id, &mut queue);
                        continue;
                    };
                    let Some(reply) = shard.ext.replies.get(&job.id).cloned() else {
                        continue; // reply channel gone: job already settled
                    };
                    qlen.fetch_add(1, Ordering::Relaxed);
                    match inbox.send(RtJob {
                        job: (*job).clone(),
                        reply,
                        enqueued: self.now(),
                    }) {
                        Ok(()) => {
                            if shard.ext.counted.insert(job.id) {
                                self.submitted.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(chan::SendError(_)) => self.refuse_in_shard(shard, job.id, &mut queue),
                    }
                }
                DispatchEffect::NeedWorker { class, .. } => need.push(class),
                DispatchEffect::Incr { key, n } => {
                    *shard.ext.counters.entry(key).or_insert(0) += n;
                }
                DispatchEffect::Span(s) => self.tracer.record(s),
            }
        }
    }

    /// A job could not be handed to its chosen worker: run the shard's
    /// timeout path now (evict the dead hint, retry elsewhere or give
    /// up) and queue whatever it decides.
    fn refuse_in_shard(
        &self,
        shard: &mut DispatchShard<ShardExt>,
        job_id: u64,
        queue: &mut VecDeque<DispatchEffect>,
    ) {
        let now = self.now();
        let mut out = Vec::new();
        let verdict = {
            let DispatchShard { plane, rng, .. } = &mut *shard;
            plane.on_timeout(rng, now, job_id, &mut out)
        };
        match verdict {
            TimeoutVerdict::Retried => {
                shard
                    .ext
                    .deadlines
                    .insert(job_id, Instant::now() + self.cfg.dispatch_timeout);
            }
            TimeoutVerdict::GaveUp(_) => {
                shard.ext.deadlines.remove(&job_id);
                if let Some(tx) = shard.ext.replies.remove(&job_id) {
                    let _ = tx.try_send(JobResult::Failed("no live worker".into()));
                }
            }
            TimeoutVerdict::Unknown => {
                shard.ext.deadlines.remove(&job_id);
            }
        }
        queue.extend(out);
    }

    /// Submits a job; the reply arrives on the returned channel. The
    /// worker is chosen by the shared dispatch plane (lottery over
    /// beacon hints with the §4.5 queue-delta correction); a stale pick
    /// is refused by the driver and retried through the same plane.
    ///
    /// Hot path: one round-robin shard lock plus a routing-table read —
    /// never the control lock, so submits from many threads scale with
    /// the shard count.
    pub fn submit(
        &self,
        class: &str,
        op: &str,
        input: Payload,
        profile: Option<ProfileData>,
    ) -> mpsc::Receiver<JobResult> {
        let (reply_tx, reply_rx) = mpsc::sync_channel(1);
        if !self.running.load(Ordering::Relaxed) {
            let _ = reply_tx.send(JobResult::Failed("cluster is shut down".into()));
            return reply_rx;
        }
        let class = WorkerClass::new(class);
        if !read_routes(&self.routes).classes.contains(&class) {
            let _ = reply_tx.send(JobResult::Failed(format!("no workers of class {class}")));
            return reply_rx;
        }
        let now = self.now();
        let mut need = Vec::new();
        {
            let mut shard = self.shards.lock(self.shards.pick());
            let mut out = Vec::new();
            // Multi-tenant admission: over-quota tenants are refused
            // (or degraded) before the lottery runs, so a flash crowd
            // on one tenant cannot occupy dispatch state that another
            // tenant's jobs need.
            if shard.plane.admit(&class, &mut out) == sns_core::Admission::Drop {
                let _ = reply_tx.try_send(JobResult::Failed("tenant over quota".into()));
                self.deliver_shard(&mut shard, out, &mut need);
                return reply_rx;
            }
            {
                let DispatchShard { plane, rng, ext } = &mut *shard;
                let job_id = plane.dispatch(
                    rng,
                    now,
                    ComponentId::EXTERNAL,
                    class,
                    op.to_string(),
                    input,
                    profile,
                    SpanCtx::root(),
                    &mut out,
                );
                ext.replies.insert(job_id, reply_tx);
                ext.deadlines
                    .insert(job_id, Instant::now() + self.cfg.dispatch_timeout);
            }
            self.deliver_shard(&mut shard, out, &mut need);
        }
        self.need_workers(need);
        reply_rx
    }

    /// Spawns one worker thread. The thread honours service times by
    /// sleeping (scaled), crashes by *not replying* (the queue is
    /// salvaged later), and reports completions straight into its
    /// dispatch shard. With work stealing on, an idle worker drains
    /// same-class siblings' queues (newest job first) before sleeping.
    fn spawn_worker_thread(
        &self,
        mut logic: Box<dyn WorkerLogic>,
        node: NodeId,
        slow: Arc<AtomicU64>,
    ) -> WorkerHandle {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let class = logic.class();
        let (tx, rx) = chan::unbounded::<RtJob>();
        let salvage = rx.clone();
        let qlen = Arc::new(AtomicU64::new(0));
        let alive = Arc::new(AtomicBool::new(true));
        let kill = Arc::new(AtomicBool::new(false));

        let running = Arc::clone(&self.running);
        let jobs_done = Arc::clone(&self.jobs_done);
        let crashes = Arc::clone(&self.crashes);
        let log = Arc::clone(&self.log);
        let poisoned = Arc::clone(&self.lock_poisoned);
        let weak: Weak<ShardedDispatch<ShardExt>> = Arc::downgrade(&self.shards);
        let routes = Arc::clone(&self.routes);
        let stealing = self.cfg.work_stealing;
        let time_scale = self.cfg.time_scale;
        let seed = self.cfg.seed ^ id;
        let started = self.started;
        let tracer = self.tracer.clone();
        let class_key = intern_class(class.name());
        let alive_t = Arc::clone(&alive);
        let kill_t = Arc::clone(&kill);
        let qlen_t = Arc::clone(&qlen);
        let class_t = class.clone();

        let crash = {
            let crashes = Arc::clone(&crashes);
            let log = Arc::clone(&log);
            let poisoned = Arc::clone(&poisoned);
            let alive = Arc::clone(&alive_t);
            let class = class_t.clone();
            move || {
                crashes.fetch_add(1, Ordering::Relaxed);
                let now = SimTime::from_nanos(started.elapsed().as_nanos() as u64);
                lock(&log, &poisoned).push(
                    now,
                    MonitorEvent::WorkerCrashed {
                        worker: ComponentId(id),
                        class: class.clone(),
                    },
                );
                // The store is last: once the manager sees !alive it
                // will join this thread, which must not block again.
                alive.store(false, Ordering::Relaxed);
            }
        };

        let join = std::thread::Builder::new()
            .name(format!("sns-rt-{}-{}", class.name().replace('/', "-"), id))
            .spawn(move || {
                let mut rng = Pcg32::new(seed);
                // Stealing polls its own queue, so idle sleeps are short;
                // without stealing the condvar wakes us and 50 ms is just
                // the shutdown-check cadence.
                let idle = if stealing {
                    Duration::from_millis(5)
                } else {
                    Duration::from_millis(50)
                };
                let steal = |my: u64| -> Option<RtJob> {
                    if !stealing {
                        return None;
                    }
                    let r = read_routes(&routes);
                    let victims: Vec<u64> = r
                        .workers
                        .iter()
                        .filter(|(&wid, route)| {
                            wid != my && route.class == class_t && !route.queue.is_empty()
                        })
                        .map(|(&wid, _)| wid)
                        .collect();
                    if victims.is_empty() {
                        return None;
                    }
                    // Rotate the scan start per thief so a burst of idle
                    // workers doesn't pile onto one victim's lock.
                    let start = my as usize % victims.len();
                    victims
                        .iter()
                        .cycle()
                        .skip(start)
                        .take(victims.len())
                        .find_map(|wid| r.workers[wid].queue.try_steal())
                };
                loop {
                    if kill_t.load(Ordering::Relaxed) {
                        crash();
                        return;
                    }
                    let rt_job = match rx.try_recv() {
                        Ok(j) => j,
                        Err(chan::TryRecvError::Disconnected) => break,
                        Err(chan::TryRecvError::Empty) => match steal(id) {
                            Some(j) => j,
                            None => match rx.recv_timeout(idle) {
                                Ok(j) => j,
                                Err(chan::RecvTimeoutError::Timeout) => {
                                    if running.load(Ordering::Relaxed) {
                                        continue;
                                    } else {
                                        break;
                                    }
                                }
                                Err(chan::RecvTimeoutError::Disconnected) => break,
                            },
                        },
                    };
                    qlen_t.store(rx.len() as u64 + 1, Ordering::Relaxed);
                    let now = SimTime::from_nanos(started.elapsed().as_nanos() as u64);
                    let me = ComponentId(id);
                    let parent = trace::job_span_id(rt_job.job.reply_to, rt_job.job.id);
                    if rt_job.job.sampled && tracer.is_enabled() {
                        tracer.record(trace::span(
                            trace::queue_span_id(me, rt_job.job.id),
                            Some(parent),
                            trace::QUEUE,
                            trace::CAT_WORKER,
                            me,
                            class_key,
                            rt_job.enqueued,
                            now,
                            0,
                            true,
                        ));
                    }
                    let service = logic.service_time(&rt_job.job, now, &mut rng);
                    let factor = time_scale.max(0.0) * f64::from_bits(slow.load(Ordering::Relaxed));
                    std::thread::sleep(service.mul_f64(factor));
                    let done = SimTime::from_nanos(started.elapsed().as_nanos() as u64);
                    let service_span = |bytes: u64, ok: bool| {
                        if rt_job.job.sampled && tracer.is_enabled() {
                            tracer.record(trace::span(
                                trace::service_span_id(me, rt_job.job.id),
                                Some(parent),
                                trace::SERVICE,
                                trace::CAT_WORKER,
                                me,
                                class_key,
                                now,
                                done,
                                bytes,
                                ok,
                            ));
                        }
                    };
                    match logic.process(&rt_job.job, now, &mut rng) {
                        Ok(payload) => {
                            jobs_done.fetch_add(1, Ordering::Relaxed);
                            service_span(payload.wire_size(), true);
                            let _ = rt_job.reply.send(JobResult::Ok(payload));
                            finish(&weak, &tracer, done, rt_job.job.id);
                        }
                        Err(WorkerError::Failed(reason)) => {
                            service_span(0, false);
                            let _ = rt_job.reply.send(JobResult::Failed(reason));
                            finish(&weak, &tracer, done, rt_job.job.id);
                        }
                        Err(WorkerError::Crash) => {
                            // No reply, no settlement: the job vanishes
                            // with the "process" (§3.1.6); dispatch
                            // state is reclaimed by the deadline sweep.
                            service_span(0, false);
                            crash();
                            return;
                        }
                    }
                    qlen_t.store(rx.len() as u64, Ordering::Relaxed);
                }
                // Clean exit (inbox closed and drained): publish the
                // death so the manager reaps this handle. The graceful
                // Shutdown path deregistered us already, so the reap is
                // a join + route removal, not a peer restart.
                qlen_t.store(0, Ordering::Relaxed);
                alive_t.store(false, Ordering::Relaxed);
            })
            .expect("spawn worker thread");

        WorkerHandle {
            id,
            class,
            node,
            inbox: tx,
            salvage,
            qlen,
            alive,
            kill,
            join: Some(join),
        }
    }

    /// One manager-loop step: reconcile deaths, feed load reports,
    /// tick the control plane (beacon + policy), salvage orphaned
    /// queues, sweep dispatch deadlines.
    fn control_step(&self) {
        let now = self.now();
        let mut guard = self.lock_control();
        let inner = &mut *guard;
        self.process_deaths(inner, now);
        let reports: Vec<(u64, WorkerClass, u32, NodeId)> = inner
            .workers
            .iter()
            .filter(|w| w.alive.load(Ordering::Relaxed))
            .map(|w| {
                (
                    w.id,
                    w.class.clone(),
                    w.qlen.load(Ordering::Relaxed) as u32,
                    w.node,
                )
            })
            .collect();
        for (id, class, qlen, node) in reports {
            let mut out = Vec::new();
            inner.control.on_load_report(
                ComponentId(id),
                class,
                qlen,
                now,
                || (node, false),
                &mut out,
            );
            self.apply_control(inner, out, true, now);
        }
        let view = Self::view_of(inner);
        let mut out = Vec::new();
        inner.control.on_tick(now, &view, &mut out);
        self.apply_control(inner, out, true, now);
        self.drain_morgue(inner);
        self.sweep_deadlines(inner);
    }

    /// Joins dead worker threads, moves their queues to the morgue and
    /// notifies the control plane (which decides whether a process
    /// peer is started, §3.1.3).
    fn process_deaths(&self, inner: &mut ControlInner, now: SimTime) {
        while let Some(idx) = inner
            .workers
            .iter()
            .position(|w| !w.alive.load(Ordering::Relaxed))
        {
            let mut dead = inner.workers.remove(idx);
            if let Some(j) = dead.join.take() {
                let _ = j.join();
            }
            self.write_routes().workers.remove(&dead.id);
            inner
                .morgue
                .push((dead.class.clone(), dead.salvage.clone()));
            let view = Self::view_of(inner);
            let mut out = Vec::new();
            inner
                .control
                .on_peer_death(ComponentId(dead.id), now, &view, &mut out);
            self.apply_control(inner, out, true, now);
        }
    }

    /// Redispatches jobs stranded in dead workers' queues onto the
    /// newest live worker of the class (the replacement, when there is
    /// one).
    fn drain_morgue(&self, inner: &mut ControlInner) {
        let morgue = std::mem::take(&mut inner.morgue);
        let mut kept = Vec::new();
        for (class, salvage) in morgue {
            let target = inner
                .workers
                .iter()
                .filter(|w| w.class == class && w.alive.load(Ordering::Relaxed))
                .max_by_key(|w| w.id)
                .map(|w| (w.inbox.clone(), Arc::clone(&w.qlen)));
            let Some((inbox, qlen)) = target else {
                kept.push((class, salvage)); // no survivor yet: try next step
                continue;
            };
            let mut moved = 0u64;
            while let Ok(orphan) = salvage.try_recv() {
                if inbox.send(orphan).is_ok() {
                    moved += 1;
                }
            }
            if moved > 0 {
                qlen.fetch_add(moved, Ordering::Relaxed);
                self.redispatched.fetch_add(moved, Ordering::Relaxed);
            }
        }
        inner.morgue = kept;
    }

    /// Runs each shard's timeout handler for every job past its
    /// wall-clock deadline. Caller holds the control lock; shards are
    /// visited one at a time underneath it.
    fn sweep_deadlines(&self, inner: &mut ControlInner) {
        let wall = Instant::now();
        let mut need = Vec::new();
        self.shards.for_each(|_, shard| {
            let expired: Vec<u64> = shard
                .ext
                .deadlines
                .iter()
                .filter(|&(_, d)| *d <= wall)
                .map(|(&id, _)| id)
                .collect();
            for job_id in expired {
                let mut queue = VecDeque::new();
                self.refuse_in_shard(shard, job_id, &mut queue);
                let effects: Vec<DispatchEffect> = queue.into_iter().collect();
                self.deliver_shard(shard, effects, &mut need);
            }
        });
        self.need_workers_locked(inner, need);
    }

    /// Publishes the control plane's current hints to the dispatch
    /// shards immediately (test hook; ignores the beacon blackout since
    /// the call is explicit).
    pub fn refresh_hints_now(&self) {
        let mut guard = self.lock_control();
        self.refresh_hints(&mut guard);
    }

    fn refresh_hints(&self, inner: &mut ControlInner) {
        let b = inner.control.make_beacon(self.now());
        self.publish_beacon(inner, &b);
    }

    /// Live workers of a class.
    pub fn workers_of(&self, class: &str) -> usize {
        let class = WorkerClass::new(class);
        self.lock_control()
            .workers
            .iter()
            .filter(|w| w.class == class && w.alive.load(Ordering::Relaxed))
            .count()
    }

    /// Injects a crash into one live worker of `class`. Returns whether
    /// a victim existed.
    pub fn crash_worker(&self, class: &str) -> bool {
        let class = WorkerClass::new(class);
        let inner = self.lock_control();
        for w in &inner.workers {
            if w.class == class
                && w.alive.load(Ordering::Relaxed)
                && !w.kill.load(Ordering::Relaxed)
            {
                w.kill.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Kills virtual node `which` (stable creation-order index): every
    /// worker placed on it crashes and the node leaves the placement
    /// view, so replacements cannot land there until
    /// [`RtCluster::revive_node`]. Returns the number of workers
    /// killed, or `None` when the index is out of range or the node is
    /// already dead — a reported skip, never a silent re-aim at a
    /// different live node.
    pub fn kill_node(&self, which: usize) -> Option<u64> {
        let mut inner = self.lock_control();
        let v = inner.vnodes.get_mut(which).filter(|v| v.alive)?;
        v.alive = false;
        let node = v.node;
        let mut killed = 0;
        for w in &inner.workers {
            if w.node == node
                && w.alive.load(Ordering::Relaxed)
                && !w.kill.swap(true, Ordering::Relaxed)
            {
                killed += 1;
            }
        }
        Some(killed)
    }

    /// Revives dead virtual node `which` (stable index); the class
    /// minimums repopulate it on the next manager tick. `false` when
    /// the index is out of range or the node is already up.
    pub fn revive_node(&self, which: usize) -> bool {
        let mut inner = self.lock_control();
        match inner.vnodes.get_mut(which) {
            Some(v) if !v.alive => {
                v.alive = true;
                true
            }
            _ => false,
        }
    }

    /// Multiplies service times of workers on virtual node `which`
    /// (stable index) by `factor` (straggler injection; 1.0 restores).
    /// `false` when the index is out of range or the node is dead.
    pub fn set_node_slowdown(&self, which: usize, factor: f64) -> bool {
        let inner = self.lock_control();
        match inner.vnodes.get(which) {
            Some(v) if v.alive => {
                v.slow.store(factor.to_bits(), Ordering::Relaxed);
                true
            }
            _ => false,
        }
    }

    /// Drains virtual node `which` (stable index): the control plane
    /// stops placing workers there and gracefully shuts down the ones
    /// it runs (they drain their queues, deregister and exit; the class
    /// minimums respawn replacements on other nodes). `false` when the
    /// index is out of range, the node is dead, or it is already
    /// drained.
    pub fn drain_node(&self, which: usize) -> bool {
        let mut guard = self.lock_control();
        let inner = &mut *guard;
        let Some(node) = inner.vnodes.get(which).filter(|v| v.alive).map(|v| v.node) else {
            return false;
        };
        let now = self.now();
        let mut out = Vec::new();
        inner.control.on_drain_node(node, &mut out);
        if out.is_empty() {
            return false; // already drained: idempotent no-op upstream
        }
        self.apply_control(inner, out, false, now);
        self.refresh_hints(inner);
        true
    }

    /// Returns drained virtual node `which` (stable index) to service;
    /// with `upgraded` the node rejoins at a bumped upgrade epoch (the
    /// rolling-upgrade "restart at new incarnation" step). `false` when
    /// the index is out of range, the node is dead, or it was not
    /// drained.
    pub fn rejoin_node(&self, which: usize, upgraded: bool) -> bool {
        let mut guard = self.lock_control();
        let inner = &mut *guard;
        let Some(node) = inner.vnodes.get(which).filter(|v| v.alive).map(|v| v.node) else {
            return false;
        };
        let now = self.now();
        let mut out = Vec::new();
        if upgraded {
            inner.control.on_upgrade_node(node, &mut out);
        } else {
            inner.control.on_undrain_node(node, &mut out);
        }
        if out.is_empty() {
            return false; // was not drained
        }
        self.apply_control(inner, out, false, now);
        self.refresh_hints(inner);
        true
    }

    /// Assigns a worker class to a tenant on every dispatch shard (the
    /// multi-tenant admission bookkeeping; see
    /// [`sns_core::TenantPolicy`]).
    pub fn set_tenant(&self, class: &str, tenant: &'static str) {
        let class = WorkerClass::new(class);
        self.shards
            .for_each(|_, s| s.plane.set_tenant(class.clone(), tenant));
    }

    /// Installs a tenant's overload policy on every dispatch shard.
    /// Each shard enforces its own share of the quota
    /// (`max_outstanding` is per shard), which keeps admission off the
    /// global lock; size quotas accordingly.
    pub fn set_tenant_policy(&self, tenant: &'static str, policy: sns_core::TenantPolicy) {
        self.shards
            .for_each(|_, s| s.plane.set_tenant_policy(tenant, policy));
    }

    /// Suppresses/permits hint publication (fault injection: front-end
    /// stubs keep scheduling on stale hints, §3.1.8).
    pub fn set_beacon_blackout(&self, on: bool) {
        self.beacon_blackout.store(on, Ordering::Relaxed);
    }

    /// Snapshot of the decision log (same canonical event stream as the
    /// simulator's monitor tap).
    pub fn monitor_log(&self) -> MonitorLog {
        lock(&self.log, &self.lock_poisoned).clone()
    }

    /// The cluster's span recorder (disabled unless
    /// [`RtConfig::tracing`] was set).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Snapshot of the recorded trace, or `None` when tracing is off.
    /// Timestamps are wall-clock nanoseconds since cluster start; use
    /// [`sns_core::trace::normalized`] for time-free comparisons.
    pub fn trace_snapshot(&self) -> Option<TraceLog> {
        self.tracer.snapshot()
    }

    /// A control/dispatch plane counter (e.g. `"manager.load_reports"`,
    /// `"stub.retries"`), summed across the control plane's counters
    /// and every dispatch shard's. Accepts a [`MetricKey`] or anything
    /// that interns into one (plain `&str` keeps working).
    pub fn counter(&self, key: impl Into<MetricKey>) -> u64 {
        let key = key.into().as_str();
        let mut total = lock(&self.counters, &self.lock_poisoned)
            .get(key)
            .copied()
            .unwrap_or(0);
        self.shards
            .for_each(|_, s| total += s.ext.counters.get(key).copied().unwrap_or(0));
        total
    }

    /// Stops the manager thread (fault injection). Workers keep
    /// serving; crashed workers stay dead until a new incarnation.
    pub fn kill_manager(&self) {
        self.manager_on.store(false, Ordering::Relaxed);
        let handle = lock(&self.manager, &self.lock_poisoned).take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }

    /// Starts a manager thread under a fresh incarnation: rebuilds the
    /// control plane's soft state from the live workers (§3.1.3 — "all
    /// state is rebuilt from registrations and load reports"),
    /// reconciles deaths that happened while no manager ran, and tops
    /// populations back up to their class minimums.
    pub fn start_manager(&self) {
        let mut slot = lock(&self.manager, &self.lock_poisoned);
        if slot.is_some() || !self.running.load(Ordering::Relaxed) {
            return;
        }
        self.manager_on.store(true, Ordering::Relaxed);
        let inc = self.incarnation.fetch_add(1, Ordering::Relaxed) + 1;
        {
            let mut guard = self.lock_control();
            let inner = &mut *guard;
            let now = self.now();
            let mut control = ControlPlane::new(ControlConfig {
                sns: Self::plane_sns(&self.cfg),
                incarnation: inc,
                restart_front_ends: false,
            });
            for (class, policy) in &inner.policies {
                control.add_class(class.clone(), policy.clone());
            }
            inner.control = control;
            let view = Self::view_of(inner);
            let mut out = Vec::new();
            inner
                .control
                .on_start(now, MANAGER, NodeId(0), &view, &mut out);
            self.apply_control(inner, out, true, now);
            // Reconcile deaths from the manager-less window, then adopt
            // the survivors into the fresh incarnation's soft state.
            self.process_deaths(inner, now);
            let live: Vec<(u64, WorkerClass, NodeId)> = inner
                .workers
                .iter()
                .filter(|w| w.alive.load(Ordering::Relaxed))
                .map(|w| (w.id, w.class.clone(), w.node))
                .collect();
            for (id, class, node) in live {
                inner.control.on_register_worker(
                    ComponentId(id),
                    class,
                    node,
                    false,
                    now,
                    &mut Vec::new(),
                );
            }
            let classes: Vec<(WorkerClass, u32)> = inner
                .policies
                .iter()
                .map(|(c, p)| (c.clone(), p.min_workers))
                .collect();
            for (class, min) in classes {
                let view = Self::view_of(inner);
                let mut out = Vec::new();
                inner
                    .control
                    .ensure_workers(&class, min, now, &view, &mut out);
                self.apply_control(inner, out, true, now);
            }
            self.drain_morgue(inner);
            self.refresh_hints(inner);
        }
        let weak = self
            .self_weak
            .get()
            .cloned()
            .expect("RtCluster is built via RtCluster::start");
        let handle = std::thread::Builder::new()
            .name("sns-rt-manager".into())
            .spawn(move || loop {
                let Some(cluster) = weak.upgrade() else {
                    return;
                };
                if !cluster.running.load(Ordering::Relaxed)
                    || !cluster.manager_on.load(Ordering::Relaxed)
                {
                    return;
                }
                cluster.control_step();
                let period = cluster.cfg.beacon_period;
                drop(cluster); // don't keep the cluster alive while asleep
                std::thread::sleep(period);
            })
            .expect("spawn manager thread");
        *slot = Some(handle);
    }

    /// Stops everything: the manager thread first, then the workers
    /// (closing their inboxes so queued work is *drained*, not
    /// dropped). Jobs stranded in dead workers' queues are failed.
    pub fn shutdown(&self) {
        self.running.store(false, Ordering::Relaxed);
        self.kill_manager();
        let mut inner = self.lock_control();
        for w in &inner.workers {
            w.inbox.close();
        }
        let mut workers = std::mem::take(&mut inner.workers);
        drop(inner); // don't hold the control lock while draining
        for w in &mut workers {
            if let Some(j) = w.join.take() {
                let _ = j.join();
            }
        }
        let mut inner = self.lock_control();
        let morgue = std::mem::take(&mut inner.morgue);
        drop(inner);
        for (_class, salvage) in morgue {
            while let Ok(orphan) = salvage.try_recv() {
                let _ = orphan
                    .reply
                    .try_send(JobResult::Failed("cluster is shut down".into()));
            }
        }
        for w in &workers {
            while let Ok(orphan) = w.salvage.try_recv() {
                let _ = orphan
                    .reply
                    .try_send(JobResult::Failed("cluster is shut down".into()));
            }
        }
        self.write_routes().workers.clear();
        self.shards.for_each(|_, s| {
            s.ext.replies.clear();
            s.ext.deadlines.clear();
        });
    }
}

/// The backend-agnostic harness surface. Inherent methods keep their
/// richer signatures (e.g. [`RtCluster::submit`] returns the reply
/// channel); these implementations adapt them to the narrow trait so
/// chaos plans and invariant checkers drive rt and sim identically.
impl Cluster for RtCluster {
    fn backend(&self) -> &'static str {
        "rt"
    }

    fn submit(&self, class: &str, op: &str, input: Payload) {
        let rx = RtCluster::submit(self, class, op, input, None);
        lock(&self.pending, &self.lock_poisoned).push(rx);
    }

    fn settle(&self, budget: Duration) -> SettleStats {
        let pending = std::mem::take(&mut *lock(&self.pending, &self.lock_poisoned));
        let mut stats = SettleStats::default();
        if pending.is_empty() {
            // Nothing to wait for: let wall-clock recovery play out.
            std::thread::sleep(budget);
            return stats;
        }
        let deadline = Instant::now() + budget;
        for rx in pending {
            let left = deadline.saturating_duration_since(Instant::now());
            match rx.recv_timeout(left) {
                Ok(JobResult::Ok(_)) => stats.answered += 1,
                Ok(JobResult::Failed(_)) | Err(_) => stats.failed += 1,
            }
        }
        stats
    }

    fn workers_of(&self, class: &str) -> usize {
        RtCluster::workers_of(self, class)
    }

    fn crash_worker(&self, class: &str) -> bool {
        RtCluster::crash_worker(self, class)
    }

    fn kill_manager(&self) {
        RtCluster::kill_manager(self);
    }

    fn restart_manager(&self) {
        RtCluster::start_manager(self);
    }

    fn kill_node(&self, which: usize) -> Option<u64> {
        RtCluster::kill_node(self, which)
    }

    fn revive_node(&self, which: usize) -> bool {
        RtCluster::revive_node(self, which)
    }

    fn set_node_slowdown(&self, which: usize, factor: f64) -> bool {
        RtCluster::set_node_slowdown(self, which, factor)
    }

    fn drain_node(&self, which: usize) -> bool {
        RtCluster::drain_node(self, which)
    }

    fn rejoin_node(&self, which: usize, upgraded: bool) -> bool {
        RtCluster::rejoin_node(self, which, upgraded)
    }

    fn set_beacon_blackout(&self, on: bool) {
        RtCluster::set_beacon_blackout(self, on);
    }

    fn monitor_log(&self) -> MonitorLog {
        RtCluster::monitor_log(self)
    }

    fn counter(&self, key: MetricKey) -> u64 {
        RtCluster::counter(self, key)
    }

    fn trace_snapshot(&self) -> Option<TraceLog> {
        RtCluster::trace_snapshot(self)
    }
}

/// Settles a completed job in its dispatch shard (called from worker
/// threads; the weak ref breaks the `Arc` cycle with the cluster).
/// Span effects the plane emits (the closed dispatch span) go straight
/// to `tracer`.
fn finish(weak: &Weak<ShardedDispatch<ShardExt>>, tracer: &Tracer, now: SimTime, job_id: u64) {
    if let Some(shards) = weak.upgrade() {
        let mut out = Vec::new();
        {
            let (_, mut shard) = shards.lock_for(job_id);
            shard.plane.on_response(job_id, now, &mut out);
            shard.ext.replies.remove(&job_id);
            shard.ext.deadlines.remove(&job_id);
        }
        for effect in out {
            if let DispatchEffect::Span(s) = effect {
                tracer.record(s);
            }
        }
    }
}

impl Drop for RtCluster {
    fn drop(&mut self) {
        self.running.store(false, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_core::msg::Job;
    use sns_core::Blob;

    struct Echo {
        /// Crash on inputs tagged "poison".
        _private: (),
    }

    impl WorkerLogic for Echo {
        fn class(&self) -> WorkerClass {
            "echo".into()
        }
        fn service_time(&mut self, _j: &Job, _n: SimTime, _r: &mut Pcg32) -> Duration {
            Duration::from_millis(5)
        }
        fn process(
            &mut self,
            job: &Job,
            _n: SimTime,
            _r: &mut Pcg32,
        ) -> Result<Payload, WorkerError> {
            let blob = sns_core::payload_as::<Blob>(&job.input).expect("blob");
            if blob.tag == "poison" {
                return Err(WorkerError::Crash);
            }
            Ok(Blob::payload(blob.len / 2, "echoed"))
        }
    }

    fn cluster() -> Arc<RtCluster> {
        let c = RtCluster::start(
            RtConfig::new()
                .with_time_scale(0.05)
                .with_report_period(Duration::from_millis(10))
                .with_beacon_period(Duration::from_millis(20)),
        );
        c.add_workers("echo", 3, || Box::new(Echo { _private: () }));
        c
    }

    #[test]
    fn real_threads_process_real_jobs() {
        let c = cluster();
        let mut receivers = Vec::new();
        for i in 0..50 {
            receivers.push(c.submit("echo", "echo", Blob::payload(1000 + i, "x"), None));
        }
        for rx in receivers {
            match rx.recv_timeout(Duration::from_secs(10)).expect("reply") {
                JobResult::Ok(p) => assert!(p.wire_size() >= 500),
                JobResult::Failed(e) => panic!("job failed: {e}"),
            }
        }
        assert_eq!(c.jobs_done.load(Ordering::Relaxed), 50);
        c.shutdown();
    }

    #[test]
    fn crash_is_detected_and_worker_restarted() {
        let c = cluster();
        assert_eq!(c.workers_of("echo"), 3);
        // Poison until we actually kill someone (lottery may spread).
        let rx = c.submit("echo", "echo", Blob::payload(10, "poison"), None);
        // No reply ever comes from a crashed worker.
        assert!(rx.recv_timeout(Duration::from_millis(300)).is_err());
        // The manager notices and restores the population.
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if c.workers_of("echo") == 3 && c.restarts.load(Ordering::Relaxed) >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(c.workers_of("echo"), 3, "process peer restart");
        assert!(c.crashes.load(Ordering::Relaxed) >= 1);
        // And the survivors still serve.
        let rx = c.submit("echo", "echo", Blob::payload(100, "x"), None);
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(5)),
            Ok(JobResult::Ok(_))
        ));
        c.shutdown();
    }

    #[test]
    fn injected_crash_restores_population() {
        let c = cluster();
        assert!(c.crash_worker("echo"), "a live echo worker exists");
        assert!(!c.crash_worker("ghost"), "unknown class has no target");
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if c.workers_of("echo") == 3 && c.crashes.load(Ordering::Relaxed) >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(c.workers_of("echo"), 3);
        assert!(c.crashes.load(Ordering::Relaxed) >= 1);
        assert!(c.restarts.load(Ordering::Relaxed) >= 1);
        c.shutdown();
    }

    #[test]
    fn manager_failover_pauses_then_resumes_restarts() {
        let c = cluster();
        c.kill_manager();
        assert!(c.crash_worker("echo"));
        // With no manager, the dead worker stays dead.
        std::thread::sleep(Duration::from_millis(300));
        assert_eq!(c.workers_of("echo"), 2);
        // A new incarnation recovers the population.
        c.start_manager();
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if c.workers_of("echo") == 3 {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(c.workers_of("echo"), 3, "failover restart");
        c.shutdown();
    }

    #[test]
    fn submit_falls_back_when_hinted_worker_died() {
        let c = cluster();
        // Freeze hints, then kill a worker: hints now reference a dead id.
        c.set_beacon_blackout(true);
        c.refresh_hints_now();
        assert!(c.crash_worker("echo"));
        std::thread::sleep(Duration::from_millis(150)); // let it die
                                                        // Every submit must still land on a live worker.
        let receivers: Vec<_> = (0..20)
            .map(|_| c.submit("echo", "echo", Blob::payload(64, "x"), None))
            .collect();
        for rx in receivers {
            assert!(matches!(
                rx.recv_timeout(Duration::from_secs(5)),
                Ok(JobResult::Ok(_))
            ));
        }
        assert_eq!(c.submitted.load(Ordering::Relaxed), 20);
        c.set_beacon_blackout(false);
        c.shutdown();
    }

    #[test]
    fn unknown_class_fails_softly() {
        let c = cluster();
        let rx = c.submit("ghost", "op", Blob::payload(1, "x"), None);
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(1)),
            Ok(JobResult::Failed(_))
        ));
        c.shutdown();
    }

    #[test]
    fn load_spreads_across_threads() {
        let c = cluster();
        let receivers: Vec<_> = (0..60)
            .map(|_| c.submit("echo", "echo", Blob::payload(512, "x"), None))
            .collect();
        for rx in receivers {
            assert!(rx.recv_timeout(Duration::from_secs(10)).is_ok());
        }
        c.shutdown();
    }

    #[test]
    fn node_kill_and_revive_round_trip() {
        let c = RtCluster::start(
            RtConfig::new()
                .with_time_scale(0.05)
                .with_report_period(Duration::from_millis(10))
                .with_beacon_period(Duration::from_millis(20))
                .with_nodes(2),
        );
        c.add_workers("echo", 4, || Box::new(Echo { _private: () }));
        assert_eq!(c.workers_of("echo"), 4);
        let killed = c.kill_node(0).expect("a node is alive");
        assert!(killed >= 1, "node held at least one worker");
        // The survivor node absorbs the class minimum.
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if c.workers_of("echo") == 4 {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(c.workers_of("echo"), 4, "respawned on the surviving node");
        assert!(c.revive_node(0));
        assert!(!c.revive_node(0), "no dead node remains");
        assert!(c.set_node_slowdown(0, 2.0));
        assert!(c.set_node_slowdown(0, 1.0));
        let rx = c.submit("echo", "echo", Blob::payload(64, "x"), None);
        assert!(matches!(
            rx.recv_timeout(Duration::from_secs(5)),
            Ok(JobResult::Ok(_))
        ));
        c.shutdown();
    }

    #[test]
    fn monitor_log_records_decision_stream() {
        let c = cluster();
        assert!(c.crash_worker("echo"));
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            if c.restarts.load(Ordering::Relaxed) >= 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        c.shutdown();
        let log = c.monitor_log();
        assert!(log.count("started") >= 1, "manager start logged");
        assert_eq!(log.count("spawned"), 4, "3 bootstrap + 1 restart");
        assert_eq!(log.count("crashed"), 1);
        assert_eq!(log.count("peer_restarted"), 1);
        assert!(c.counter("manager.load_reports") >= 1);
        assert_eq!(c.lock_poisoned.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn work_stealing_drains_a_hot_queue() {
        // 4 workers, hints frozen onto one victim: with stealing on,
        // its siblings drain the pile-up anyway.
        let c = RtCluster::start(
            RtConfig::new()
                .with_time_scale(1.0)
                .with_report_period(Duration::from_millis(10))
                .with_beacon_period(Duration::from_millis(20))
                .with_shards(1)
                .with_work_stealing(true),
        );
        c.add_workers("echo", 4, || Box::new(Echo { _private: () }));
        let receivers: Vec<_> = (0..40)
            .map(|_| c.submit("echo", "echo", Blob::payload(64, "x"), None))
            .collect();
        for rx in receivers {
            assert!(matches!(
                rx.recv_timeout(Duration::from_secs(20)),
                Ok(JobResult::Ok(_))
            ));
        }
        assert_eq!(c.jobs_done.load(Ordering::Relaxed), 40);
        c.shutdown();
    }

    #[test]
    fn cluster_trait_drives_rt_end_to_end() {
        let c = cluster();
        let h: &dyn Cluster = &*c;
        assert_eq!(h.backend(), "rt");
        for _ in 0..8 {
            h.submit("echo", "echo", Blob::payload(128, "x"));
        }
        let s = h.settle(Duration::from_secs(20));
        assert_eq!(s.answered, 8, "all trait-submitted jobs answered");
        assert_eq!(s.failed, 0);
        assert_eq!(h.workers_of("echo"), 3);
        assert!(h.counter(MetricKey::new("stub.dispatches")) >= 8);
        c.shutdown();
    }
}
