//! Wall-clock driver for async service bodies: the **same futures**
//! the sim front end polls under virtual time, polled here on real
//! threads against a live [`RtCluster`].
//!
//! The split mirrors the sim adapter exactly — only the axis changes:
//!
//! | concern            | sim (`AsyncSvcLogic`)        | rt (this driver)            |
//! |--------------------|------------------------------|-----------------------------|
//! | clock              | `VirtualClock` ← `ctx.now()` | `WallClock` (monotonic)     |
//! | `Action::Dispatch` | framework lottery dispatch   | [`RtCluster::submit`]       |
//! | `Action::Nap`      | engine timer                 | deadline list + park        |
//! | wake-up            | engine event delivery        | executor condvar            |
//!
//! `Action::DispatchTo` (pinned, cache-ring routing) has no rt
//! analogue — the live cluster routes every job through the shared
//! dispatch plane — so it degrades to a class dispatch: same worker
//! class, plane-chosen replica. Bodies that pin for *affinity* still
//! work; bodies that pin for *correctness* should shard by class.

use std::collections::BTreeMap;
use std::sync::mpsc::TryRecvError;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use sns_core::exec::service::{AsyncService, EventOutcome, SvcHandle, SvcOp};
use sns_core::exec::{Clock as _, Executor, WallClock};
use sns_core::frontend::Action;
use sns_core::msg::{ClientRequest, JobResult};
use sns_core::{Payload, WorkerClass};
use sns_sim::ComponentId;

use crate::RtCluster;

/// How often the driver re-checks reply channels while parked (the
/// cluster's reply channels are plain `mpsc` and cannot signal the
/// executor's condvar).
const POLL_TICK: Duration = Duration::from_millis(1);

/// The served request's outcome plus the stats the body emitted (the
/// sim adapter writes these into the engine stats hub; here the caller
/// aggregates them).
#[derive(Debug)]
pub struct ServeOutcome {
    /// The body's reply.
    pub result: Result<Payload, String>,
    /// Whether the body flagged the answer as degraded (BASE).
    pub degraded: bool,
    /// Counters the body incremented, by key.
    pub stats: BTreeMap<&'static str, u64>,
}

/// An in-flight dispatch: the awaited token, the class (reported on
/// failure, like `FeEvent::DispatchFailed`), and the reply channel.
struct InFlight {
    token: u64,
    class: WorkerClass,
    rx: mpsc::Receiver<JobResult>,
}

/// Serves one request: polls the body to completion against the live
/// cluster, blocking the calling thread (run one request per thread,
/// like the paper's FE thread pool).
pub fn serve<S: AsyncService>(
    cluster: &RtCluster,
    svc: &mut S,
    request: ClientRequest,
) -> ServeOutcome {
    let clock = WallClock::new();
    let handle = SvcHandle::new_request();
    let hint_classes = svc.hint_classes();
    let fut = svc.handle(Arc::new(request), handle.clone());
    let mut exec = Executor::new();
    let root = exec.spawn(fut);
    let ready = exec.ready_queue();

    let mut in_flight: Vec<InFlight> = Vec::new();
    let mut naps: Vec<(u64, Instant)> = Vec::new();
    let mut stats: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut degraded = false;
    let mut reply: Option<Result<Payload, String>> = None;

    loop {
        // Hint snapshot: rt reports class populations, not identities;
        // synthesise stable ids so membership-sensitive bodies (ring
        // sizing, is-the-profile-db-up checks) see the right count.
        let hints = hint_classes
            .iter()
            .map(|c| {
                let n = cluster.workers_of(c.name()) as u64;
                (c.clone(), (0..n).map(ComponentId).collect())
            })
            .collect();
        handle.sync(clock.now(), hints);
        exec.run_ready();
        for op in handle.take_ops() {
            match op {
                SvcOp::Incr(key, n) => *stats.entry(key).or_insert(0) += n,
                SvcOp::Observe(_, _) => {}
                SvcOp::Act(act) => match act {
                    Action::Dispatch {
                        tag,
                        class,
                        op,
                        input,
                        profile,
                    }
                    | Action::DispatchTo {
                        tag,
                        class,
                        op,
                        input,
                        profile,
                        ..
                    } => {
                        let rx = cluster.submit(class.name(), &op, input, profile);
                        in_flight.push(InFlight {
                            token: tag,
                            class,
                            rx,
                        });
                    }
                    Action::Compute { tag, cost } => naps.push((tag, Instant::now() + cost)),
                    Action::Nap { tag, delay } => naps.push((tag, Instant::now() + delay)),
                    Action::MarkDegraded => degraded = true,
                    Action::Reply(r) => reply = reply.or(Some(r)),
                },
            }
        }
        if !exec.is_live(root) {
            break;
        }

        // Deliver whatever has arrived; filled slots wake the body, so
        // loop straight back into run_ready.
        let mut progressed = false;
        in_flight.retain(|f| match f.rx.try_recv() {
            Ok(result) => {
                progressed |= handle.fill(f.token, EventOutcome::Reply(result));
                false
            }
            Err(TryRecvError::Empty) => true,
            Err(TryRecvError::Disconnected) => {
                progressed |= handle.fill(f.token, EventOutcome::Failed(f.class.clone()));
                false
            }
        });
        let now = Instant::now();
        naps.retain(|&(token, deadline)| {
            if deadline <= now {
                progressed |= handle.fill(token, EventOutcome::Done);
                false
            } else {
                true
            }
        });
        if progressed {
            continue;
        }
        let park = naps
            .iter()
            .map(|&(_, t)| t.saturating_duration_since(now))
            .min()
            .unwrap_or(POLL_TICK)
            .min(POLL_TICK);
        ready.wait(park.max(Duration::from_micros(50)));
    }

    let result = if handle.replied() {
        reply.unwrap_or(Err("reply action lost".into()))
    } else {
        *stats.entry("exec.body_no_reply").or_insert(0) += 1;
        Err("service body returned without replying".into())
    };
    ServeOutcome {
        result,
        degraded,
        stats,
    }
}
