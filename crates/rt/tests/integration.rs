//! Integration tests for the std-only runtime: the paper's availability
//! mechanics (§3.1.3 process-peer restart, queue salvage) exercised over
//! real OS threads, fast enough for CI (`time_scale` keeps each test
//! well under two seconds of wall clock).

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sns_core::msg::{Job, JobResult};
use sns_core::worker::{WorkerError, WorkerLogic};
use sns_core::{Blob, Payload, WorkerClass};
use sns_rt::{RtCluster, RtConfig};
use sns_sim::rng::Pcg32;
use sns_sim::time::SimTime;

/// Echoes its input; crashes the hosting thread on inputs tagged
/// "poison" (simulating a worker process dying mid-queue).
struct Echo;

impl WorkerLogic for Echo {
    fn class(&self) -> WorkerClass {
        "echo".into()
    }
    fn service_time(&mut self, _j: &Job, _n: SimTime, _r: &mut Pcg32) -> Duration {
        Duration::from_millis(5)
    }
    fn process(&mut self, job: &Job, _n: SimTime, _r: &mut Pcg32) -> Result<Payload, WorkerError> {
        let blob = sns_core::payload_as::<Blob>(&job.input).expect("blob input");
        if blob.tag == "poison" {
            return Err(WorkerError::Crash);
        }
        Ok(Blob::payload(blob.len / 2, "echoed"))
    }
}

fn fast_config() -> RtConfig {
    RtConfig::new()
        .with_time_scale(0.01)
        .with_report_period(Duration::from_millis(10))
        .with_beacon_period(Duration::from_millis(20))
        .with_seed(0xc4a5)
        .with_restart_on_crash(true)
}

/// Worker crash with work still queued: the manager must notice the
/// death, start a process peer, salvage the orphaned queue onto the
/// replacement, and every salvaged job must still get an answer.
#[test]
fn crash_restart_redispatches_queued_jobs() {
    let started = Instant::now();
    let c: Arc<RtCluster> = RtCluster::start(fast_config());
    // A single worker so the queued jobs are provably behind the poison.
    c.add_workers("echo", 1, || Box::new(Echo));

    // The poison goes first; five real jobs queue up behind it.
    let poisoned = c.submit("echo", "echo", Blob::payload(10, "poison"), None);
    let queued: Vec<_> = (0..5)
        .map(|i| c.submit("echo", "echo", Blob::payload(1000 + i, "x"), None))
        .collect();

    // The crashed job never answers…
    assert!(
        poisoned.recv_timeout(Duration::from_millis(500)).is_err(),
        "a crashed worker must not reply"
    );
    // …but every job it orphaned is salvaged onto the process peer.
    for rx in queued {
        match rx
            .recv_timeout(Duration::from_secs(2))
            .expect("salvaged reply")
        {
            JobResult::Ok(p) => assert!(p.wire_size() >= 500),
            JobResult::Failed(e) => panic!("salvaged job failed: {e}"),
        }
    }
    assert!(c.crashes.load(Ordering::Relaxed) >= 1, "crash observed");
    assert!(
        c.restarts.load(Ordering::Relaxed) >= 1,
        "process peer started"
    );
    assert!(
        c.redispatched.load(Ordering::Relaxed) >= 1,
        "orphaned queue redispatched"
    );
    assert_eq!(c.workers_of("echo"), 1, "population restored");
    c.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "test exceeded its wall-clock budget: {:?}",
        started.elapsed()
    );
}

/// Shutdown must drain, not drop: every job accepted before shutdown
/// gets a reply even though the worker threads are being torn down.
#[test]
fn shutdown_drains_queues() {
    let started = Instant::now();
    let c: Arc<RtCluster> = RtCluster::start(fast_config());
    c.add_workers("echo", 2, || Box::new(Echo));

    let receivers: Vec<_> = (0..40)
        .map(|i| c.submit("echo", "echo", Blob::payload(512 + i, "x"), None))
        .collect();
    // Tear down immediately — most of those jobs are still queued.
    c.shutdown();

    // shutdown() joined the workers, so every reply is already sent.
    for rx in receivers {
        match rx
            .recv_timeout(Duration::from_millis(100))
            .expect("drained reply")
        {
            JobResult::Ok(_) => {}
            JobResult::Failed(e) => panic!("queued job dropped at shutdown: {e}"),
        }
    }
    assert_eq!(c.jobs_done.load(Ordering::Relaxed), 40);

    // After shutdown the cluster refuses new work, softly.
    let rx = c.submit("echo", "echo", Blob::payload(1, "x"), None);
    assert!(matches!(
        rx.recv_timeout(Duration::from_millis(100)),
        Ok(JobResult::Failed(_))
    ));
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "test exceeded its wall-clock budget: {:?}",
        started.elapsed()
    );
}
