//! Worker-scaling and shard-topology tests for the threaded runtime.
//!
//! The paper's incremental-scalability claim (§2) means adding workers
//! must add throughput; before the dispatch plane was sharded, every
//! submit serialized on one global mutex and an 8-worker pool ran no
//! faster than one worker. These tests are *service-bound* (workers
//! sleep their modelled service time), so they hold on a single-core
//! CI box: sleeps overlap across threads even when compute cannot.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sns_core::msg::{Job, JobResult};
use sns_core::worker::{WorkerError, WorkerLogic};
use sns_core::{Blob, Payload, WorkerClass};
use sns_rt::{RtCluster, RtConfig};
use sns_sim::rng::Pcg32;
use sns_sim::time::SimTime;

struct Sleeper(Duration);

impl WorkerLogic for Sleeper {
    fn class(&self) -> WorkerClass {
        "w".into()
    }
    fn service_time(&mut self, _j: &Job, _n: SimTime, _r: &mut Pcg32) -> Duration {
        self.0
    }
    fn process(&mut self, job: &Job, _n: SimTime, _r: &mut Pcg32) -> Result<Payload, WorkerError> {
        Ok(Blob::payload(job.input.wire_size(), "done"))
    }
}

/// Wall time to push `jobs` service-bound jobs through a pool of
/// `workers`, with one dispatch shard per worker and stealing on.
fn run_batch(workers: usize, jobs: u64, service: Duration) -> Duration {
    let c = RtCluster::start(
        RtConfig::new()
            .with_time_scale(1.0)
            .with_report_period(Duration::from_millis(10))
            .with_beacon_period(Duration::from_millis(20))
            .with_seed(0x5ca1e)
            .with_shards(workers)
            .with_work_stealing(true),
    );
    c.add_workers("w", workers, move || Box::new(Sleeper(service)));
    let started = Instant::now();
    let submitters = workers.clamp(1, 4);
    let per = jobs / submitters as u64;
    std::thread::scope(|s| {
        for _ in 0..submitters {
            let c = Arc::clone(&c);
            s.spawn(move || {
                let receivers: Vec<_> = (0..per)
                    .map(|i| c.submit("w", "op", Blob::payload(64 + i, "x"), None))
                    .collect();
                for rx in receivers {
                    match rx.recv_timeout(Duration::from_secs(60)).expect("reply") {
                        JobResult::Ok(_) => {}
                        JobResult::Failed(e) => panic!("scaling job failed: {e}"),
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed();
    assert_eq!(c.jobs_done.load(Ordering::Relaxed), per * submitters as u64);
    c.shutdown();
    elapsed
}

/// The headline ratio: 8 workers must finish the same service-bound
/// batch at least 3x faster than 1 worker. (The bench curve shows
/// ~7.7x; 3x leaves slack for a loaded CI box.)
#[test]
fn eight_workers_at_least_triple_one_worker_throughput() {
    let jobs = 128;
    let service = Duration::from_millis(4);
    let one = run_batch(1, jobs, service);
    let eight = run_batch(8, jobs, service);
    let ratio = one.as_secs_f64() / eight.as_secs_f64();
    assert!(
        ratio >= 3.0,
        "8 workers only {ratio:.2}x faster than 1 ({one:?} vs {eight:?})"
    );
}

/// Shard-targeted chaos: kill a node while jobs are queued across all
/// dispatch shards. Every stranded job must be salvaged onto the
/// replacement workers and the conservation ledger must close exactly:
/// `salvaged + direct == submitted`, with nothing failed.
#[test]
fn node_kill_with_outstanding_jobs_conserves_across_shards() {
    let c = RtCluster::start(
        RtConfig::new()
            .with_time_scale(0.05)
            .with_report_period(Duration::from_millis(10))
            .with_beacon_period(Duration::from_millis(20))
            .with_nodes(2)
            .with_shards(4),
    );
    c.add_workers("w", 4, || Box::new(Sleeper(Duration::from_millis(50))));

    // Deep backlog spread over all 4 shards by round-robin submit.
    let receivers: Vec<_> = (0..200)
        .map(|i| c.submit("w", "op", Blob::payload(100 + i, "x"), None))
        .collect();

    // Let some jobs land in worker queues, then take out a node with
    // its share of the backlog still queued.
    std::thread::sleep(Duration::from_millis(100));
    let killed = c.kill_node(0).expect("a node is alive");
    assert!(killed >= 1, "the node hosted at least one worker");

    for rx in receivers {
        match rx.recv_timeout(Duration::from_secs(60)).expect("reply") {
            JobResult::Ok(_) => {}
            JobResult::Failed(e) => panic!("job failed across node kill: {e}"),
        }
    }

    let submitted = c.submitted.load(Ordering::Relaxed);
    let completed = c.jobs_done.load(Ordering::Relaxed);
    let salvaged = c.redispatched.load(Ordering::Relaxed);
    assert_eq!(submitted, 200);
    assert_eq!(completed, submitted, "every accepted job completed");
    assert_eq!(
        salvaged + (completed - salvaged),
        submitted,
        "salvaged {salvaged} + direct {} != submitted {submitted}",
        completed - salvaged
    );
    assert!(
        salvaged >= 1,
        "killing a node mid-backlog must strand work for salvage"
    );
    assert!(c.revive_node(0), "the killed node can come back");
    assert_eq!(c.lock_poisoned.load(Ordering::Relaxed), 0);
    c.shutdown();
}
