//! Virtual-time injector: compiles a [`FaultPlan`] into `sim.at` scripts
//! against the discrete-event engine, and carries the stale-routing probe
//! that watches `net.delivered_to_dead` between faults.

use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Duration;

use sns_core::{intern_class, MonitorLog, SnsMsg};
use sns_san::San;
use sns_sim::{NodeId, Sim, SimTime};

use crate::{FaultKind, FaultPlan};

/// The concrete engine both the cluster harnesses and this injector use.
pub type SnsSim = Sim<SnsMsg, San>;

/// Tuning for the sim-side injector.
#[derive(Debug, Clone)]
pub struct SimChaosConfig {
    /// Stale-routing grace: after a death, the LB may keep routing to the
    /// corpse for at most this long (one stale-hint interval: beacon
    /// period + dispatch timeout + detection latency, with margin).
    pub grace: Duration,
    /// How often the probe samples `net.delivered_to_dead`.
    pub probe_period: Duration,
    /// How long to keep sampling; `None` derives it from the plan
    /// horizon plus one grace window.
    pub probe_until: Option<Duration>,
}

impl Default for SimChaosConfig {
    fn default() -> Self {
        SimChaosConfig {
            grace: Duration::from_secs(8),
            probe_period: Duration::from_millis(500),
            probe_until: None,
        }
    }
}

/// One injection attempt, recorded at fire time.
#[derive(Debug, Clone)]
pub struct Injection {
    /// Virtual time the event fired.
    pub at: SimTime,
    /// Rendered event (the plan grammar line).
    pub what: String,
    /// Whether a target existed and the fault was applied.
    pub applied: bool,
}

/// Handle returned by [`SimChaos::install`]: owns the injection record and
/// the stale-routing samples, and knows how to verify them afterwards.
pub struct SimChaos {
    injections: Rc<RefCell<Vec<Injection>>>,
    samples: Rc<RefCell<Vec<(SimTime, u64)>>>,
    static_windows: Vec<(SimTime, SimTime)>,
    grace: Duration,
}

impl SimChaos {
    /// Schedules every event of `plan` onto `sim`. Target resolution is
    /// deferred to fire time (over id-sorted candidate lists, so it is
    /// deterministic); events with no live target are recorded as skipped
    /// and counted under `chaos.skipped`.
    pub fn install(sim: &mut SnsSim, plan: &FaultPlan, cfg: SimChaosConfig) -> SimChaos {
        let injections: Rc<RefCell<Vec<Injection>>> = Rc::default();
        let samples: Rc<RefCell<Vec<(SimTime, u64)>>> = Rc::default();
        let blackout_depth = Rc::new(Cell::new(0u32));

        for ev in &plan.events {
            let at = SimTime::ZERO + ev.at;
            let kind = ev.kind.clone();
            let rec = Rc::clone(&injections);
            let depth = Rc::clone(&blackout_depth);
            sim.at(at, move |s| {
                let applied = apply(s, &kind, &depth);
                s.stats_mut().incr(
                    if applied {
                        "chaos.injected"
                    } else {
                        "chaos.skipped"
                    },
                    1,
                );
                rec.borrow_mut().push(Injection {
                    at: s.now(),
                    what: kind.to_string(),
                    applied,
                });
            });
        }

        let probe_until = SimTime::ZERO
            + cfg
                .probe_until
                .unwrap_or_else(|| plan.last_effect_at() + cfg.grace + cfg.grace);
        let probe_samples = Rc::clone(&samples);
        sim.every_until(
            SimTime::ZERO + cfg.probe_period,
            cfg.probe_period,
            probe_until,
            move |s| {
                let v = s.stats().counter("net.delivered_to_dead");
                probe_samples.borrow_mut().push((s.now(), v));
            },
        );

        // Death windows known statically from the plan: kills open one at
        // the kill; partitions open one spanning the whole outage through
        // heal-time reaping (replaced stragglers die when they re-adopt).
        let static_windows = plan
            .events
            .iter()
            .filter_map(|e| match &e.kind {
                FaultKind::KillWorker { .. }
                | FaultKind::KillManager
                | FaultKind::KillManagerReplica { which: 0 }
                | FaultKind::KillNode { .. } => {
                    Some((SimTime::ZERO + e.at, SimTime::ZERO + e.at + cfg.grace))
                }
                FaultKind::Partition { heal_after, .. } => Some((
                    SimTime::ZERO + e.at,
                    SimTime::ZERO + e.at + *heal_after + cfg.grace,
                )),
                _ => None,
            })
            .collect();

        SimChaos {
            injections,
            samples,
            static_windows,
            grace: cfg.grace,
        }
    }

    /// The injection record so far (fire time, grammar line, applied?).
    pub fn injections(&self) -> Vec<Injection> {
        self.injections.borrow().clone()
    }

    /// How many events actually landed on a live target.
    pub fn applied_count(&self) -> usize {
        self.injections
            .borrow()
            .iter()
            .filter(|i| i.applied)
            .count()
    }

    /// Stale-routing check: `net.delivered_to_dead` may only grow inside
    /// a grace window opened by a planned kill or by a death the monitor
    /// stream observed (`crashed` / `reaped` events in `log`). Growth
    /// outside every window means the LB kept routing to a corpse past
    /// one stale-hint interval — returned as violation strings.
    pub fn stale_routing_violations(&self, log: &MonitorLog) -> Vec<String> {
        let mut windows: Vec<(SimTime, SimTime)> = self.static_windows.clone();
        for key in ["crashed", "reaped"] {
            for t in log.times_of(key) {
                windows.push((t, t + self.grace));
            }
        }
        windows.sort();

        let mut violations = Vec::new();
        let samples = self.samples.borrow();
        for pair in samples.windows(2) {
            let (t0, v0) = pair[0];
            let (t1, v1) = pair[1];
            if v1 > v0 {
                let excused = windows.iter().any(|&(ws, we)| t0 < we && t1 > ws);
                if !excused {
                    violations.push(format!(
                        "net.delivered_to_dead grew {v0} -> {v1} in ({t0}, {t1}] \
                         outside every death grace window"
                    ));
                }
            }
        }
        violations
    }
}

/// Resolves the `which`-th node of `pool` in stable creation order,
/// requiring it to be in `want_alive` state — the anti-wrap rule: a
/// fault aimed at a node in the wrong state is a skip, never a re-aim.
fn pool_node(s: &SnsSim, pool: &str, which: usize, want_alive: bool) -> Option<NodeId> {
    s.nodes_with_tag_all(pool)
        .get(which)
        .filter(|&&(_, alive)| alive == want_alive)
        .map(|&(n, _)| n)
}

/// Sends an operator message to the current manager component, if one
/// is alive at fire time.
fn tell_manager(s: &mut SnsSim, msg: SnsMsg) -> bool {
    match s.components_of_kind("manager").first() {
        Some(&mgr) => {
            s.inject(mgr, msg);
            true
        }
        None => false,
    }
}

fn apply(s: &mut SnsSim, kind: &FaultKind, blackout_depth: &Rc<Cell<u32>>) -> bool {
    match kind {
        FaultKind::KillWorker { class, which } => {
            let comps = s.components_of_kind(intern_class(class));
            match comps.get(which % comps.len().max(1)) {
                Some(&victim) => {
                    s.kill_component(victim);
                    true
                }
                None => false,
            }
        }
        FaultKind::KillManager => {
            let comps = s.components_of_kind("manager");
            match comps.first() {
                Some(&victim) => {
                    s.kill_component(victim);
                    true
                }
                None => false,
            }
        }
        // Front ends restart the manager themselves in this backend
        // (process-peer supervision); nothing to do here.
        FaultKind::RestartManager => false,
        FaultKind::KillNode { pool, which } => match pool_node(s, pool, *which, true) {
            Some(node) => {
                s.kill_node(node);
                true
            }
            None => false,
        },
        FaultKind::ReviveNode { pool, which } => match pool_node(s, pool, *which, false) {
            Some(node) => {
                s.revive_node(node);
                true
            }
            None => false,
        },
        FaultKind::Partition {
            pool,
            which,
            heal_after,
        } => {
            let Some(target) = pool_node(s, pool, *which, true) else {
                return false;
            };
            let rest: Vec<_> = s.node_ids().into_iter().filter(|&n| n != target).collect();
            s.net_mut().partition(&[vec![target], rest]);
            let heal_at = s.now() + *heal_after;
            s.at(heal_at, |s| s.net_mut().heal());
            true
        }
        FaultKind::BeaconLoss { lasting } => {
            blackout_depth.set(blackout_depth.get() + 1);
            s.net_mut().set_datagram_blackout(true);
            let end = s.now() + *lasting;
            let depth = Rc::clone(blackout_depth);
            s.at(end, move |s| {
                depth.set(depth.get().saturating_sub(1));
                if depth.get() == 0 {
                    s.net_mut().set_datagram_blackout(false);
                }
            });
            true
        }
        FaultKind::Straggler {
            pool,
            which,
            slowdown,
            lasting,
        } => {
            let Some(node) = pool_node(s, pool, *which, true) else {
                return false;
            };
            let orig = s.net().nic_params(node);
            let mut slow = orig.clone();
            slow.bandwidth_bps = (orig.bandwidth_bps / f64::from((*slowdown).max(1))).max(1.0);
            s.net_mut().set_nic(node, slow);
            let end = s.now() + *lasting;
            s.at(end, move |s| s.net_mut().set_nic(node, orig));
            true
        }
        FaultKind::DrainNode { pool, which } => match pool_node(s, pool, *which, true) {
            Some(node) => tell_manager(s, SnsMsg::DrainNode { node }),
            None => false,
        },
        FaultKind::RejoinNode { pool, which } => match pool_node(s, pool, *which, true) {
            Some(node) => tell_manager(s, SnsMsg::UndrainNode { node }),
            None => false,
        },
        FaultKind::RollingUpgrade {
            pool,
            nodes,
            batch,
            settle,
        } => {
            let all = s.nodes_with_tag_all(pool);
            let count = (*nodes).min(all.len());
            if count == 0 || s.components_of_kind("manager").is_empty() {
                return false;
            }
            let batch_size = (*batch).max(1);
            let settle = *settle;
            // Expand into per-round drain / upgraded-rejoin steps.
            // Round r drains at now + r·settle and rejoins at
            // now + (r+1)·settle, so a batch is always back in service
            // before the next one goes down. Targets resolve at step
            // fire time (the manager may have failed over meanwhile).
            for (r, chunk) in (0..count)
                .collect::<Vec<_>>()
                .chunks(batch_size)
                .enumerate()
            {
                let round: Vec<NodeId> = chunk.iter().map(|&i| all[i].0).collect();
                let drain_at = s.now() + settle.saturating_mul(r as u32);
                let rejoin_at = drain_at + settle;
                let drained = round.clone();
                s.at(drain_at, move |s| {
                    for node in drained {
                        if s.node_alive(node) {
                            tell_manager(s, SnsMsg::DrainNode { node });
                        }
                    }
                });
                s.at(rejoin_at, move |s| {
                    for node in round.iter().copied() {
                        if s.node_alive(node) {
                            tell_manager(s, SnsMsg::UpgradeNode { node });
                        }
                    }
                });
            }
            true
        }
        // Only replica 0 — the real manager process — exists in this
        // backend; standby-replica kills are skips here (the N-replica
        // quorum dynamics run in the deterministic `regroup` rig).
        FaultKind::KillManagerReplica { which } => {
            if *which != 0 {
                return false;
            }
            apply(s, &FaultKind::KillManager, blackout_depth)
        }
    }
}
