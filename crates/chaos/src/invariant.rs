//! Concrete recovery invariants replayed over a recorded
//! [`MonitorLog`] after a fault plan runs.
//!
//! Each checker implements [`sns_core::Invariant`]; tests combine them
//! with the end-state laws asserted directly by the harness (job
//! conservation `responses + errors == submitted`, drain bound "all
//! answered by `plan.horizon(window)`", population restoration).

use std::collections::BTreeSet;
use std::time::Duration;

use sns_core::cluster::SettleStats;
use sns_core::{Invariant, MonitorEvent, MonitorLog};
use sns_sim::SimTime;

/// Fails if the cluster spawned more workers than `max`.
///
/// Boot spawns alone are a deterministic function of the topology, so a
/// budget of exactly that count makes *any* successful kill-then-respawn
/// a violation — the intentionally-broken invariant the property suite
/// uses to demonstrate shrinking to a minimal plan.
#[derive(Debug, Clone)]
pub struct SpawnBudget {
    /// Maximum number of `spawned` events allowed.
    pub max: usize,
    seen: usize,
}

impl SpawnBudget {
    /// Budget of at most `max` spawns.
    pub fn new(max: usize) -> Self {
        SpawnBudget { max, seen: 0 }
    }
}

impl Invariant for SpawnBudget {
    fn name(&self) -> &'static str {
        "chaos.spawn_budget"
    }
    fn on_event(&mut self, _at: SimTime, event: &MonitorEvent) {
        if event.kind_key() == "spawned" {
            self.seen += 1;
        }
    }
    fn verdict(&self) -> Result<(), String> {
        if self.seen <= self.max {
            Ok(())
        } else {
            Err(format!(
                "{} workers spawned, budget {}",
                self.seen, self.max
            ))
        }
    }
}

/// Fails unless the cluster spawned at least `min` workers — the
/// "every kill was followed by a respawn" direction: with boot spawns
/// at `B` and `K` kills of pinned classes, demand `B + K`.
#[derive(Debug, Clone)]
pub struct RespawnCoverage {
    /// Minimum number of `spawned` events required.
    pub min: usize,
    seen: usize,
}

impl RespawnCoverage {
    /// Requires at least `min` spawns.
    pub fn new(min: usize) -> Self {
        RespawnCoverage { min, seen: 0 }
    }
}

impl Invariant for RespawnCoverage {
    fn name(&self) -> &'static str {
        "chaos.respawn_coverage"
    }
    fn on_event(&mut self, _at: SimTime, event: &MonitorEvent) {
        if event.kind_key() == "spawned" {
            self.seen += 1;
        }
    }
    fn verdict(&self) -> Result<(), String> {
        if self.seen >= self.min {
            Ok(())
        } else {
            Err(format!(
                "only {} workers spawned, expected at least {}",
                self.seen, self.min
            ))
        }
    }
}

/// Fails if more worker crashes were *observed* than the plan injected —
/// the reconciliation law: no crash in the monitor stream without a
/// matching fault in the plan (input-induced crashes aside, which tests
/// account for in `max`).
#[derive(Debug, Clone)]
pub struct CrashBudget {
    /// Maximum number of `crashed` events allowed.
    pub max: usize,
    seen: usize,
}

impl CrashBudget {
    /// Budget of at most `max` observed crashes.
    pub fn new(max: usize) -> Self {
        CrashBudget { max, seen: 0 }
    }
}

impl Invariant for CrashBudget {
    fn name(&self) -> &'static str {
        "chaos.crash_budget"
    }
    fn on_event(&mut self, _at: SimTime, event: &MonitorEvent) {
        if event.kind_key() == "crashed" {
            self.seen += 1;
        }
    }
    fn verdict(&self) -> Result<(), String> {
        if self.seen <= self.max {
            Ok(())
        } else {
            Err(format!(
                "{} crashes observed, plan injected only {}",
                self.seen, self.max
            ))
        }
    }
}

/// The counter-reconciliation law: deaths the engine recorded
/// (`sim.deaths`) must account for every kill the plan applied. More
/// deaths than injections are fine only when `slack` covers collateral
/// deaths (components co-located on a killed node); fewer mean a planned
/// kill silently missed.
pub fn check_death_reconciliation(
    observed_deaths: u64,
    applied_kills: u64,
    slack: u64,
) -> Result<(), String> {
    if observed_deaths < applied_kills {
        Err(format!(
            "engine recorded {observed_deaths} deaths but the plan applied {applied_kills} kills"
        ))
    } else if observed_deaths > applied_kills + slack {
        Err(format!(
            "engine recorded {observed_deaths} deaths for {applied_kills} applied kills \
             (+{slack} slack) — unplanned deaths occurred"
        ))
    } else {
        Ok(())
    }
}

/// `QuorumSafety`: never two live incarnations acting as manager.
///
/// Replays `leader_elected` / `leader_lost` events and fails if a
/// replica is elected while another replica still holds leadership —
/// the split-brain the majority-vote regroup rule exists to prevent
/// (and which the legacy single-beacon rule permits when a deposed
/// leader is revived with its old state).
#[derive(Debug, Clone, Default)]
pub struct QuorumSafety {
    leading: BTreeSet<u32>,
    violations: Vec<String>,
}

impl QuorumSafety {
    /// A fresh checker (no leader known yet).
    pub fn new() -> Self {
        Self::default()
    }
}

impl Invariant for QuorumSafety {
    fn name(&self) -> &'static str {
        "chaos.quorum_safety"
    }
    fn on_event(&mut self, at: SimTime, event: &MonitorEvent) {
        match event {
            MonitorEvent::LeaderElected {
                replica,
                incarnation,
                ..
            } => {
                if let Some(&other) = self.leading.iter().find(|&&r| r != *replica) {
                    self.violations.push(format!(
                        "at {at}: replica {replica} elected (incarnation {incarnation}) \
                         while replica {other} still leads"
                    ));
                }
                self.leading.insert(*replica);
            }
            MonitorEvent::LeaderLost { replica, .. } => {
                self.leading.remove(replica);
            }
            _ => {}
        }
    }
    fn verdict(&self) -> Result<(), String> {
        if self.violations.is_empty() {
            Ok(())
        } else {
            Err(self.violations.join("; "))
        }
    }
}

/// Runs [`QuorumSafety`] over a recorded log.
pub fn check_quorum_safety(log: &MonitorLog) -> Result<(), String> {
    log.check(&mut QuorumSafety::new())
}

/// `UpgradeNoJobLoss`: a rolling upgrade must not lose work or nodes.
///
/// After an upgrade plan settles, demand that (a) every submitted job
/// was answered (`failed == 0` — drained workers empty their queues
/// before exiting, so in-flight work survives the drain), and (b) every
/// node the plan drained came back (`node_drained` and `node_rejoined`
/// counts match, with at least one round actually performed).
pub fn check_upgrade_no_job_loss(stats: &SettleStats, log: &MonitorLog) -> Result<(), String> {
    let drained = log.count("node_drained");
    let rejoined = log.count("node_rejoined");
    if stats.failed > 0 {
        Err(format!(
            "upgrade lost work: {} of {} jobs failed or timed out",
            stats.failed,
            stats.total()
        ))
    } else if drained == 0 {
        Err("no node_drained events — the upgrade plan never ran".into())
    } else if drained != rejoined {
        Err(format!(
            "{drained} nodes drained but {rejoined} rejoined — nodes left out of service"
        ))
    } else {
        Ok(())
    }
}

/// The p99 latency of a sample set (nearest-rank on the sorted samples;
/// `Duration::ZERO` for an empty set).
pub fn p99(samples: &[Duration]) -> Duration {
    if samples.is_empty() {
        return Duration::ZERO;
    }
    let mut sorted = samples.to_vec();
    sorted.sort();
    let rank = (samples.len() * 99).div_ceil(100);
    sorted[rank.saturating_sub(1)]
}

/// `TenantIsolation`: the victim tenant keeps serving within a latency
/// band while the aggressor tenant is saturated. Fails when the victim
/// answered nothing at all (starvation) or its p99 exceeds `band`.
pub fn check_tenant_isolation(victim_latencies: &[Duration], band: Duration) -> Result<(), String> {
    if victim_latencies.is_empty() {
        return Err("victim tenant answered no requests at all — starved".into());
    }
    let p = p99(victim_latencies);
    if p > band {
        Err(format!(
            "victim-tenant p99 {:.3}s exceeds the {:.3}s isolation band ({} samples)",
            p.as_secs_f64(),
            band.as_secs_f64(),
            victim_latencies.len()
        ))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_core::{MonitorLog, WorkerClass};
    use sns_sim::{ComponentId, NodeId};

    fn spawned(node: u32) -> MonitorEvent {
        MonitorEvent::SpawnedWorker {
            class: WorkerClass::new("w"),
            node: NodeId(node),
            overflow: false,
        }
    }

    #[test]
    fn budgets_and_coverage_render_verdicts() {
        let mut log = MonitorLog::default();
        log.push(SimTime::from_secs(1), spawned(0));
        log.push(SimTime::from_secs(2), spawned(1));

        assert!(log.check(&mut SpawnBudget::new(2)).is_ok());
        let err = log.check(&mut SpawnBudget::new(1)).unwrap_err();
        assert!(err.contains("chaos.spawn_budget"), "{err}");

        assert!(log.check(&mut RespawnCoverage::new(2)).is_ok());
        let err = log.check(&mut RespawnCoverage::new(3)).unwrap_err();
        assert!(err.contains("chaos.respawn_coverage"), "{err}");

        assert!(log.check(&mut CrashBudget::new(0)).is_ok());
        log.push(
            SimTime::from_secs(3),
            MonitorEvent::WorkerCrashed {
                worker: ComponentId(9),
                class: WorkerClass::new("w"),
            },
        );
        assert!(log.check(&mut CrashBudget::new(0)).is_err());
    }

    #[test]
    fn reconciliation_bounds_both_sides() {
        assert!(check_death_reconciliation(3, 3, 0).is_ok());
        assert!(check_death_reconciliation(5, 3, 2).is_ok());
        assert!(check_death_reconciliation(2, 3, 0).is_err());
        assert!(check_death_reconciliation(6, 3, 2).is_err());
    }

    #[test]
    fn quorum_safety_flags_concurrent_leaders() {
        let mut log = MonitorLog::default();
        log.push(
            SimTime::from_secs(1),
            MonitorEvent::LeaderElected {
                replica: 0,
                incarnation: 1,
                votes: 3,
            },
        );
        log.push(
            SimTime::from_secs(5),
            MonitorEvent::LeaderLost {
                replica: 0,
                incarnation: 1,
            },
        );
        log.push(
            SimTime::from_secs(6),
            MonitorEvent::LeaderElected {
                replica: 1,
                incarnation: 2,
                votes: 2,
            },
        );
        assert!(check_quorum_safety(&log).is_ok(), "clean handover");
        // Replica 0 comes back leading while 1 still leads: split brain.
        log.push(
            SimTime::from_secs(7),
            MonitorEvent::LeaderElected {
                replica: 0,
                incarnation: 1,
                votes: 1,
            },
        );
        let err = check_quorum_safety(&log).unwrap_err();
        assert!(err.contains("still leads"), "{err}");
    }

    #[test]
    fn upgrade_no_job_loss_demands_balance() {
        let mut log = MonitorLog::default();
        log.push(
            SimTime::from_secs(1),
            MonitorEvent::NodeDrained { node: NodeId(0) },
        );
        let ok = SettleStats {
            answered: 10,
            failed: 0,
        };
        assert!(
            check_upgrade_no_job_loss(&ok, &log).is_err(),
            "not rejoined"
        );
        log.push(
            SimTime::from_secs(2),
            MonitorEvent::NodeRejoined {
                node: NodeId(0),
                epoch: 1,
            },
        );
        assert!(check_upgrade_no_job_loss(&ok, &log).is_ok());
        let lossy = SettleStats {
            answered: 9,
            failed: 1,
        };
        assert!(check_upgrade_no_job_loss(&lossy, &log).is_err());
        assert!(
            check_upgrade_no_job_loss(&ok, &MonitorLog::default()).is_err(),
            "a plan that never drained is a failed upgrade run"
        );
    }

    #[test]
    fn p99_and_isolation_band() {
        let samples: Vec<Duration> = (1..=100).map(Duration::from_millis).collect();
        assert_eq!(p99(&samples), Duration::from_millis(99));
        assert_eq!(p99(&[]), Duration::ZERO);
        assert!(check_tenant_isolation(&samples, Duration::from_millis(99)).is_ok());
        assert!(check_tenant_isolation(&samples, Duration::from_millis(98)).is_err());
        assert!(check_tenant_isolation(&[], Duration::from_secs(1)).is_err());
    }
}
