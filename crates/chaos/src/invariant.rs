//! Concrete recovery invariants replayed over a recorded
//! [`MonitorLog`](sns_core::MonitorLog) after a fault plan runs.
//!
//! Each checker implements [`sns_core::Invariant`]; tests combine them
//! with the end-state laws asserted directly by the harness (job
//! conservation `responses + errors == submitted`, drain bound "all
//! answered by `plan.horizon(window)`", population restoration).

use sns_core::{Invariant, MonitorEvent};
use sns_sim::SimTime;

/// Fails if the cluster spawned more workers than `max`.
///
/// Boot spawns alone are a deterministic function of the topology, so a
/// budget of exactly that count makes *any* successful kill-then-respawn
/// a violation — the intentionally-broken invariant the property suite
/// uses to demonstrate shrinking to a minimal plan.
#[derive(Debug, Clone)]
pub struct SpawnBudget {
    /// Maximum number of `spawned` events allowed.
    pub max: usize,
    seen: usize,
}

impl SpawnBudget {
    /// Budget of at most `max` spawns.
    pub fn new(max: usize) -> Self {
        SpawnBudget { max, seen: 0 }
    }
}

impl Invariant for SpawnBudget {
    fn name(&self) -> &'static str {
        "chaos.spawn_budget"
    }
    fn on_event(&mut self, _at: SimTime, event: &MonitorEvent) {
        if event.kind_key() == "spawned" {
            self.seen += 1;
        }
    }
    fn verdict(&self) -> Result<(), String> {
        if self.seen <= self.max {
            Ok(())
        } else {
            Err(format!(
                "{} workers spawned, budget {}",
                self.seen, self.max
            ))
        }
    }
}

/// Fails unless the cluster spawned at least `min` workers — the
/// "every kill was followed by a respawn" direction: with boot spawns
/// at `B` and `K` kills of pinned classes, demand `B + K`.
#[derive(Debug, Clone)]
pub struct RespawnCoverage {
    /// Minimum number of `spawned` events required.
    pub min: usize,
    seen: usize,
}

impl RespawnCoverage {
    /// Requires at least `min` spawns.
    pub fn new(min: usize) -> Self {
        RespawnCoverage { min, seen: 0 }
    }
}

impl Invariant for RespawnCoverage {
    fn name(&self) -> &'static str {
        "chaos.respawn_coverage"
    }
    fn on_event(&mut self, _at: SimTime, event: &MonitorEvent) {
        if event.kind_key() == "spawned" {
            self.seen += 1;
        }
    }
    fn verdict(&self) -> Result<(), String> {
        if self.seen >= self.min {
            Ok(())
        } else {
            Err(format!(
                "only {} workers spawned, expected at least {}",
                self.seen, self.min
            ))
        }
    }
}

/// Fails if more worker crashes were *observed* than the plan injected —
/// the reconciliation law: no crash in the monitor stream without a
/// matching fault in the plan (input-induced crashes aside, which tests
/// account for in `max`).
#[derive(Debug, Clone)]
pub struct CrashBudget {
    /// Maximum number of `crashed` events allowed.
    pub max: usize,
    seen: usize,
}

impl CrashBudget {
    /// Budget of at most `max` observed crashes.
    pub fn new(max: usize) -> Self {
        CrashBudget { max, seen: 0 }
    }
}

impl Invariant for CrashBudget {
    fn name(&self) -> &'static str {
        "chaos.crash_budget"
    }
    fn on_event(&mut self, _at: SimTime, event: &MonitorEvent) {
        if event.kind_key() == "crashed" {
            self.seen += 1;
        }
    }
    fn verdict(&self) -> Result<(), String> {
        if self.seen <= self.max {
            Ok(())
        } else {
            Err(format!(
                "{} crashes observed, plan injected only {}",
                self.seen, self.max
            ))
        }
    }
}

/// The counter-reconciliation law: deaths the engine recorded
/// (`sim.deaths`) must account for every kill the plan applied. More
/// deaths than injections are fine only when `slack` covers collateral
/// deaths (components co-located on a killed node); fewer mean a planned
/// kill silently missed.
pub fn check_death_reconciliation(
    observed_deaths: u64,
    applied_kills: u64,
    slack: u64,
) -> Result<(), String> {
    if observed_deaths < applied_kills {
        Err(format!(
            "engine recorded {observed_deaths} deaths but the plan applied {applied_kills} kills"
        ))
    } else if observed_deaths > applied_kills + slack {
        Err(format!(
            "engine recorded {observed_deaths} deaths for {applied_kills} applied kills \
             (+{slack} slack) — unplanned deaths occurred"
        ))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_core::{MonitorLog, WorkerClass};
    use sns_sim::{ComponentId, NodeId};

    fn spawned(node: u32) -> MonitorEvent {
        MonitorEvent::SpawnedWorker {
            class: WorkerClass::new("w"),
            node: NodeId(node),
            overflow: false,
        }
    }

    #[test]
    fn budgets_and_coverage_render_verdicts() {
        let mut log = MonitorLog::default();
        log.push(SimTime::from_secs(1), spawned(0));
        log.push(SimTime::from_secs(2), spawned(1));

        assert!(log.check(&mut SpawnBudget::new(2)).is_ok());
        let err = log.check(&mut SpawnBudget::new(1)).unwrap_err();
        assert!(err.contains("chaos.spawn_budget"), "{err}");

        assert!(log.check(&mut RespawnCoverage::new(2)).is_ok());
        let err = log.check(&mut RespawnCoverage::new(3)).unwrap_err();
        assert!(err.contains("chaos.respawn_coverage"), "{err}");

        assert!(log.check(&mut CrashBudget::new(0)).is_ok());
        log.push(
            SimTime::from_secs(3),
            MonitorEvent::WorkerCrashed {
                worker: ComponentId(9),
                class: WorkerClass::new("w"),
            },
        );
        assert!(log.check(&mut CrashBudget::new(0)).is_err());
    }

    #[test]
    fn reconciliation_bounds_both_sides() {
        assert!(check_death_reconciliation(3, 3, 0).is_ok());
        assert!(check_death_reconciliation(5, 3, 2).is_ok());
        assert!(check_death_reconciliation(2, 3, 0).is_err());
        assert!(check_death_reconciliation(6, 3, 2).is_err());
    }
}
