//! # sns-chaos — deterministic fault-injection plans and recovery invariants
//!
//! The paper's availability claims (§3.1.6 worker crashes on pathological
//! input, §3.1.3 process-peer restart, §4.6 beacon loss under SAN
//! saturation) only hold up under *systematic* failure schedules, not
//! single-fault demos. This crate turns the repo's one-off failure tests
//! into a reusable harness:
//!
//! * A declarative [`FaultPlan`] — a timed list of [`FaultKind`] events
//!   (worker crash, node down/up, manager failover, SAN partition,
//!   multicast loss burst, straggler slow-down).
//! * Two injectors compiling the *same plan* into scheduled events:
//!   [`sim::SimChaos`] drives the virtual-time engine (`sns-sim` +
//!   `sns-san`), [`rt::run_plan`] drives the wall-clock thread runtime
//!   (`sns-rt`).
//! * Recovery-invariant checkers over the recorded
//!   [`MonitorEvent`](sns_core::MonitorEvent) stream (see
//!   [`invariant`]) plus a stale-routing probe asserting the load
//!   balancer never routes to a dead worker beyond a grace window.
//! * A seeded, shrinking plan generator ([`gen::fault_plan`]) for
//!   property tests: random plans against a small cluster must satisfy
//!   the no-lost-jobs and drain-bound invariants, and failing plans
//!   shrink to a minimal event list.
//!
//! Everything is deterministic: same seed + same plan ⇒ byte-identical
//! monitor logs in the sim backend.

#![warn(missing_docs)]

pub mod gen;
pub mod harness;
pub mod invariant;
pub mod regroup;
pub mod rt;
pub mod sim;

use std::fmt;
use std::time::Duration;

pub use gen::{fault_plan, PlanSpace};
pub use harness::{SimCluster, SimClusterBuilder};
pub use invariant::{
    check_death_reconciliation, check_quorum_safety, check_tenant_isolation,
    check_upgrade_no_job_loss, p99, CrashBudget, QuorumSafety, RespawnCoverage, SpawnBudget,
};
pub use regroup::{run_regroup, RegroupMode, RegroupOutcome};
pub use sim::{SimChaos, SimChaosConfig};

/// One fault or cluster operation to inject.
///
/// *Component* verbs (`KillWorker`) index into the currently live
/// candidates (sorted by id) modulo their count, so plans stay valid as
/// the population changes underneath them. *Node* verbs (`KillNode`,
/// `ReviveNode`, `Partition`, `Straggler`, `DrainNode`, `RejoinNode`)
/// index the pool's nodes in stable creation order: a `which` whose
/// node is missing or in the wrong state (already dead, not drained, …)
/// is recorded as skipped, never silently re-aimed at a different live
/// node. An event whose candidate set is empty at fire time is likewise
/// a skip, not an error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultKind {
    /// Kill the `which`-th live component of `class` (a worker class such
    /// as `"cache"` or `"distiller/gif"`, or an engine kind such as
    /// `"frontend"`). In the rt backend the class names a worker pool.
    KillWorker {
        /// Worker class / component kind to target.
        class: String,
        /// Index into the live candidates (modulo their count).
        which: usize,
    },
    /// Kill the manager (sim: the `"manager"` component; rt: the manager
    /// thread). Process peers restart it in the sim backend.
    KillManager,
    /// Start a fresh manager incarnation (rt backend; the sim backend
    /// skips this — front ends restart the manager themselves, §3.1.3).
    RestartManager,
    /// Take the `which`-th live node of `pool` down with every component
    /// on it. Not supported by the rt backend (threads share one node).
    KillNode {
        /// Node pool tag (`"dedicated"`, `"overflow"`, …).
        pool: String,
        /// Index into the live nodes of the pool.
        which: usize,
    },
    /// Revive the `which`-th *dead* node of `pool` (empty, cores idle).
    ReviveNode {
        /// Node pool tag.
        pool: String,
        /// Index into the dead nodes of the pool.
        which: usize,
    },
    /// Isolate the `which`-th live node of `pool` from the rest of the
    /// SAN, healing after `heal_after`. Later partitions replace earlier
    /// ones (the SAN models one partition at a time).
    Partition {
        /// Node pool tag.
        pool: String,
        /// Index into the live nodes of the pool.
        which: usize,
        /// How long the partition lasts before healing.
        heal_after: Duration,
    },
    /// Drop every off-node datagram (beacons, load reports) for the
    /// window — the §4.6 multicast loss burst under SAN saturation.
    BeaconLoss {
        /// Burst duration.
        lasting: Duration,
    },
    /// Degrade the `which`-th node of `pool` to `1/slowdown` of its NIC
    /// bandwidth for the window (a straggler / queue-stall model); the
    /// original link parameters are restored afterwards.
    Straggler {
        /// Node pool tag.
        pool: String,
        /// Index into the live nodes of the pool.
        which: usize,
        /// Bandwidth divisor (≥ 1).
        slowdown: u32,
        /// How long the degradation lasts.
        lasting: Duration,
    },
    /// Drain the `which`-th node of `pool`: the manager stops placing
    /// work there and gracefully shuts the node's workers down once
    /// their queues empty (the §2.2 "temporarily disable a subset of
    /// nodes" operator verb). Skipped if the node is dead or already
    /// drained.
    DrainNode {
        /// Node pool tag.
        pool: String,
        /// Stable index into the pool's nodes.
        which: usize,
    },
    /// Return the `which`-th (drained) node of `pool` to service
    /// unchanged. Skipped if the node is dead or not drained.
    RejoinNode {
        /// Node pool tag.
        pool: String,
        /// Stable index into the pool's nodes.
        which: usize,
    },
    /// A rolling upgrade over the first `nodes` nodes of `pool`, `batch`
    /// at a time: each round drains a batch, waits `settle` for queues
    /// to empty and replacements to spawn elsewhere, then rejoins the
    /// batch at a bumped upgrade epoch (drain → restart at new
    /// incarnation → rejoin, §2.2 "upgrade them in place"). Rounds are
    /// `settle`-spaced, so the whole operation spans
    /// `ceil(nodes / batch) × settle`.
    RollingUpgrade {
        /// Node pool tag.
        pool: String,
        /// How many nodes (stable indices `0..nodes`) to upgrade.
        nodes: usize,
        /// Nodes taken down per round (≥ 1; clamped to 1 if 0).
        batch: usize,
        /// Per-round settle window between drain and upgraded rejoin.
        settle: Duration,
    },
    /// Kill manager replica `which` of the quorum regroup rig. In the
    /// sim/rt backends only replica 0 (the real manager process) exists:
    /// `which == 0` maps to [`FaultKind::KillManager`] and higher
    /// replicas are reported as skips. The N-replica dynamics are
    /// exercised by the deterministic [`regroup`] rig.
    KillManagerReplica {
        /// Replica index (0 = the leader-eligible real manager).
        which: usize,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::KillWorker { class, which } => {
                write!(f, "kill-worker class={class} which={which}")
            }
            FaultKind::KillManager => write!(f, "kill-manager"),
            FaultKind::RestartManager => write!(f, "restart-manager"),
            FaultKind::KillNode { pool, which } => {
                write!(f, "kill-node pool={pool} which={which}")
            }
            FaultKind::ReviveNode { pool, which } => {
                write!(f, "revive-node pool={pool} which={which}")
            }
            FaultKind::Partition {
                pool,
                which,
                heal_after,
            } => write!(
                f,
                "partition pool={pool} which={which} heal-after={:.3}s",
                heal_after.as_secs_f64()
            ),
            FaultKind::BeaconLoss { lasting } => {
                write!(f, "beacon-loss lasting={:.3}s", lasting.as_secs_f64())
            }
            FaultKind::Straggler {
                pool,
                which,
                slowdown,
                lasting,
            } => write!(
                f,
                "straggler pool={pool} which={which} slowdown={slowdown}x lasting={:.3}s",
                lasting.as_secs_f64()
            ),
            FaultKind::DrainNode { pool, which } => {
                write!(f, "drain-node pool={pool} which={which}")
            }
            FaultKind::RejoinNode { pool, which } => {
                write!(f, "rejoin-node pool={pool} which={which}")
            }
            FaultKind::RollingUpgrade {
                pool,
                nodes,
                batch,
                settle,
            } => write!(
                f,
                "rolling-upgrade pool={pool} nodes={nodes} batch={batch} settle={:.3}s",
                settle.as_secs_f64()
            ),
            FaultKind::KillManagerReplica { which } => {
                write!(f, "kill-manager-replica which={which}")
            }
        }
    }
}

/// A timed fault.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultEvent {
    /// Offset from simulation/cluster start.
    pub at: Duration,
    /// What happens.
    pub kind: FaultKind,
}

/// A declarative fault schedule — the single artifact both backends
/// compile. Events are kept sorted by time (stably, so same-time events
/// fire in insertion order).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// The schedule, sorted by `at`.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// An empty plan.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Builds a plan from events (sorted on construction).
    pub fn from_events(events: Vec<FaultEvent>) -> Self {
        let mut plan = FaultPlan { events };
        plan.normalize();
        plan
    }

    /// Appends an event, keeping the schedule sorted.
    pub fn with(mut self, at: Duration, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { at, kind });
        self.normalize();
        self
    }

    fn normalize(&mut self) {
        self.events.sort_by_key(|e| e.at);
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Time of the last scheduled effect, including partition heals and
    /// loss-burst/straggler windows ending after their trigger.
    pub fn last_effect_at(&self) -> Duration {
        self.events
            .iter()
            .map(|e| match &e.kind {
                FaultKind::Partition { heal_after, .. } => e.at + *heal_after,
                FaultKind::BeaconLoss { lasting } => e.at + *lasting,
                FaultKind::Straggler { lasting, .. } => e.at + *lasting,
                FaultKind::RollingUpgrade {
                    nodes,
                    batch,
                    settle,
                    ..
                } => {
                    let rounds = nodes.div_ceil((*batch).max(1)) as u32;
                    e.at + settle.saturating_mul(rounds)
                }
                _ => e.at,
            })
            .max()
            .unwrap_or(Duration::ZERO)
    }

    /// The drain-bound horizon: last effect plus a recovery window. Tests
    /// run the cluster to this point and then assert every job answered.
    pub fn horizon(&self, recovery_window: Duration) -> Duration {
        self.last_effect_at() + recovery_window
    }

    /// Count of kill events (worker, manager, node) — the "crashes
    /// injected" side of the reconciliation invariant.
    pub fn kills(&self) -> usize {
        self.events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    FaultKind::KillWorker { .. }
                        | FaultKind::KillManager
                        | FaultKind::KillNode { .. }
                )
            })
            .count()
    }
}

impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "plan {{")?;
        for e in &self.events {
            writeln!(f, "  +{:.3}s {}", e.at.as_secs_f64(), e.kind)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_sorts_and_measures() {
        let plan = FaultPlan::new()
            .with(
                Duration::from_secs(30),
                FaultKind::BeaconLoss {
                    lasting: Duration::from_secs(2),
                },
            )
            .with(Duration::from_secs(10), FaultKind::KillManager)
            .with(
                Duration::from_secs(20),
                FaultKind::Partition {
                    pool: "dedicated".into(),
                    which: 0,
                    heal_after: Duration::from_secs(15),
                },
            );
        assert_eq!(plan.len(), 3);
        assert_eq!(plan.events[0].kind, FaultKind::KillManager);
        // Partition heals at 35s — later than the 32s loss-burst end.
        assert_eq!(plan.last_effect_at(), Duration::from_secs(35));
        assert_eq!(
            plan.horizon(Duration::from_secs(60)),
            Duration::from_secs(95)
        );
        assert_eq!(plan.kills(), 1);
    }

    #[test]
    fn grammar_renders_each_kind() {
        let plan = FaultPlan::new()
            .with(
                Duration::from_secs(1),
                FaultKind::KillWorker {
                    class: "cache".into(),
                    which: 2,
                },
            )
            .with(
                Duration::from_secs(2),
                FaultKind::Straggler {
                    pool: "overflow".into(),
                    which: 0,
                    slowdown: 10,
                    lasting: Duration::from_secs(5),
                },
            );
        let text = plan.to_string();
        assert!(text.contains("+1.000s kill-worker class=cache which=2"));
        assert!(text.contains("+2.000s straggler pool=overflow which=0 slowdown=10x"));
    }

    #[test]
    fn same_time_events_keep_insertion_order() {
        let plan = FaultPlan::new()
            .with(Duration::from_secs(5), FaultKind::KillManager)
            .with(Duration::from_secs(5), FaultKind::RestartManager);
        assert_eq!(plan.events[0].kind, FaultKind::KillManager);
        assert_eq!(plan.events[1].kind, FaultKind::RestartManager);
    }
}
