//! Deterministic N-replica manager-regroup rig.
//!
//! The sim and rt backends run one real manager process, so plans can
//! only kill and restart "replica 0". This rig runs N
//! [`Quorum`] membership machines — the same state
//! machine `ControlPlane::on_rival_beacon` delegates to — over a fixed
//! virtual tick, exchanging leader ballots and replaying a
//! [`FaultPlan`]'s `KillManagerReplica` / `RestartManager` events
//! against them. The output is an ordinary
//! [`MonitorLog`] of `leader_elected` /
//! `leader_lost` events that [`crate::invariant::QuorumSafety`] checks,
//! so quorum scenarios use the same invariant plumbing as every other
//! chaos test.
//!
//! Two modes pin down *why* the majority rule exists:
//!
//! * [`RegroupMode::Quorum`] — machines built with the real replica
//!   count: takeover needs a majority of live votes, a minority island
//!   reports itself unrecoverable, and a revived ex-leader re-enters as
//!   a standby (its soft state died with it, §3.1.5).
//! * [`RegroupMode::Legacy`] — the paper's single rival-beacon rule,
//!   modelled as the N=1 degenerate machine (no majority gate) plus
//!   stateful revival: a restarted leader resumes with its old "I am
//!   the manager" state. Kill the leader, let a standby take over, then
//!   restart it — and for one beacon interval two incarnations both act
//!   as manager. That interval is exactly the `QuorumSafety` violation,
//!   and shrinking any failing legacy plan reduces it to that minimal
//!   kill-then-restart pair.

use std::time::Duration;

use sns_core::{Ballot, MonitorEvent, MonitorLog, Quorum, QuorumDecision};
use sns_sim::SimTime;

use crate::{FaultKind, FaultPlan};

/// Which takeover rule the rig applies (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegroupMode {
    /// The paper's single rival-beacon rule: no majority requirement,
    /// revived leaders resume their old state.
    Legacy,
    /// Majority-vote regroup: takeover needs a quorum of live replicas
    /// and revived replicas re-enter as standbys.
    Quorum,
}

/// What a [`run_regroup`] replay produced.
#[derive(Debug, Clone)]
pub struct RegroupOutcome {
    /// `leader_elected` / `leader_lost` / warning stream, checkable by
    /// [`crate::invariant::check_quorum_safety`].
    pub log: MonitorLog,
    /// Whether the surviving replicas ended below a majority — detected
    /// (and logged) only in [`RegroupMode::Quorum`].
    pub unrecoverable: bool,
    /// The replica leading when the replay ended, if any.
    pub leader: Option<u32>,
}

/// The fixed ballot-exchange cadence of the rig.
const TICK: Duration = Duration::from_millis(250);
/// How long a silent peer stays in the live set (mirrors the default
/// `beacon_loss_timeout`).
const VOTE_TIMEOUT: Duration = Duration::from_secs(4);
/// Extra replay time past the plan's last event, so elections triggered
/// by the final fault still play out.
const SETTLE: Duration = Duration::from_secs(20);

struct Replica {
    q: Quorum,
    alive: bool,
}

/// Replays `plan` against `replicas` manager replicas under `mode`.
///
/// Replica 0 boots as the leader at incarnation 1; the rest are
/// standbys. Only `KillManagerReplica` and `RestartManager` (revive the
/// most recently killed replica) events apply — everything else in the
/// plan is ignored, so regroup scenarios can ride inside larger plans.
/// Fully deterministic: no RNG, fixed tick, stable iteration order.
pub fn run_regroup(replicas: u32, plan: &FaultPlan, mode: RegroupMode) -> RegroupOutcome {
    let n = replicas.max(1);
    // Legacy = the N=1 degenerate machine: majority(1) == 1, so any
    // standby that stops hearing the leader elects itself unilaterally.
    let machine_replicas = match mode {
        RegroupMode::Legacy => 1,
        RegroupMode::Quorum => n,
    };
    let mut log = MonitorLog::default();
    let mut reps: Vec<Replica> = (0..n)
        .map(|id| Replica {
            q: if id == 0 {
                Quorum::leader(machine_replicas, u64::from(id), 1, VOTE_TIMEOUT)
            } else {
                Quorum::standby(machine_replicas, u64::from(id), VOTE_TIMEOUT)
            },
            alive: true,
        })
        .collect();
    let mut killed_stack: Vec<usize> = Vec::new();
    let mut unrecoverable = false;
    let mut events: Vec<(Duration, FaultKind)> =
        plan.events.iter().map(|e| (e.at, e.kind.clone())).collect();
    events.sort_by_key(|(at, _)| *at);
    let mut next_event = 0usize;

    let horizon = plan.last_effect_at() + SETTLE;
    let mut t = Duration::ZERO;
    while t <= horizon {
        let now = SimTime::ZERO + t;
        // 1. Apply plan events due by this tick.
        while next_event < events.len() && events[next_event].0 <= t {
            let kind = events[next_event].1.clone();
            next_event += 1;
            match kind {
                FaultKind::KillManagerReplica { which } => {
                    let Some(r) = reps.get_mut(which) else {
                        continue;
                    };
                    if !r.alive {
                        continue;
                    }
                    r.alive = false;
                    killed_stack.push(which);
                    if r.q.is_leading() {
                        log.push(
                            now,
                            MonitorEvent::LeaderLost {
                                replica: which as u32,
                                incarnation: r.q.incarnation(),
                            },
                        );
                    }
                }
                FaultKind::RestartManager => {
                    let Some(which) = killed_stack.pop() else {
                        continue;
                    };
                    let r = &mut reps[which];
                    r.alive = true;
                    match mode {
                        RegroupMode::Quorum => {
                            // Soft state died with the process: the
                            // replica re-enters as a standby and must
                            // win a fresh majority to ever lead again.
                            r.q = Quorum::standby(machine_replicas, which as u64, VOTE_TIMEOUT);
                        }
                        RegroupMode::Legacy => {
                            // The old process resumes with its stale
                            // state. If it believed it led, it acts as
                            // manager again the moment it is back — the
                            // split-brain interval QuorumSafety flags.
                            if r.q.is_leading() {
                                log.push(
                                    now,
                                    MonitorEvent::LeaderElected {
                                        replica: which as u32,
                                        incarnation: r.q.incarnation(),
                                        votes: 1,
                                    },
                                );
                            }
                        }
                    }
                }
                // Everything else has no replica-level meaning here.
                _ => {}
            }
        }

        // 2. Ballot exchange: every live replica broadcasts, every
        //    other live replica ingests. Deterministic order by id.
        let ballots: Vec<(usize, Ballot)> = reps
            .iter()
            .enumerate()
            .filter(|(_, r)| r.alive)
            .map(|(i, r)| (i, r.q.ballot(now)))
            .collect();
        for (from, b) in &ballots {
            for (i, r) in reps.iter_mut().enumerate() {
                if i == *from || !r.alive {
                    continue;
                }
                let was_leading = r.q.is_leading();
                if r.q.on_ballot(b) == QuorumDecision::StepDown && was_leading {
                    log.push(
                        now,
                        MonitorEvent::LeaderLost {
                            replica: i as u32,
                            incarnation: r.q.incarnation(),
                        },
                    );
                }
            }
        }

        // 3. Election / liveness tick, deterministic order by id.
        for (i, r) in reps.iter_mut().enumerate() {
            if !r.alive {
                continue;
            }
            let was_leading = r.q.is_leading();
            match r.q.tick(now) {
                QuorumDecision::TakeOver { incarnation } => {
                    log.push(
                        now,
                        MonitorEvent::LeaderElected {
                            replica: i as u32,
                            incarnation,
                            votes: r.q.live(now),
                        },
                    );
                }
                QuorumDecision::Unrecoverable { live, need } => {
                    // A leader marooned in a minority island steps down
                    // as it reports the lost quorum.
                    if was_leading {
                        log.push(
                            now,
                            MonitorEvent::LeaderLost {
                                replica: i as u32,
                                incarnation: r.q.incarnation(),
                            },
                        );
                    }
                    if !unrecoverable {
                        unrecoverable = true;
                        log.push(
                            now,
                            MonitorEvent::Warning(format!(
                                "quorum lost: {live} live replicas, majority needs {need}"
                            )),
                        );
                    }
                }
                QuorumDecision::Hold | QuorumDecision::StepDown => {}
            }
        }

        t += TICK;
    }

    // A lost quorum can be regained (revivals): report the end state.
    let live = reps.iter().filter(|r| r.alive).count() as u32;
    let majority = match mode {
        RegroupMode::Quorum => n / 2 + 1,
        RegroupMode::Legacy => 1,
    };
    let leader = reps
        .iter()
        .enumerate()
        .filter(|(_, r)| r.alive && r.q.is_leading())
        .map(|(i, _)| i as u32)
        .next();
    RegroupOutcome {
        log,
        unrecoverable: unrecoverable && live < majority,
        leader,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariant::check_quorum_safety;

    fn kill(at: u64, which: usize) -> (Duration, FaultKind) {
        (
            Duration::from_secs(at),
            FaultKind::KillManagerReplica { which },
        )
    }

    fn plan(events: Vec<(Duration, FaultKind)>) -> FaultPlan {
        events
            .into_iter()
            .fold(FaultPlan::new(), |p, (at, k)| p.with(at, k))
    }

    #[test]
    fn minority_kill_keeps_quorum_safe() {
        let out = run_regroup(3, &plan(vec![kill(5, 2)]), RegroupMode::Quorum);
        assert!(check_quorum_safety(&out.log).is_ok());
        assert!(!out.unrecoverable);
        assert_eq!(out.leader, Some(0), "the leader never went away");
        assert_eq!(out.log.count("leader_elected"), 0);
    }

    #[test]
    fn leader_kill_elects_majority_successor() {
        let out = run_regroup(3, &plan(vec![kill(5, 0)]), RegroupMode::Quorum);
        assert!(check_quorum_safety(&out.log).is_ok());
        assert!(!out.unrecoverable);
        assert_eq!(out.leader, Some(1), "lowest live standby takes over");
        assert_eq!(out.log.count("leader_elected"), 1);
    }

    #[test]
    fn majority_kill_is_unrecoverable_without_takeover() {
        let out = run_regroup(3, &plan(vec![kill(5, 0), kill(5, 2)]), RegroupMode::Quorum);
        assert!(out.unrecoverable, "1 of 3 live is below majority");
        assert_eq!(out.leader, None, "no minority self-election");
        assert_eq!(out.log.count("leader_elected"), 0);
        assert!(check_quorum_safety(&out.log).is_ok());
    }

    #[test]
    fn legacy_revival_splits_the_brain_quorum_does_not() {
        let events = vec![
            kill(2, 0),
            (Duration::from_secs(10), FaultKind::RestartManager),
        ];
        let legacy = run_regroup(3, &plan(events.clone()), RegroupMode::Legacy);
        assert!(
            check_quorum_safety(&legacy.log).is_err(),
            "revived legacy leader resumes while the successor leads"
        );
        let quorum = run_regroup(3, &plan(events), RegroupMode::Quorum);
        assert!(
            check_quorum_safety(&quorum.log).is_ok(),
            "quorum revival re-enters as a standby"
        );
        assert_eq!(quorum.leader, Some(1));
    }
}
