//! Wall-clock injector: compiles a [`FaultPlan`] into a timeline a
//! background thread executes against a live [`RtCluster`].
//!
//! The rt backend is a single-host thread model, so only the faults with
//! a thread-level analogue apply: worker crashes (kill flags), manager
//! failover (stop/start the manager thread) and beacon loss (suppress
//! hint refreshes). Node and SAN faults have no rt analogue and are
//! reported as skipped — the plan still type-checks against both
//! backends, which is the point: one artifact, two interpreters.

use std::sync::Arc;
use std::thread;
use std::time::Instant;

use sns_rt::RtCluster;

use crate::{FaultKind, FaultPlan};

/// What the injector thread did, returned from its join handle.
#[derive(Debug, Clone, Default)]
pub struct RtChaosReport {
    /// Grammar lines of events that landed (in execution order).
    pub applied: Vec<String>,
    /// Grammar lines of events with no rt analogue or no live target.
    pub skipped: Vec<String>,
    /// Worker kill flags that were actually set.
    pub crashes_injected: usize,
}

enum Action {
    CrashWorker(String),
    KillManager,
    StartManager,
    BlackoutOn,
    BlackoutOff,
    Skip(String),
}

/// Spawns a thread that executes `plan` against `cluster` in wall-clock
/// time, with modelled durations compressed by `time_scale` (use the
/// same value as the cluster's `RtConfig`). Join the returned handle
/// after the load phase to collect the [`RtChaosReport`].
pub fn run_plan(
    cluster: Arc<RtCluster>,
    plan: &FaultPlan,
    time_scale: f64,
) -> thread::JoinHandle<RtChaosReport> {
    // Expand window events (blackout on/off) into a flat timeline.
    let mut timeline: Vec<(std::time::Duration, String, Action)> = Vec::new();
    for ev in &plan.events {
        let line = format!("+{:.3}s {}", ev.at.as_secs_f64(), ev.kind);
        match &ev.kind {
            FaultKind::KillWorker { class, .. } => {
                timeline.push((ev.at, line, Action::CrashWorker(class.clone())));
            }
            FaultKind::KillManager => timeline.push((ev.at, line, Action::KillManager)),
            FaultKind::RestartManager => timeline.push((ev.at, line, Action::StartManager)),
            FaultKind::BeaconLoss { lasting } => {
                timeline.push((ev.at, line.clone(), Action::BlackoutOn));
                timeline.push((ev.at + *lasting, line, Action::BlackoutOff));
            }
            FaultKind::KillNode { .. }
            | FaultKind::ReviveNode { .. }
            | FaultKind::Partition { .. }
            | FaultKind::Straggler { .. } => {
                timeline.push((ev.at, line, Action::Skip("no rt analogue".into())));
            }
        }
    }
    timeline.sort_by_key(|(at, _, _)| *at);

    thread::Builder::new()
        .name("sns-chaos-rt".into())
        .spawn(move || {
            let started = Instant::now();
            let mut report = RtChaosReport::default();
            for (at, line, action) in timeline {
                let due = at.mul_f64(time_scale.max(0.0));
                let elapsed = started.elapsed();
                if due > elapsed {
                    thread::sleep(due - elapsed);
                }
                match action {
                    Action::CrashWorker(class) => {
                        if cluster.crash_worker(&class) {
                            report.crashes_injected += 1;
                            report.applied.push(line);
                        } else {
                            report.skipped.push(format!("{line} (no live worker)"));
                        }
                    }
                    Action::KillManager => {
                        cluster.kill_manager();
                        report.applied.push(line);
                    }
                    Action::StartManager => {
                        cluster.start_manager();
                        report.applied.push(line);
                    }
                    Action::BlackoutOn => {
                        cluster.set_beacon_blackout(true);
                        report.applied.push(line);
                    }
                    Action::BlackoutOff => {
                        cluster.set_beacon_blackout(false);
                    }
                    Action::Skip(why) => report.skipped.push(format!("{line} ({why})")),
                }
            }
            report
        })
        .expect("spawn chaos injector thread")
}
