//! Wall-clock injector: compiles a [`FaultPlan`] into a timeline a
//! background thread executes against any live [`Cluster`].
//!
//! Historically this drove `sns_rt::RtCluster` directly; it is now
//! generic over the backend-agnostic [`Cluster`] trait, so the same
//! wall-clock interpreter can drive the threaded runtime or the
//! paced simulator harness ([`crate::harness::SimCluster`]). For the
//! rt backend nearly every fault has a thread-level analogue: worker
//! crashes (kill flags), manager failover (stop/start the manager
//! thread), beacon loss (suppress hint refreshes), node
//! kills/revivals (virtual placement domains — every worker on the
//! node crashes and replacements avoid it), and stragglers (per-node
//! service-time inflation). Only SAN partitions have no analogue —
//! there is no network between threads to cut — and are reported as
//! skipped. The plan still type-checks against both backends, which is
//! the point: one artifact, two interpreters.

use std::sync::Arc;
use std::thread;
use std::time::Instant;

use sns_core::cluster::Cluster;

use crate::{FaultKind, FaultPlan};

/// What the injector thread did, returned from its join handle.
#[derive(Debug, Clone, Default)]
pub struct RtChaosReport {
    /// Grammar lines of events that landed (in execution order).
    pub applied: Vec<String>,
    /// Grammar lines of events with no rt analogue or no live target.
    pub skipped: Vec<String>,
    /// Worker kill flags that were actually set.
    pub crashes_injected: usize,
}

enum Action {
    CrashWorker(String),
    KillManager,
    StartManager,
    BlackoutOn,
    BlackoutOff,
    KillNode(usize),
    ReviveNode(usize),
    Slowdown(usize, f64),
    Drain(usize),
    Rejoin { which: usize, upgraded: bool },
    Skip(String),
}

/// Spawns a thread that executes `plan` against `cluster` in wall-clock
/// time, with modelled durations compressed by `time_scale` (use the
/// same value as the cluster's `RtConfig`, or `1.0` for a backend that
/// paces itself). Join the returned handle after the load phase to
/// collect the [`RtChaosReport`].
pub fn run_plan<C: Cluster + Send + Sync + 'static>(
    cluster: Arc<C>,
    plan: &FaultPlan,
    time_scale: f64,
) -> thread::JoinHandle<RtChaosReport> {
    // Expand window events (blackout on/off) into a flat timeline.
    let mut timeline: Vec<(std::time::Duration, String, Action)> = Vec::new();
    for ev in &plan.events {
        let line = format!("+{:.3}s {}", ev.at.as_secs_f64(), ev.kind);
        match &ev.kind {
            FaultKind::KillWorker { class, .. } => {
                timeline.push((ev.at, line, Action::CrashWorker(class.clone())));
            }
            FaultKind::KillManager => timeline.push((ev.at, line, Action::KillManager)),
            FaultKind::RestartManager => timeline.push((ev.at, line, Action::StartManager)),
            FaultKind::BeaconLoss { lasting } => {
                timeline.push((ev.at, line.clone(), Action::BlackoutOn));
                timeline.push((ev.at + *lasting, line, Action::BlackoutOff));
            }
            FaultKind::KillNode { which, .. } => {
                timeline.push((ev.at, line, Action::KillNode(*which)));
            }
            FaultKind::ReviveNode { which, .. } => {
                timeline.push((ev.at, line, Action::ReviveNode(*which)));
            }
            FaultKind::Straggler {
                which,
                slowdown,
                lasting,
                ..
            } => {
                timeline.push((
                    ev.at,
                    line.clone(),
                    Action::Slowdown(*which, *slowdown as f64),
                ));
                timeline.push((ev.at + *lasting, line, Action::Slowdown(*which, 1.0)));
            }
            FaultKind::Partition { .. } => {
                timeline.push((
                    ev.at,
                    line,
                    Action::Skip("no rt analogue (SAN partition)".into()),
                ));
            }
            FaultKind::DrainNode { which, .. } => {
                timeline.push((ev.at, line, Action::Drain(*which)));
            }
            FaultKind::RejoinNode { which, .. } => {
                timeline.push((
                    ev.at,
                    line,
                    Action::Rejoin {
                        which: *which,
                        upgraded: false,
                    },
                ));
            }
            FaultKind::RollingUpgrade {
                nodes,
                batch,
                settle,
                ..
            } => {
                // Same expansion as the sim injector: round r drains at
                // +r·settle and rejoins (upgraded) at +(r+1)·settle, so
                // a batch is back before the next goes down.
                let batch_size = (*batch).max(1);
                for (r, chunk) in (0..*nodes)
                    .collect::<Vec<_>>()
                    .chunks(batch_size)
                    .enumerate()
                {
                    let drain_at = ev.at + settle.saturating_mul(r as u32);
                    for &which in chunk {
                        timeline.push((drain_at, line.clone(), Action::Drain(which)));
                        timeline.push((
                            drain_at + *settle,
                            line.clone(),
                            Action::Rejoin {
                                which,
                                upgraded: true,
                            },
                        ));
                    }
                }
            }
            // Only replica 0 (the real manager thread) exists here; the
            // N-replica quorum dynamics run in the `regroup` rig.
            FaultKind::KillManagerReplica { which } => {
                if *which == 0 {
                    timeline.push((ev.at, line, Action::KillManager));
                } else {
                    timeline.push((
                        ev.at,
                        line,
                        Action::Skip("no standby replicas in this backend".into()),
                    ));
                }
            }
        }
    }
    timeline.sort_by_key(|(at, _, _)| *at);

    thread::Builder::new()
        .name("sns-chaos-rt".into())
        .spawn(move || {
            let started = Instant::now();
            let mut report = RtChaosReport::default();
            for (at, line, action) in timeline {
                let due = at.mul_f64(time_scale.max(0.0));
                let elapsed = started.elapsed();
                if due > elapsed {
                    thread::sleep(due - elapsed);
                }
                match action {
                    Action::CrashWorker(class) => {
                        if cluster.crash_worker(&class) {
                            report.crashes_injected += 1;
                            report.applied.push(line);
                        } else {
                            report.skipped.push(format!("{line} (no live worker)"));
                        }
                    }
                    Action::KillManager => {
                        cluster.kill_manager();
                        report.applied.push(line);
                    }
                    Action::StartManager => {
                        cluster.restart_manager();
                        report.applied.push(line);
                    }
                    Action::BlackoutOn => {
                        cluster.set_beacon_blackout(true);
                        report.applied.push(line);
                    }
                    Action::BlackoutOff => {
                        cluster.set_beacon_blackout(false);
                    }
                    Action::KillNode(which) => match cluster.kill_node(which) {
                        Some(killed) => {
                            report.crashes_injected += killed as usize;
                            report.applied.push(line);
                        }
                        None => report.skipped.push(format!("{line} (no live node)")),
                    },
                    Action::ReviveNode(which) => {
                        if cluster.revive_node(which) {
                            report.applied.push(line);
                        } else {
                            report.skipped.push(format!("{line} (no dead node)"));
                        }
                    }
                    Action::Slowdown(which, factor) => {
                        if cluster.set_node_slowdown(which, factor) {
                            // The restore at window end is part of the same
                            // grammar line; only the onset is reported.
                            if factor != 1.0 {
                                report.applied.push(line);
                            }
                        } else if factor != 1.0 {
                            report.skipped.push(format!("{line} (no live node)"));
                        }
                    }
                    Action::Drain(which) => {
                        if cluster.drain_node(which) {
                            report.applied.push(line);
                        } else {
                            report
                                .skipped
                                .push(format!("{line} (node dead or already drained)"));
                        }
                    }
                    Action::Rejoin { which, upgraded } => {
                        if cluster.rejoin_node(which, upgraded) {
                            // Rolling-upgrade rejoins share their round's
                            // grammar line; report the onset only.
                            if !upgraded {
                                report.applied.push(line);
                            }
                        } else if !upgraded {
                            report
                                .skipped
                                .push(format!("{line} (node dead or not drained)"));
                        }
                    }
                    Action::Skip(why) => report.skipped.push(format!("{line} ({why})")),
                }
            }
            report
        })
        .expect("spawn chaos injector thread")
}
