//! Seeded [`FaultPlan`] generators for property tests.
//!
//! Plans come out of `sns-testkit`'s choice-stream generators, so a
//! failing plan shrinks the way the runner shrinks any value: toward the
//! zero stream, which here means *fewer events, earlier times, first
//! classes, smallest indices*. An empty plan is the simplest value; a
//! single kill of the first class at the earliest time is the minimal
//! non-trivial one.

use std::time::Duration;

use sns_testkit::{gens, Gen};

use crate::{FaultEvent, FaultKind, FaultPlan};

/// The space random plans are drawn from. Only *recoverable* faults are
/// generated: nodes killed here get a paired revival, partitions heal,
/// loss bursts stay shorter than the beacon-loss/report timeouts — so a
/// healthy SNS implementation must survive every plan in the space.
#[derive(Debug, Clone)]
pub struct PlanSpace {
    /// Worker classes eligible for `KillWorker` (first = shrink target).
    pub classes: Vec<String>,
    /// Node pools eligible for partitions and stragglers.
    pub pools: Vec<String>,
    /// Earliest event time (after cluster boot settles).
    pub earliest: Duration,
    /// Latest event time.
    pub latest: Duration,
    /// Maximum number of events per plan.
    pub max_events: usize,
    /// Whether manager kills may be drawn.
    pub kill_manager: bool,
    /// Whether beacon-loss bursts and partitions may be drawn.
    pub net_faults: bool,
    /// Longest beacon-loss burst (keep under the 4s beacon-loss and
    /// worker-report timeouts so soft state refreshes between bursts).
    pub max_burst: Duration,
    /// Whether cluster-operations verbs (drain, rejoin, rolling
    /// upgrade) over the pools may be drawn.
    pub cluster_ops: bool,
    /// Manager replica count for quorum-regroup plans: when > 0,
    /// `KillManagerReplica` (over `0..manager_replicas`) and
    /// `RestartManager` events may be drawn.
    pub manager_replicas: usize,
}

impl PlanSpace {
    /// A space of worker kills only — the narrowest useful space, used by
    /// the shrink-minimality tests.
    pub fn kills_only(classes: &[&str]) -> Self {
        PlanSpace {
            classes: classes.iter().map(|c| c.to_string()).collect(),
            pools: vec![],
            earliest: Duration::from_secs(15),
            latest: Duration::from_secs(45),
            max_events: 4,
            kill_manager: false,
            net_faults: false,
            max_burst: Duration::from_secs(3),
            cluster_ops: false,
            manager_replicas: 0,
        }
    }

    /// The full recoverable space over the given classes and pools.
    pub fn full(classes: &[&str], pools: &[&str]) -> Self {
        PlanSpace {
            classes: classes.iter().map(|c| c.to_string()).collect(),
            pools: pools.iter().map(|p| p.to_string()).collect(),
            earliest: Duration::from_secs(15),
            latest: Duration::from_secs(45),
            max_events: 5,
            kill_manager: true,
            net_faults: true,
            max_burst: Duration::from_secs(3),
            cluster_ops: false,
            manager_replicas: 0,
        }
    }

    /// A space of cluster-operations verbs — drains, rejoins and
    /// rolling upgrades over `pools`, mixed with worker kills from
    /// `classes`. No unrecoverable faults, so a healthy implementation
    /// must keep serving through every plan.
    pub fn cluster_ops(classes: &[&str], pools: &[&str]) -> Self {
        PlanSpace {
            classes: classes.iter().map(|c| c.to_string()).collect(),
            pools: pools.iter().map(|p| p.to_string()).collect(),
            earliest: Duration::from_secs(15),
            latest: Duration::from_secs(45),
            max_events: 4,
            kill_manager: false,
            net_faults: false,
            max_burst: Duration::from_secs(3),
            cluster_ops: true,
            manager_replicas: 0,
        }
    }

    /// A space of manager-replica kills and restarts for the quorum
    /// regroup rig. The zero alternative is `KillManagerReplica` of
    /// replica 0 (the boot leader) at the earliest time, so failing
    /// plans shrink toward the minimal kill-the-leader witness.
    pub fn regroup(replicas: usize) -> Self {
        PlanSpace {
            classes: vec![],
            pools: vec![],
            earliest: Duration::from_secs(2),
            latest: Duration::from_secs(30),
            max_events: 4,
            kill_manager: false,
            net_faults: false,
            max_burst: Duration::from_secs(3),
            cluster_ops: false,
            manager_replicas: replicas.max(1),
        }
    }
}

/// Generator of [`FaultPlan`]s over `space`. The zero choice stream
/// yields the empty plan; one extra nonzero choice yields a single
/// `KillWorker` of the first class at the earliest time.
pub fn fault_plan(space: &PlanSpace) -> Gen<FaultPlan> {
    assert!(
        !space.classes.is_empty() || space.manager_replicas > 0,
        "plan space needs worker classes or manager replicas"
    );
    assert!(space.earliest < space.latest, "empty time window");

    let event = fault_event(space);
    gens::vec(event, 0..space.max_events + 1).map(FaultPlan::from_events)
}

fn fault_event(space: &PlanSpace) -> Gen<FaultEvent> {
    let when = gens::duration_in(space.earliest..space.latest);

    // KillWorker first and heaviest: the zero alternative is the shrink
    // target, and worker crashes are the paper's headline fault (§3.1.6).
    // (In a replica-only space, KillManagerReplica takes that slot and
    // failing plans shrink toward a kill of the boot leader instead.)
    let mut alts: Vec<(u32, Gen<FaultKind>)> = Vec::new();
    if !space.classes.is_empty() {
        let classes = space.classes.clone();
        let kill_worker =
            gens::usize_in(0..classes.len() * 4).map(move |raw| FaultKind::KillWorker {
                class: classes[raw % classes.len()].clone(),
                which: raw / classes.len(),
            });
        alts.push((6, kill_worker));
    }
    if space.manager_replicas > 0 {
        let replicas = space.manager_replicas;
        alts.push((
            6,
            gens::usize_in(0..replicas).map(|which| FaultKind::KillManagerReplica { which }),
        ));
        alts.push((3, gens::just(FaultKind::RestartManager)));
    }
    if space.cluster_ops && !space.pools.is_empty() {
        let pools = space.pools.clone();
        let drain = gens::usize_in(0..pools.len() * 4).map(move |raw| FaultKind::DrainNode {
            pool: pools[raw % pools.len()].clone(),
            which: raw / pools.len(),
        });
        alts.push((3, drain));

        let pools = space.pools.clone();
        let rejoin = gens::usize_in(0..pools.len() * 4).map(move |raw| FaultKind::RejoinNode {
            pool: pools[raw % pools.len()].clone(),
            which: raw / pools.len(),
        });
        alts.push((3, rejoin));

        let pools = space.pools.clone();
        let pick = gens::usize_in(0..pools.len());
        let nodes = gens::usize_in(1..5);
        let batch = gens::usize_in(1..3);
        let settle = gens::duration_in(Duration::from_secs(2)..Duration::from_secs(8));
        let upgrade = pick.flat_map(move |p| {
            let pool = pools[p].clone();
            let batch = batch.clone();
            let settle = settle.clone();
            nodes.flat_map(move |nodes| {
                let pool = pool.clone();
                let settle = settle.clone();
                batch.flat_map(move |batch| {
                    let pool = pool.clone();
                    settle.map(move |settle| FaultKind::RollingUpgrade {
                        pool: pool.clone(),
                        nodes,
                        batch,
                        settle,
                    })
                })
            })
        });
        alts.push((2, upgrade));
    }

    if space.kill_manager {
        alts.push((2, gens::just(FaultKind::KillManager)));
    }
    if space.net_faults {
        let burst_lo = Duration::from_millis(200);
        let burst = gens::duration_in(burst_lo..space.max_burst.max(burst_lo + burst_lo));
        alts.push((2, burst.map(|lasting| FaultKind::BeaconLoss { lasting })));
        if !space.pools.is_empty() {
            let pools = space.pools.clone();
            let pick = gens::usize_in(0..pools.len() * 4);
            let heal = gens::duration_in(Duration::from_secs(2)..Duration::from_secs(10));
            let partition = pick.flat_map(move |raw| {
                let pool = pools[raw % pools.len()].clone();
                let which = raw / pools.len();
                heal.map(move |heal_after| FaultKind::Partition {
                    pool: pool.clone(),
                    which,
                    heal_after,
                })
            });
            alts.push((2, partition));

            let pools = space.pools.clone();
            let pick = gens::usize_in(0..pools.len() * 4);
            let lasting = gens::duration_in(Duration::from_secs(1)..Duration::from_secs(8));
            let slowdown = gens::u32_in(2..20);
            let straggler = pick.flat_map(move |raw| {
                let pool = pools[raw % pools.len()].clone();
                let which = raw / pools.len();
                let lasting = lasting.clone();
                slowdown.flat_map(move |sd| {
                    let pool = pool.clone();
                    lasting.map(move |lasting| FaultKind::Straggler {
                        pool: pool.clone(),
                        which,
                        slowdown: sd,
                        lasting,
                    })
                })
            });
            alts.push((1, straggler));
        }
    }

    let kind = gens::weighted_of(alts);
    when.flat_map(move |at| kind.map(move |kind| FaultEvent { at, kind }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_testkit::Source;

    #[test]
    fn zero_stream_is_the_empty_plan() {
        let g = fault_plan(&PlanSpace::full(&["cache"], &["dedicated"]));
        let mut src = Source::replay(vec![]);
        assert!(g.run(&mut src).is_empty());
    }

    #[test]
    fn plans_are_sorted_and_inside_the_window() {
        let space = PlanSpace::full(&["cache", "distiller/gif"], &["dedicated", "overflow"]);
        let g = fault_plan(&space);
        let mut src = Source::live(0xC0FFEE);
        for _ in 0..200 {
            let plan = g.run(&mut src);
            let mut prev = Duration::ZERO;
            for ev in &plan.events {
                assert!(ev.at >= prev, "unsorted plan:\n{plan}");
                assert!(ev.at >= space.earliest && ev.at < space.latest, "{plan}");
                prev = ev.at;
                if let FaultKind::BeaconLoss { lasting } = ev.kind {
                    assert!(lasting <= space.max_burst, "{plan}");
                }
            }
            assert!(plan.len() <= space.max_events);
        }
    }

    #[test]
    fn kills_only_space_draws_only_kills() {
        let g = fault_plan(&PlanSpace::kills_only(&["cache"]));
        let mut src = Source::live(7);
        for _ in 0..100 {
            for ev in &g.run(&mut src).events {
                assert!(matches!(ev.kind, FaultKind::KillWorker { .. }));
            }
        }
    }

    #[test]
    fn regroup_space_draws_only_replica_verbs() {
        let space = PlanSpace::regroup(3);
        let g = fault_plan(&space);
        let mut src = Source::live(11);
        let mut kills = 0;
        for _ in 0..200 {
            for ev in &g.run(&mut src).events {
                match &ev.kind {
                    FaultKind::KillManagerReplica { which } => {
                        assert!(*which < 3, "{}", ev.kind);
                        kills += 1;
                    }
                    FaultKind::RestartManager => {}
                    other => panic!("unexpected verb in regroup space: {other}"),
                }
            }
        }
        assert!(kills > 0, "replica kills must be drawn");
    }

    #[test]
    fn cluster_ops_space_draws_the_new_verbs() {
        let space = PlanSpace::cluster_ops(&["cache"], &["dedicated"]);
        let g = fault_plan(&space);
        let mut src = Source::live(13);
        let (mut drains, mut rejoins, mut upgrades) = (0, 0, 0);
        for _ in 0..300 {
            for ev in &g.run(&mut src).events {
                match &ev.kind {
                    FaultKind::KillWorker { .. } => {}
                    FaultKind::DrainNode { .. } => drains += 1,
                    FaultKind::RejoinNode { .. } => rejoins += 1,
                    FaultKind::RollingUpgrade { nodes, batch, .. } => {
                        assert!(*nodes >= 1 && *batch >= 1, "{}", ev.kind);
                        upgrades += 1;
                    }
                    other => panic!("unexpected verb in cluster-ops space: {other}"),
                }
            }
        }
        assert!(
            drains > 0 && rejoins > 0 && upgrades > 0,
            "every ops verb must be drawn: {drains} drains, {rejoins} rejoins, {upgrades} upgrades"
        );
    }
}
