//! The simulator as a [`Cluster`]: wraps the discrete-event engine,
//! a [`Manager`] and a dispatch-stub driver component behind the
//! backend-agnostic trait, so harness code written against
//! `&dyn Cluster` runs unchanged over virtual time.
//!
//! Where `sns_rt::RtCluster` is inherently concurrent, the simulator
//! is single-threaded and only advances when *run*; this wrapper keeps
//! the duality honest by making every trait call a synchronous
//! mutation of engine state ([`Cluster::submit`] queues into a driver
//! component, fault injectors kill components/nodes directly) and
//! letting [`Cluster::settle`] be the only place virtual time moves.
//! The trait's `budget` is therefore *virtual* seconds here and wall
//! seconds on rt — the same plan text means the same modelled
//! schedule, which is exactly the parity discipline.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use sns_core::cluster::{Cluster, SettleStats};
use sns_core::invariant::{MonitorLog, MonitorTap};
use sns_core::manager::{Manager, ManagerConfig, WorkerSpec};
use sns_core::msg::{JobResult, SnsMsg};
use sns_core::stub::TimeoutVerdict;
use sns_core::trace::{TraceLog, Tracer};
use sns_core::worker::{WorkerLogic, WorkerStub, WorkerStubConfig};
use sns_core::{intern_class, ManagerStub, Payload, SnsConfig, WorkerClass};
use sns_san::{San, SanConfig};
use sns_sim::engine::{Component, Ctx, NodeSpec, SimConfig};
use sns_sim::{ComponentId, GroupId, MetricKey, SimTime};

use crate::sim::SnsSim;

/// How often the driver component drains its submit queue and how
/// finely [`Cluster::settle`] slices its budget.
const PUMP: Duration = Duration::from_millis(100);

/// Timer-token tag for per-job dispatch timeouts (token 0 is the pump).
const K_DISPATCH: u64 = 1 << 63;

/// Node-pool tag the harness places workers on (the injector grammar's
/// `pool` name for this backend).
pub const POOL: &str = "dedicated";

/// Shared cells between [`SimCluster`] (outside the engine) and its
/// driver component (inside it).
#[derive(Default)]
struct DriverShared {
    /// Submits queued by the trait, drained at the next pump tick.
    queue: RefCell<VecDeque<(WorkerClass, String, Payload)>>,
    /// Jobs resolved with `JobResult::Ok` since cluster start.
    answered: Cell<u64>,
    /// Jobs resolved with `JobResult::Failed` since cluster start.
    failed: Cell<u64>,
    /// Dispatch-to-reply latency of every answered job, per class —
    /// the raw material for tenant-isolation p99 checks.
    latencies: RefCell<BTreeMap<WorkerClass, Vec<Duration>>>,
}

/// In-sim component owning the [`ManagerStub`]: ingests beacons,
/// dispatches queued submissions, counts resolutions. This is the
/// front-end role of Figure 1 reduced to its dispatch duties.
struct Driver {
    beacon: GroupId,
    stub: ManagerStub,
    shared: Rc<DriverShared>,
    /// Outstanding dispatches: job id → (class, dispatch time).
    pending: BTreeMap<u64, (WorkerClass, SimTime)>,
    /// Per-dispatch timeout, armed alongside every dispatch so jobs
    /// aimed at a drained or dead worker resolve instead of hanging.
    timeout: Duration,
}

impl Component<SnsMsg> for Driver {
    fn on_start(&mut self, ctx: &mut Ctx<'_, SnsMsg>) {
        self.stub.set_tracing(ctx.tracer().is_enabled());
        self.stub.set_sampling(ctx.tracer().sampling());
        ctx.join(self.beacon);
        ctx.timer(PUMP, 0);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, SnsMsg>, _from: ComponentId, msg: SnsMsg) {
        match msg {
            SnsMsg::Beacon(b) => {
                self.stub.on_beacon(&b);
                self.stub.flush_pending(ctx);
            }
            SnsMsg::WorkResponse { job_id, result, .. } => {
                // on_response returns None for replies the stub no
                // longer tracks (already timed out); only live ones
                // count toward the settle tally.
                if self.stub.on_response(ctx, job_id).is_none() {
                    return;
                }
                if let Some((class, at)) = self.pending.remove(&job_id) {
                    if matches!(result, JobResult::Ok(_)) {
                        self.shared
                            .latencies
                            .borrow_mut()
                            .entry(class)
                            .or_default()
                            .push(ctx.now() - at);
                    }
                }
                let cell = match result {
                    JobResult::Ok(_) => &self.shared.answered,
                    JobResult::Failed(_) => &self.shared.failed,
                };
                cell.set(cell.get() + 1);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, SnsMsg>, token: u64) {
        if token & K_DISPATCH != 0 {
            let id = token & !K_DISPATCH;
            match self.stub.on_timeout(ctx, id) {
                TimeoutVerdict::Retried => ctx.timer(self.timeout, K_DISPATCH | id),
                TimeoutVerdict::GaveUp(_) => {
                    if self.pending.remove(&id).is_some() {
                        self.shared.failed.set(self.shared.failed.get() + 1);
                    }
                }
                TimeoutVerdict::Unknown => {}
            }
            return;
        }
        loop {
            let next = self.shared.queue.borrow_mut().pop_front();
            let Some((class, op, input)) = next else {
                break;
            };
            // Tenant admission before dispatch: a Drop verdict resolves
            // the job as failed without ever reaching a worker, exactly
            // like the rt submit path.
            if self.stub.admit(ctx, &class) == sns_core::Admission::Drop {
                self.shared.failed.set(self.shared.failed.get() + 1);
                continue;
            }
            let at = ctx.now();
            let id = self.stub.dispatch(
                ctx,
                class.clone(),
                op,
                input,
                None,
                sns_core::trace::SpanCtx::root(),
            );
            self.pending.insert(id, (class, at));
            ctx.timer(self.timeout, K_DISPATCH | id);
        }
        ctx.timer(PUMP, 0);
    }

    fn kind(&self) -> &'static str {
        "driver"
    }
}

type LogicFactory = Arc<dyn Fn() -> Box<dyn WorkerLogic> + Send + Sync>;

/// Builder for [`SimCluster`] — the sim-side analogue of configuring
/// an `RtConfig` and calling `add_workers`.
pub struct SimClusterBuilder {
    seed: u64,
    nodes: usize,
    tracing: bool,
    trace_sample_rate: u32,
    sns: SnsConfig,
    classes: Vec<(WorkerClass, u32, LogicFactory)>,
    tenants: Vec<(WorkerClass, &'static str)>,
    tenant_policies: Vec<(&'static str, sns_core::TenantPolicy)>,
}

impl Default for SimClusterBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SimClusterBuilder {
    /// Starts a builder with one worker node and default SNS timing.
    pub fn new() -> Self {
        SimClusterBuilder {
            seed: 0x517e,
            nodes: 1,
            tracing: false,
            trace_sample_rate: 1,
            sns: SnsConfig::default(),
            classes: Vec::new(),
            tenants: Vec::new(),
            tenant_policies: Vec::new(),
        }
    }

    /// Sets the engine RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of worker nodes (pool tag [`POOL`]).
    pub fn with_nodes(mut self, n: usize) -> Self {
        self.nodes = n.max(1);
        self
    }

    /// Enables span tracing.
    pub fn with_tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Sets the head-sampling rate used when tracing (keep ~1 request
    /// in `rate`; the decision stream derives from the builder seed, so
    /// an `RtConfig` with the same seed and rate samples identically).
    pub fn with_trace_sampling(mut self, rate: u32) -> Self {
        self.trace_sample_rate = rate;
        self
    }

    /// Overrides the SNS layer timing/policy config.
    pub fn with_sns(mut self, sns: SnsConfig) -> Self {
        self.sns = sns;
        self
    }

    /// Registers `n` workers of `class` built by `factory` (kept for
    /// restarts and fresh manager incarnations).
    pub fn with_workers(
        mut self,
        class: &str,
        n: u32,
        factory: impl Fn() -> Box<dyn WorkerLogic> + Send + Sync + 'static,
    ) -> Self {
        self.classes
            .push((WorkerClass::new(class), n, Arc::new(factory)));
        self
    }

    /// Assigns `class` to `tenant` for multi-tenant admission
    /// accounting in the driver front end.
    pub fn with_tenant(mut self, class: &str, tenant: &'static str) -> Self {
        self.tenants.push((WorkerClass::new(class), tenant));
        self
    }

    /// Installs `tenant`'s overload policy (outstanding quota + drop
    /// vs. degrade behavior past it) on the driver front end.
    pub fn with_tenant_policy(
        mut self,
        tenant: &'static str,
        policy: sns_core::TenantPolicy,
    ) -> Self {
        self.tenant_policies.push((tenant, policy));
        self
    }

    /// Builds the engine, spawns the manager, monitor tap and driver,
    /// and runs a short warm-up so the first beacon lands before any
    /// trait call.
    pub fn start(self) -> SimCluster {
        let mut sim: SnsSim = SnsSim::new(
            SimConfig {
                seed: self.seed,
                ..SimConfig::default()
            },
            San::new(SanConfig::switched_100mbps()),
        );
        if self.tracing {
            sim.set_tracer(Tracer::sampled(sns_core::trace::Sampling::per(
                self.trace_sample_rate,
                self.seed,
            )));
        }
        let infra = sim.add_node(NodeSpec::new(2, "infra"));
        for _ in 0..self.nodes {
            sim.add_node(NodeSpec::new(8, POOL));
        }
        let beacon = sim.create_group();
        let monitor_group = sim.create_group();
        let (tap, log) = MonitorTap::new(monitor_group);
        sim.spawn(infra, Box::new(tap), "montap");

        let shared = Rc::new(DriverShared::default());
        let mut stub = ManagerStub::new(self.sns.clone());
        for (class, tenant) in &self.tenants {
            stub.set_tenant(class.clone(), tenant);
        }
        for (tenant, policy) in &self.tenant_policies {
            stub.set_tenant_policy(tenant, *policy);
        }
        sim.spawn(
            infra,
            Box::new(Driver {
                beacon,
                stub,
                shared: Rc::clone(&shared),
                pending: BTreeMap::new(),
                timeout: self.sns.dispatch_timeout,
            }),
            "driver",
        );

        let warmup = self.sns.beacon_period + self.sns.beacon_period;
        let cluster = SimCluster {
            sim: RefCell::new(sim),
            shared,
            log,
            sns: self.sns,
            classes: self.classes,
            beacon,
            monitor_group,
            infra,
            incarnation: Cell::new(0),
            settled: Cell::new(0),
            nic_orig: RefCell::new(BTreeMap::new()),
            drained: RefCell::new(std::collections::BTreeSet::new()),
        };
        cluster.spawn_manager();
        // Warm-up: let the bootstrap spawns register and the first
        // beacon populate the driver's hint cache.
        // Warm-up must outlast spawn latency: run until every class's
        // bootstrap population is live and registered (capped), plus
        // one beacon so the driver's hint cache is populated.
        cluster.sleep_until(Duration::from_secs(30), || {
            cluster.classes.iter().all(|(class, n, _)| {
                cluster
                    .sim
                    .borrow()
                    .components_of_kind(intern_class(class.name()))
                    .len()
                    >= *n as usize
            })
        });
        cluster.sleep(warmup);
        cluster
    }
}

/// A simulated SNS cluster behind the [`Cluster`] trait. Single
/// threaded: trait calls mutate engine state synchronously and
/// [`Cluster::settle`] advances virtual time.
pub struct SimCluster {
    sim: RefCell<SnsSim>,
    shared: Rc<DriverShared>,
    log: Rc<RefCell<MonitorLog>>,
    sns: SnsConfig,
    classes: Vec<(WorkerClass, u32, LogicFactory)>,
    beacon: GroupId,
    monitor_group: GroupId,
    infra: sns_sim::NodeId,
    incarnation: Cell<u64>,
    /// Jobs accounted for by previous settles (`answered + failed`
    /// high-water mark).
    settled: Cell<u64>,
    /// Original NIC parameters of slowed nodes, for factor-1.0 restore.
    nic_orig: RefCell<BTreeMap<sns_sim::NodeId, sns_san::LinkParams>>,
    /// Stable indices of pool nodes drained via the trait, so a second
    /// drain (or a rejoin of an undrained node) reports a skip — the
    /// same semantics the rt backend derives from its control plane.
    drained: RefCell<std::collections::BTreeSet<usize>>,
}

impl SimCluster {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.sim.borrow().now()
    }

    /// Runs the engine to `horizon` (test hook — [`Cluster::settle`]
    /// is the trait-level way to advance time).
    pub fn run_until(&self, horizon: SimTime) {
        self.sim.borrow_mut().run_until(horizon);
    }

    /// Virtual sleep: advances the engine by `d` in one shot.
    fn sleep(&self, d: Duration) {
        let horizon = self.now() + d;
        self.sim.borrow_mut().run_until(horizon);
    }

    /// Sleep-based settle: sleeps in [`PUMP`] slices until `done()`
    /// reports true or `budget` elapses. The fault verbs' shared
    /// wait-for-condition primitive — replaces the hand-rolled
    /// `while now < cap { run_until(now + PUMP) }` tick loops.
    fn sleep_until(&self, budget: Duration, mut done: impl FnMut() -> bool) {
        let horizon = self.now() + budget;
        loop {
            let now = self.now();
            if now >= horizon || done() {
                break;
            }
            let step = (horizon - now).min(PUMP);
            self.sim.borrow_mut().run_until(now + step);
        }
    }

    /// Dispatch-to-reply latencies of every answered `class` job, in
    /// resolution order — the victim-tenant series for
    /// [`crate::invariant::check_tenant_isolation`].
    pub fn latencies_of(&self, class: &str) -> Vec<Duration> {
        self.shared
            .latencies
            .borrow()
            .get(&WorkerClass::new(class))
            .cloned()
            .unwrap_or_default()
    }

    /// The `which`-th pool node in stable creation order, required to
    /// be in `want_alive` state (the anti-wrap rule: wrong state is a
    /// skip, never a re-aim).
    fn pool_node(&self, which: usize, want_alive: bool) -> Option<sns_sim::NodeId> {
        self.sim
            .borrow()
            .nodes_with_tag_all(POOL)
            .get(which)
            .filter(|&&(_, alive)| alive == want_alive)
            .map(|&(n, _)| n)
    }

    /// Sends an operator message to the live manager, if any.
    fn tell_manager(&self, msg: SnsMsg) -> bool {
        let mut sim = self.sim.borrow_mut();
        match sim.components_of_kind("manager").first() {
            Some(&mgr) => {
                sim.inject(mgr, msg);
                true
            }
            None => false,
        }
    }

    /// Spawns a fresh manager incarnation with the registered classes.
    fn spawn_manager(&self) {
        let inc = self.incarnation.get() + 1;
        self.incarnation.set(inc);
        let mut classes = BTreeMap::new();
        for (class, n, factory) in &self.classes {
            let factory = Arc::clone(factory);
            let beacon_group = self.beacon;
            let monitor_group = self.monitor_group;
            let report_period = self.sns.report_period;
            classes.insert(
                class.clone(),
                WorkerSpec::scaled(
                    *n,
                    Box::new(move || {
                        Box::new(WorkerStub::new(
                            factory(),
                            WorkerStubConfig {
                                beacon_group,
                                monitor_group,
                                report_period,
                                cost_weight_unit: None,
                            },
                        ))
                    }),
                ),
            );
        }
        self.sim.borrow_mut().spawn(
            self.infra,
            Box::new(Manager::new(ManagerConfig {
                sns: self.sns.clone(),
                beacon_group: self.beacon,
                monitor_group: self.monitor_group,
                incarnation: inc,
                classes,
                fe_factory: None,
            })),
            "manager",
        );
    }
}

impl Cluster for SimCluster {
    fn backend(&self) -> &'static str {
        "sim"
    }

    fn submit(&self, class: &str, op: &str, input: Payload) {
        self.shared
            .queue
            .borrow_mut()
            .push_back((WorkerClass::new(class), op.to_string(), input));
    }

    fn settle(&self, budget: Duration) -> SettleStats {
        let base_answered = self.shared.answered.get();
        let base_failed = self.shared.failed.get();
        let pending = (base_answered + base_failed - self.settled.get())
            + self.shared.queue.borrow().len() as u64;
        self.sleep_until(budget, || {
            let resolved =
                self.shared.answered.get() + self.shared.failed.get() - self.settled.get();
            pending > 0 && resolved >= pending
        });
        let answered = self.shared.answered.get() - base_answered;
        let failed = self.shared.failed.get() - base_failed;
        let stats = SettleStats {
            answered,
            // Jobs that never resolved inside the budget count as
            // failed, like an rt receive timing out.
            failed: failed + pending.saturating_sub(answered + failed),
        };
        self.settled.set(self.settled.get() + pending);
        stats
    }

    fn workers_of(&self, class: &str) -> usize {
        self.sim
            .borrow()
            .components_of_kind(intern_class(class))
            .len()
    }

    fn crash_worker(&self, class: &str) -> bool {
        let mut sim = self.sim.borrow_mut();
        let victims = sim.components_of_kind(intern_class(class));
        match victims.first() {
            Some(&victim) => {
                sim.kill_component(victim);
                true
            }
            None => false,
        }
    }

    fn kill_manager(&self) {
        let mut sim = self.sim.borrow_mut();
        let managers = sim.components_of_kind("manager");
        for m in managers {
            sim.kill_component(m);
        }
    }

    fn restart_manager(&self) {
        if !self.sim.borrow().components_of_kind("manager").is_empty() {
            return; // one incarnation at a time, like the rt slot
        }
        self.spawn_manager();
    }

    fn kill_node(&self, which: usize) -> Option<u64> {
        let node = self.pool_node(which, true)?;
        let mut sim = self.sim.borrow_mut();
        let died = sim.components_on_node(node).len() as u64;
        sim.kill_node(node);
        Some(died)
    }

    fn revive_node(&self, which: usize) -> bool {
        let Some(node) = self.pool_node(which, false) else {
            return false;
        };
        self.sim.borrow_mut().revive_node(node);
        true
    }

    fn set_node_slowdown(&self, which: usize, factor: f64) -> bool {
        let Some(node) = self.pool_node(which, true) else {
            return false;
        };
        let mut sim = self.sim.borrow_mut();
        let mut orig = self.nic_orig.borrow_mut();
        if factor <= 1.0 {
            if let Some(params) = orig.remove(&node) {
                sim.net_mut().set_nic(node, params);
            }
            return true;
        }
        let base = orig
            .entry(node)
            .or_insert_with(|| sim.net().nic_params(node))
            .clone();
        let mut slow = base.clone();
        slow.bandwidth_bps = (base.bandwidth_bps / factor).max(1.0);
        sim.net_mut().set_nic(node, slow);
        true
    }

    fn drain_node(&self, which: usize) -> bool {
        if self.drained.borrow().contains(&which) {
            return false;
        }
        let Some(node) = self.pool_node(which, true) else {
            return false;
        };
        if !self.tell_manager(SnsMsg::DrainNode { node }) {
            return false;
        }
        self.drained.borrow_mut().insert(which);
        true
    }

    fn rejoin_node(&self, which: usize, upgraded: bool) -> bool {
        if !self.drained.borrow().contains(&which) {
            return false;
        }
        let Some(node) = self.pool_node(which, true) else {
            return false;
        };
        let msg = if upgraded {
            SnsMsg::UpgradeNode { node }
        } else {
            SnsMsg::UndrainNode { node }
        };
        if !self.tell_manager(msg) {
            return false;
        }
        self.drained.borrow_mut().remove(&which);
        true
    }

    fn set_beacon_blackout(&self, on: bool) {
        self.sim.borrow_mut().net_mut().set_datagram_blackout(on);
    }

    fn monitor_log(&self) -> MonitorLog {
        self.log.borrow().clone()
    }

    fn counter(&self, key: MetricKey) -> u64 {
        self.sim.borrow().stats().counter(key.as_str())
    }

    fn trace_snapshot(&self) -> Option<TraceLog> {
        self.sim.borrow().tracer().snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sns_core::msg::Job;
    use sns_core::worker::WorkerError;
    use sns_core::Blob;
    use sns_sim::rng::Pcg32;

    struct Echo;

    impl WorkerLogic for Echo {
        fn class(&self) -> WorkerClass {
            "echo".into()
        }
        fn service_time(&mut self, _j: &Job, _n: SimTime, _r: &mut Pcg32) -> Duration {
            Duration::from_millis(20)
        }
        fn process(
            &mut self,
            job: &Job,
            _n: SimTime,
            _r: &mut Pcg32,
        ) -> Result<Payload, WorkerError> {
            Ok(Blob::payload(job.input.wire_size() / 2, "echoed"))
        }
    }

    #[test]
    fn sim_cluster_answers_submits_through_the_trait() {
        let c = SimClusterBuilder::new()
            .with_workers("echo", 3, || Box::new(Echo))
            .start();
        let h: &dyn Cluster = &c;
        assert_eq!(h.backend(), "sim");
        assert_eq!(h.workers_of("echo"), 3);
        for _ in 0..6 {
            h.submit("echo", "echo", Blob::payload(256, "probe"));
        }
        let s = h.settle(Duration::from_secs(20));
        assert_eq!(s.answered, 6, "all jobs answered: {s:?}");
        assert_eq!(s.failed, 0);
        assert!(h.counter(MetricKey::new("manager.load_reports")) >= 1);
    }

    #[test]
    fn sim_cluster_recovers_from_injected_faults() {
        let c = SimClusterBuilder::new()
            .with_workers("echo", 3, || Box::new(Echo))
            .start();
        let h: &dyn Cluster = &c;
        assert!(h.crash_worker("echo"));
        let _ = h.settle(Duration::from_secs(30));
        assert_eq!(h.workers_of("echo"), 3, "process peer restored");
        // Manager failover: new incarnation rebuilds its soft state.
        h.kill_manager();
        let _ = h.settle(Duration::from_secs(5));
        h.restart_manager();
        let _ = h.settle(Duration::from_secs(30));
        h.submit("echo", "echo", Blob::payload(64, "x"));
        let s = h.settle(Duration::from_secs(20));
        assert_eq!(s.answered, 1, "cluster serves after failover: {s:?}");
        let log = h.monitor_log();
        // kill_component is a hard process death: the manager observes
        // it and process-peer-restarts ("crashed" is the stub-survives
        // path for logic crashes, which this is not).
        assert!(log.count("peer_restarted") >= 1);
        assert!(log.count("spawned") >= 4);
    }
}
