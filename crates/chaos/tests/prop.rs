//! Seeded property suite: random recoverable [`FaultPlan`]s against a
//! small simulated TranSend cluster must satisfy the no-lost-jobs and
//! drain-bound invariants; and an intentionally broken invariant must
//! shrink to a minimal (single-event) counterexample plan.

use std::time::Duration;

use sns_chaos::{fault_plan, FaultPlan, PlanSpace, SimChaos, SimChaosConfig, SpawnBudget};
use sns_core::{MonitorTap, TapHandle};
use sns_sim::SimTime;
use sns_testkit::{check_config, Config};
use sns_transend::{TranSendBuilder, TranSendCluster};
use sns_workload::playback::{Playback, Schedule};
use sns_workload::trace::{TraceGenerator, WorkloadConfig};

/// Environment-driven config, but with cheaper defaults than the
/// testkit's 64 cases: every case here is a whole cluster run.
fn cfg(name: &str) -> Config {
    let mut c = Config::from_env(name);
    if std::env::var("SNS_TESTKIT_CASES").is_err() {
        c.cases = 10;
    }
    if std::env::var("SNS_TESTKIT_SHRINK").is_err() {
        c.shrink_budget = 96;
    }
    c
}

/// Boot spawns of [`tiny_cluster`]: 1 cache + 1 profile DB + 1 gif
/// distiller. A deterministic function of the topology, which is what
/// makes spawn budgets usable as invariants.
const BOOT_SPAWNS: usize = 3;

fn tiny_cluster(seed: u64) -> (TranSendCluster, TapHandle) {
    let mut cluster = TranSendBuilder::new()
        .with_seed(seed)
        .with_worker_nodes(3)
        .with_overflow_nodes(1)
        .with_frontends(1)
        .with_cache_partitions(1)
        .with_min_distillers(1)
        .with_distillers(["gif"])
        .with_origin_penalty_scale(0.1)
        .build();
    let node = cluster.sim.nodes_with_tag("infra")[0];
    let (tap, log) = MonitorTap::new(cluster.monitor_group);
    cluster.sim.spawn(node, Box::new(tap), "montap");
    (cluster, log)
}

fn load(seed: u64) -> Vec<(Duration, sns_workload::TraceRecord)> {
    let mut gen = TraceGenerator::new(WorkloadConfig {
        seed,
        users: 20,
        shared_objects: 60,
        private_per_user: 5,
        ..Default::default()
    });
    // Low rate over a long window so requests are in flight across the
    // whole 15–45 s fault window.
    let t = gen.constant_rate(2.0, Duration::from_secs(50));
    Playback::new(&t, Schedule::Timestamps)
        .map(|(at, r)| (at, r.clone()))
        .collect()
}

#[test]
fn random_recoverable_plans_lose_no_jobs_and_drain() {
    let space = PlanSpace::full(&["cache", "distiller/gif"], &["dedicated", "overflow"]);
    check_config(
        "chaos.no_lost_jobs",
        &cfg("chaos.no_lost_jobs"),
        (fault_plan(&space),),
        |(plan,)| {
            let (mut cluster, _log) = tiny_cluster(0xBEEF);
            let reqs = load(0x10AD);
            let n = reqs.len() as u64;
            let report = cluster.attach_client(reqs, Duration::from_secs(4));
            let chaos = SimChaos::install(&mut cluster.sim, &plan, SimChaosConfig::default());

            // Drain bound: everything must be answered by the horizon.
            let horizon = plan
                .horizon(Duration::from_secs(60))
                .max(Duration::from_secs(120));
            cluster.sim.run_until(SimTime::ZERO + horizon);

            let r = report.borrow();
            if r.responses != n || r.errors != 0 {
                return Err(format!(
                    "lost jobs under plan ({} applied): {} of {n} answered, {} errors\n{plan}",
                    chaos.applied_count(),
                    r.responses,
                    r.errors
                )
                .into());
            }
            drop(r);
            // Population restored: the pinned cache partition and exactly
            // one manager incarnation survive every recoverable plan.
            let caches = cluster
                .sim
                .components_of_kind(sns_core::intern_class("cache"))
                .len();
            if caches != 1 {
                return Err(format!("{caches} cache partitions after recovery\n{plan}").into());
            }
            let managers = cluster.sim.components_of_kind("manager").len();
            if managers != 1 {
                return Err(format!("{managers} managers after recovery\n{plan}").into());
            }
            Ok(())
        },
    );
}

/// Runs a plan against an idle tiny cluster and replays the monitor log
/// through a spawn budget fixed at the boot-spawn count — an invariant
/// that is *intentionally broken* by any successful kill (the respawn
/// exceeds the budget). Used to demonstrate shrinking.
fn spawn_budget_verdict(plan: &FaultPlan) -> Result<(), String> {
    let (mut cluster, log) = tiny_cluster(0x5EED);
    SimChaos::install(&mut cluster.sim, plan, SimChaosConfig::default());
    cluster.sim.run_until(
        SimTime::ZERO
            + plan
                .horizon(Duration::from_secs(30))
                .max(Duration::from_secs(60)),
    );
    let verdict = log.borrow().check(&mut SpawnBudget::new(BOOT_SPAWNS));
    verdict
}

#[test]
fn broken_invariant_shrinks_to_a_minimal_plan() {
    // Under a kills-only space, ANY plan with at least one kill violates
    // the boot-only spawn budget, so the shrinker must be able to walk
    // every failing plan down to a single kill event.
    let space = PlanSpace::kills_only(&["cache"]);
    let result = std::panic::catch_unwind(|| {
        check_config(
            "chaos.spawn_budget_shrinks",
            &Config {
                cases: 20,
                seed: 0xC4A0,
                shrink_budget: 768,
            },
            (fault_plan(&space),),
            |(plan,)| spawn_budget_verdict(&plan).map_err(Into::into),
        );
    });
    let msg = *result
        .expect_err("the broken invariant must produce a counterexample")
        .downcast::<String>()
        .expect("string panic");
    assert!(
        msg.contains("property 'chaos.spawn_budget_shrinks' failed"),
        "{msg}"
    );
    assert!(msg.contains("chaos.spawn_budget"), "{msg}");
    // The shrunk witness is minimal: exactly one event survives.
    let events = msg.matches("FaultEvent {").count();
    assert_eq!(events, 1, "shrinker left {events} events:\n{msg}");
    assert!(msg.contains("KillWorker"), "{msg}");
}

#[test]
fn quorum_safety_violation_shrinks_to_kill_plus_restart() {
    // Under the legacy single-rival rule a revived ex-leader resumes
    // acting as manager while its successor still leads, so any regroup
    // plan containing a leader kill followed (past the vote timeout) by
    // a manager restart violates QuorumSafety. The shrinker must walk
    // every failing plan down to that minimal two-event witness.
    let space = PlanSpace::regroup(3);
    let result = std::panic::catch_unwind(|| {
        check_config(
            "chaos.quorum_safety_shrinks",
            &Config {
                cases: 60,
                seed: 0x0B5E,
                shrink_budget: 768,
            },
            (fault_plan(&space),),
            |(plan,)| {
                let out = sns_chaos::run_regroup(3, &plan, sns_chaos::RegroupMode::Legacy);
                sns_chaos::check_quorum_safety(&out.log).map_err(Into::into)
            },
        );
    });
    let msg = *result
        .expect_err("the legacy rule must produce a split-brain counterexample")
        .downcast::<String>()
        .expect("string panic");
    assert!(msg.contains("chaos.quorum_safety"), "{msg}");
    // The shrunk witness is minimal: kill the leader, then restart it.
    let events = msg.matches("FaultEvent {").count();
    assert_eq!(events, 2, "shrinker left {events} events:\n{msg}");
    assert!(msg.contains("KillManagerReplica"), "{msg}");
    assert!(msg.contains("RestartManager"), "{msg}");
}

#[test]
#[should_panic(expected = "chaos.spawn_budget")]
fn spawn_budget_violation_panics_with_invariant_name() {
    // The acceptance-criterion demo: a fixed single-kill plan against the
    // boot-only spawn budget must fail with the invariant's name.
    let plan = FaultPlan::new().with(
        Duration::from_secs(20),
        sns_chaos::FaultKind::KillWorker {
            class: "cache".into(),
            which: 0,
        },
    );
    spawn_budget_verdict(&plan).unwrap();
}

#[test]
fn empty_plan_keeps_the_boot_spawn_budget() {
    // Control for the two tests above: with no faults the budget holds,
    // so the shrinker's minimal counterexample genuinely needs its event.
    spawn_budget_verdict(&FaultPlan::new()).unwrap();
}
