//! Wall-clock chaos: the same [`FaultPlan`] artifact the sim tests use,
//! compiled against the threaded `sns-rt` backend. The conservation law
//! under crashes is exact because rt crashes happen *between* jobs and
//! dead queues are salvaged onto replacements: every accepted job is
//! eventually completed, so `salvaged + completed-direct == submitted`.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sns_chaos::{rt::run_plan, FaultKind, FaultPlan};
use sns_core::msg::JobResult;
use sns_core::worker::WorkerLogic;
use sns_core::{Blob, Job, Payload, WorkerClass, WorkerError};
use sns_rt::{RtCluster, RtConfig};
use sns_sim::rng::Pcg32;
use sns_sim::SimTime;

const SCALE: f64 = 0.05;

struct Slow;

impl WorkerLogic for Slow {
    fn class(&self) -> WorkerClass {
        "slow".into()
    }
    fn service_time(&mut self, _j: &Job, _n: SimTime, _r: &mut Pcg32) -> Duration {
        Duration::from_millis(50)
    }
    fn process(&mut self, job: &Job, _n: SimTime, _r: &mut Pcg32) -> Result<Payload, WorkerError> {
        let blob = sns_core::payload_as::<Blob>(&job.input).expect("blob");
        Ok(Blob::payload(blob.len, "done"))
    }
}

fn cluster() -> Arc<RtCluster> {
    let c = RtCluster::start(
        RtConfig::new()
            .with_time_scale(SCALE)
            .with_report_period(Duration::from_millis(10))
            .with_beacon_period(Duration::from_millis(20)),
    );
    c.add_workers("slow", 3, || Box::new(Slow));
    c
}

fn await_population(c: &RtCluster, n: usize, restarts: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if c.workers_of("slow") == n && c.restarts.load(Ordering::Relaxed) >= restarts {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!(
        "population not restored: {} workers, {} restarts",
        c.workers_of("slow"),
        c.restarts.load(Ordering::Relaxed)
    );
}

#[test]
fn three_crashes_under_load_conserve_every_job() {
    let c = cluster();
    // Three crashes spread across the load phase (modelled seconds;
    // the injector scales them to wall clock like everything else).
    let plan = FaultPlan::new()
        .with(
            Duration::from_secs(2),
            FaultKind::KillWorker {
                class: "slow".into(),
                which: 0,
            },
        )
        .with(
            Duration::from_secs(4),
            FaultKind::KillWorker {
                class: "slow".into(),
                which: 0,
            },
        )
        .with(
            Duration::from_secs(6),
            FaultKind::KillWorker {
                class: "slow".into(),
                which: 0,
            },
        );
    let injector = run_plan(Arc::clone(&c), &plan, SCALE);

    // Deep queues: all jobs are accepted up front, so each crash strands
    // a backlog for the salvage path to move.
    let receivers: Vec<_> = (0..300)
        .map(|i| c.submit("slow", "op", Blob::payload(100 + i, "x"), None))
        .collect();

    let report = injector.join().expect("injector thread");
    assert_eq!(report.crashes_injected, 3, "{report:?}");
    assert!(report.skipped.is_empty(), "{report:?}");

    // Every accepted job must come back Ok — crashed workers' queues
    // start over on their replacements, nothing is dropped.
    for rx in receivers {
        match rx.recv_timeout(Duration::from_secs(30)).expect("reply") {
            JobResult::Ok(_) => {}
            JobResult::Failed(e) => panic!("job failed under chaos: {e}"),
        }
    }

    await_population(&c, 3, 3);
    let submitted = c.submitted.load(Ordering::Relaxed);
    let completed = c.jobs_done.load(Ordering::Relaxed);
    let salvaged = c.redispatched.load(Ordering::Relaxed);
    assert_eq!(submitted, 300);
    // Conservation: salvaged jobs are completed by replacements, direct
    // jobs by their original worker — together they account for every
    // accepted job.
    assert_eq!(
        salvaged + (completed - salvaged),
        submitted,
        "salvaged {salvaged} + direct {} != submitted {submitted}",
        completed - salvaged
    );
    assert_eq!(completed, submitted);
    assert!(
        salvaged >= 1,
        "with deep queues, at least one crash must strand work to salvage"
    );
    assert_eq!(c.crashes.load(Ordering::Relaxed), 3);
    c.shutdown();
}

#[test]
fn manager_failover_during_load_conserves_jobs() {
    // Same plan grammar, different fault: the manager dies mid-load and a
    // new incarnation takes over 3 modelled seconds later. A worker crash
    // in the gap stays dead until failover completes — then the new
    // manager salvages and the conservation law still closes.
    let c = cluster();
    let plan = FaultPlan::new()
        .with(Duration::from_secs(2), FaultKind::KillManager)
        .with(
            Duration::from_millis(2500),
            FaultKind::KillWorker {
                class: "slow".into(),
                which: 0,
            },
        )
        .with(Duration::from_secs(5), FaultKind::RestartManager);
    let injector = run_plan(Arc::clone(&c), &plan, SCALE);

    let receivers: Vec<_> = (0..200)
        .map(|i| c.submit("slow", "op", Blob::payload(50 + i, "x"), None))
        .collect();

    let report = injector.join().expect("injector thread");
    assert_eq!(report.applied.len(), 3, "{report:?}");
    assert_eq!(report.crashes_injected, 1);

    for rx in receivers {
        match rx.recv_timeout(Duration::from_secs(30)).expect("reply") {
            JobResult::Ok(_) => {}
            JobResult::Failed(e) => panic!("job failed across failover: {e}"),
        }
    }
    await_population(&c, 3, 1);
    assert_eq!(
        c.jobs_done.load(Ordering::Relaxed),
        c.submitted.load(Ordering::Relaxed)
    );
    assert_eq!(c.submitted.load(Ordering::Relaxed), 200);
    c.shutdown();
}
