//! Criterion micro-benchmarks of the hot paths under the experiments:
//! the event engine, the SAN model, cache structures, the WAL, the
//! inverted index and the text distillers.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use sns_cache::lru::LruCache;
use sns_cache::ring::HashRing;
use sns_cache::simulator::CacheSim;
use sns_cache::CacheKey;
use sns_distillers::{GifDistiller, HtmlMunger, KeywordFilter};
use sns_profiledb::{MemDevice, ProfileDb, Txn, Wal};
use sns_san::{San, SanConfig};
use sns_search::doc::CorpusGenerator;
use sns_search::index::InvertedIndex;
use sns_sim::engine::{Component, Ctx, NodeSpec, Sim, SimConfig, Wire};
use sns_sim::network::{Delivery, Endpoint, IdealNetwork, Network, TrafficClass};
use sns_sim::rng::Pcg32;
use sns_sim::time::SimTime;
use sns_sim::ComponentId;
use sns_sim::NodeId;
use sns_tacc::content::{synth_html, ContentObject};
use sns_tacc::worker::{TaccArgs, TaccWorker};
use sns_workload::sizes::SizeModel;
use sns_workload::zipf::Zipf;
use sns_workload::MimeType;

fn bench_engine(c: &mut Criterion) {
    #[derive(Clone)]
    struct Ping;
    impl Wire for Ping {
        fn wire_size(&self) -> u64 {
            64
        }
    }
    struct Echo;
    impl Component<Ping> for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Ping>, from: ComponentId, _msg: Ping) {
            if from != ComponentId::EXTERNAL {
                return;
            }
            ctx.send(ctx.me(), Ping); // self-message keeps the queue busy
        }
    }
    c.bench_function("engine_dispatch_10k_events", |b| {
        b.iter_batched(
            || {
                let mut sim: Sim<Ping, IdealNetwork> =
                    Sim::new(SimConfig::default(), IdealNetwork::default());
                let n = sim.add_node(NodeSpec::new(1, "dedicated"));
                let e = sim.spawn(n, Box::new(Echo), "echo");
                for _ in 0..10_000 {
                    sim.inject(e, Ping);
                }
                sim
            },
            |mut sim| {
                sim.run_until(SimTime::from_millis(1));
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_san(c: &mut Criterion) {
    c.bench_function("san_unicast_routing", |b| {
        let mut san = San::new(SanConfig::switched_100mbps());
        for i in 0..8 {
            san.register_node(NodeId(i));
        }
        let mut rng = Pcg32::new(1);
        let mut t = 0u64;
        b.iter(|| {
            t += 1_000_000; // keep moving time forward so queues drain
            let d = san.unicast(
                SimTime::from_nanos(t),
                &mut rng,
                Endpoint {
                    node: NodeId((t % 8) as u32),
                    comp: ComponentId(1),
                },
                Endpoint {
                    node: NodeId(((t + 3) % 8) as u32),
                    comp: ComponentId(2),
                },
                1500,
                TrafficClass::Reliable,
            );
            assert!(matches!(d, Delivery::At(_)));
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("lru_get_hit", |b| {
        let mut cache: LruCache<CacheKey, Vec<u8>> = LruCache::new(1 << 24);
        for i in 0..10_000 {
            cache.put(
                CacheKey::original(format!("http://h/{i}")),
                vec![0u8; 256],
                0,
                None,
            );
        }
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 7) % 10_000;
            let key = CacheKey::original(format!("http://h/{i}"));
            assert!(cache.get(&key, 0).is_some());
        })
    });
    c.bench_function("hash_ring_lookup", |b| {
        let mut ring = HashRing::with_vnodes(64);
        for p in 0..16u32 {
            ring.add(p);
        }
        let mut h = 0u64;
        b.iter(|| {
            h = h.wrapping_add(0x9E3779B97F4A7C15);
            assert!(ring.lookup(h).is_some());
        })
    });
    c.bench_function("cache_sim_access", |b| {
        let mut sim = CacheSim::new(64 << 20);
        let mut rng = Pcg32::new(3);
        b.iter(|| {
            let o = rng.below(50_000);
            sim.access(&format!("u{o}"), 4096);
        })
    });
}

fn bench_wal(c: &mut Criterion) {
    c.bench_function("profiledb_commit", |b| {
        let mut db = ProfileDb::open(Wal::new(MemDevice::new())).unwrap();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            db.commit(Txn::new().put(format!("u{}", i % 500), "quality", "25"))
                .unwrap();
        })
    });
}

fn bench_index(c: &mut Criterion) {
    let mut ix = InvertedIndex::new();
    for d in CorpusGenerator::with_defaults(11).generate(2_000) {
        ix.add(&d);
    }
    c.bench_function("index_query_common_term", |b| {
        b.iter(|| {
            let hits = ix.query("w0 w3", 10);
            assert!(!hits.is_empty());
        })
    });
    c.bench_function("index_query_rare_terms", |b| {
        b.iter(|| {
            let _ = ix.query("w15000 w17890", 10);
        })
    });
}

fn bench_distillers(c: &mut Criterion) {
    let words: Vec<&str> = (0..600)
        .map(|i| ["the", "page", "with", "words"][i % 4])
        .collect();
    let html = synth_html("http://h/page", 8, &words);
    let input = ContentObject::text("http://h/page", MimeType::Html, html);
    c.bench_function("html_munger_transform", |b| {
        let mut m = HtmlMunger::new();
        let args = TaccArgs::default();
        let mut rng = Pcg32::new(4);
        b.iter(|| {
            let out = m.transform(&input, &args, &mut rng).unwrap();
            assert!(!out.is_empty());
        })
    });
    c.bench_function("keyword_filter_transform", |b| {
        let mut f = KeywordFilter::new();
        let args = TaccArgs::from_map(
            [("keywords".to_string(), "page, words".to_string())]
                .into_iter()
                .collect(),
        );
        let mut rng = Pcg32::new(5);
        b.iter(|| {
            let out = f.transform(&input, &args, &mut rng).unwrap();
            assert!(!out.is_empty());
        })
    });
    c.bench_function("gif_distiller_transform", |b| {
        let mut d = GifDistiller::new();
        let args = TaccArgs::default();
        let mut rng = Pcg32::new(6);
        let img = ContentObject::synthetic("u", MimeType::Gif, 10_240);
        b.iter(|| {
            let out = d.transform(&img, &args, &mut rng).unwrap();
            assert!(out.len() < img.len());
        })
    });
}

fn bench_workload(c: &mut Criterion) {
    c.bench_function("size_model_sample", |b| {
        let model = SizeModel::default();
        let mut rng = Pcg32::new(7);
        b.iter(|| model.sample(MimeType::Gif, &mut rng))
    });
    c.bench_function("zipf_sample_40k", |b| {
        let z = Zipf::new(40_000, 0.85);
        let mut rng = Pcg32::new(8);
        b.iter(|| z.sample(&mut rng))
    });
}

fn quick() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_millis(900))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_engine, bench_san, bench_cache, bench_wal, bench_index,
              bench_distillers, bench_workload
}
criterion_main!(benches);
