//! Micro-benchmarks of the hot paths under the experiments: the event
//! engine, the SAN model, cache structures, the WAL, the inverted index
//! and the text distillers. Runs on the in-repo `sns-testkit` harness
//! (no criterion) and records rows into `BENCH_micro.json`:
//!
//! ```sh
//! cargo run -p sns-bench --release --bin micro [-- OUTPUT.json]
//! ```

use sns_testkit::BenchSuite;

use sns_cache::lru::LruCache;
use sns_cache::ring::HashRing;
use sns_cache::simulator::CacheSim;
use sns_cache::CacheKey;
use sns_distillers::{GifDistiller, HtmlMunger, KeywordFilter};
use sns_profiledb::{MemDevice, ProfileDb, Txn, Wal};
use sns_san::{San, SanConfig};
use sns_search::doc::CorpusGenerator;
use sns_search::index::InvertedIndex;
use sns_sim::engine::{Component, Ctx, NodeSpec, Sim, SimConfig, Wire};
use sns_sim::network::{Delivery, Endpoint, IdealNetwork, Network, TrafficClass};
use sns_sim::rng::Pcg32;
use sns_sim::time::SimTime;
use sns_sim::ComponentId;
use sns_sim::NodeId;
use sns_tacc::content::{synth_html, ContentObject};
use sns_tacc::worker::{TaccArgs, TaccWorker};
use sns_workload::sizes::SizeModel;
use sns_workload::zipf::Zipf;
use sns_workload::MimeType;

fn bench_engine(suite: &mut BenchSuite) {
    #[derive(Clone)]
    struct Ping;
    impl Wire for Ping {
        fn wire_size(&self) -> u64 {
            64
        }
    }
    struct Echo;
    impl Component<Ping> for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Ping>, from: ComponentId, _msg: Ping) {
            if from != ComponentId::EXTERNAL {
                return;
            }
            ctx.send(ctx.me(), Ping); // self-message keeps the queue busy
        }
    }
    suite.bench_batched(
        "engine_dispatch_10k_events",
        || {
            let mut sim: Sim<Ping, IdealNetwork> =
                Sim::new(SimConfig::default(), IdealNetwork::default());
            let n = sim.add_node(NodeSpec::new(1, "dedicated"));
            let e = sim.spawn(n, Box::new(Echo), "echo");
            for _ in 0..10_000 {
                sim.inject(e, Ping);
            }
            sim
        },
        |mut sim| {
            sim.run_until(SimTime::from_millis(1));
        },
    );
}

fn bench_san(suite: &mut BenchSuite) {
    let mut san = San::new(SanConfig::switched_100mbps());
    for i in 0..8 {
        san.register_node(NodeId(i));
    }
    let mut rng = Pcg32::new(1);
    let mut t = 0u64;
    suite.bench("san_unicast_routing", move || {
        t += 1_000_000; // keep moving time forward so queues drain
        let d = san.unicast(
            SimTime::from_nanos(t),
            &mut rng,
            Endpoint {
                node: NodeId((t % 8) as u32),
                comp: ComponentId(1),
            },
            Endpoint {
                node: NodeId(((t + 3) % 8) as u32),
                comp: ComponentId(2),
            },
            1500,
            TrafficClass::Reliable,
        );
        assert!(matches!(d, Delivery::At(_)));
    });
}

fn bench_cache(suite: &mut BenchSuite) {
    let mut cache: LruCache<CacheKey, Vec<u8>> = LruCache::new(1 << 24);
    for i in 0..10_000 {
        cache.put(
            CacheKey::original(format!("http://h/{i}")),
            vec![0u8; 256],
            0,
            None,
        );
    }
    let mut i = 0u64;
    suite.bench("lru_get_hit", move || {
        i = (i + 7) % 10_000;
        let key = CacheKey::original(format!("http://h/{i}"));
        assert!(cache.get(&key, 0).is_some());
    });

    let mut ring = HashRing::with_vnodes(64);
    for p in 0..16u32 {
        ring.add(p);
    }
    let mut h = 0u64;
    suite.bench("hash_ring_lookup", move || {
        h = h.wrapping_add(0x9E3779B97F4A7C15);
        assert!(ring.lookup(h).is_some());
    });

    let mut sim = CacheSim::new(64 << 20);
    let mut rng = Pcg32::new(3);
    suite.bench("cache_sim_access", move || {
        let o = rng.below(50_000);
        sim.access(&format!("u{o}"), 4096);
    });
}

fn bench_wal(suite: &mut BenchSuite) {
    let mut db = ProfileDb::open(Wal::new(MemDevice::new())).unwrap();
    let mut i = 0u64;
    suite.bench("profiledb_commit", move || {
        i += 1;
        db.commit(Txn::new().put(format!("u{}", i % 500), "quality", "25"))
            .unwrap();
    });
}

fn bench_index(suite: &mut BenchSuite) {
    let mut ix = InvertedIndex::new();
    for d in CorpusGenerator::with_defaults(11).generate(2_000) {
        ix.add(&d);
    }
    let ix = std::rc::Rc::new(ix);
    let common = std::rc::Rc::clone(&ix);
    suite.bench("index_query_common_term", move || {
        let hits = common.query("w0 w3", 10);
        assert!(!hits.is_empty());
    });
    suite.bench("index_query_rare_terms", move || {
        let _ = ix.query("w15000 w17890", 10);
    });
}

fn bench_distillers(suite: &mut BenchSuite) {
    let words: Vec<&str> = (0..600)
        .map(|i| ["the", "page", "with", "words"][i % 4])
        .collect();
    let html = synth_html("http://h/page", 8, &words);
    let input = ContentObject::text("http://h/page", MimeType::Html, html);

    let mut m = HtmlMunger::new();
    let margs = TaccArgs::default();
    let mut mrng = Pcg32::new(4);
    let minput = input.clone();
    suite.bench("html_munger_transform", move || {
        let out = m.transform(&minput, &margs, &mut mrng).unwrap();
        assert!(!out.is_empty());
    });

    let mut f = KeywordFilter::new();
    let fargs = TaccArgs::from_map(
        [("keywords".to_string(), "page, words".to_string())]
            .into_iter()
            .collect(),
    );
    let mut frng = Pcg32::new(5);
    suite.bench("keyword_filter_transform", move || {
        let out = f.transform(&input, &fargs, &mut frng).unwrap();
        assert!(!out.is_empty());
    });

    let mut d = GifDistiller::new();
    let dargs = TaccArgs::default();
    let mut drng = Pcg32::new(6);
    let img = ContentObject::synthetic("u", MimeType::Gif, 10_240);
    suite.bench("gif_distiller_transform", move || {
        let out = d.transform(&img, &dargs, &mut drng).unwrap();
        assert!(out.len() < img.len());
    });
}

fn bench_workload(suite: &mut BenchSuite) {
    let model = SizeModel::default();
    let mut rng = Pcg32::new(7);
    suite.bench("size_model_sample", move || {
        model.sample(MimeType::Gif, &mut rng)
    });

    let z = Zipf::new(40_000, 0.85);
    let mut zrng = Pcg32::new(8);
    suite.bench("zipf_sample_40k", move || z.sample(&mut zrng));
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_micro.json".to_string());
    let mut suite = BenchSuite::new("micro");
    bench_engine(&mut suite);
    bench_san(&mut suite);
    bench_cache(&mut suite);
    bench_wal(&mut suite);
    bench_index(&mut suite);
    bench_distillers(&mut suite);
    bench_workload(&mut suite);
    suite.write_json(&out).expect("write bench rows");
    println!("wrote {} rows to {out}", suite.rows().len());
}
