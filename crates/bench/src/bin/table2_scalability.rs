//! Table 2: the scalability experiment.
//!
//! Paper procedure (§4.6): begin with one front end and one distiller;
//! raise the offered load until some component saturates; add resources
//! (the manager auto-spawns distillers; the operator adds front ends);
//! repeat. The workload is a fixed set of ~10 KB JPEG images that stay
//! cache-resident, with caching of *distilled* variants disabled so every
//! request is re-distilled.
//!
//! Paper results: a distiller handles ~23 req/s; a front end's 100 Mb/s
//! segment handles ~70-87 req/s (TCP overhead-bound); growth is linear to
//! 159 req/s (3 FEs, 7 distillers) where the authors ran out of nodes.

use std::time::Duration;

use sns_bench::{banner, compare, ramp_workload, warmup_workload};
use sns_core::SnsConfig;
use sns_san::LinkParams;
use sns_sim::time::SimTime;
use sns_transend::{TranSendBuilder, TranSendConfig};

struct RunResult {
    completed: f64,
    p95_latency: f64,
    distillers: usize,
    fe_backlog_p95_ms: f64,
}

/// One measurement run: warm the fixed working set, ramp to `rate` and
/// hold for two minutes against `fes` front ends.
fn run(rate: f64, fes: usize) -> RunResult {
    let n_objects = 40;
    let mut cluster = TranSendBuilder::new()
        .with_seed(0x7ab1e2)
        .with_worker_nodes(16)
        .with_overflow_nodes(4)
        .with_cores_per_node(2)
        .with_frontends(fes)
        .with_cache_partitions(4)
        .with_min_distillers(1)
        .with_distillers(["jpeg"])
        .with_origin_penalty_scale(0.05)
        .with_fe_nic(LinkParams::mbps(100.0).with_overhead(Duration::from_micros(3000)))
        .with_ts(TranSendConfig {
            cache_distilled: false, // force re-distillation (§4.6)
            ..Default::default()
        })
        .with_sns(SnsConfig {
            spawn_threshold_h: 8.0,
            spawn_cooldown_d: Duration::from_secs(5),
            reap_threshold: 0.8,
            reap_idle_for: Duration::from_secs(10),
            ..Default::default()
        })
        .build();

    // Warm-up pass (loads originals into the cache partitions), then a
    // half-rate ramp, then the full-rate plateau.
    let mut items = warmup_workload(n_objects, 10 * 1024, Duration::from_millis(50));
    let warm_end = 5.0;
    let mut load = ramp_workload(
        &[(warm_end + 30.0, rate / 2.0), (warm_end + 150.0, rate)],
        n_objects,
        10 * 1024,
        99,
    );
    load.retain(|(at, _)| at.as_secs_f64() > warm_end);
    let offered = load.len() as u64 + n_objects as u64;
    items.extend(load);
    let report = cluster.attach_client(items, Duration::from_secs(3));

    // Sample front-end egress backlog *during* the plateau (it drains as
    // soon as the load stops, so end-of-run readings are useless).
    let fe_nodes = cluster.fe_nodes.clone();
    for s in (40..=155).step_by(3) {
        let nodes = fe_nodes.clone();
        cluster.sim.at(SimTime::from_secs(3 + s), move |sim| {
            let now = sim.now();
            let worst = nodes
                .iter()
                .map(|&n| sim.net().egress_backlog(n, now).as_secs_f64() * 1e3)
                .fold(0.0, f64::max);
            sim.stats_mut().observe("fe.backlog_ms", worst);
        });
    }

    let horizon = 3.0 + warm_end + 150.0 + 20.0;
    cluster.sim.run_until(SimTime::from_secs(horizon as u64));

    let fe_backlog_p95_ms = cluster
        .sim
        .stats_mut()
        .summary_mut("fe.backlog_ms")
        .map(|s| s.quantile(0.95))
        .unwrap_or(0.0);
    let mut r = report.borrow_mut();
    RunResult {
        completed: r.responses as f64 / offered as f64,
        p95_latency: r.latency.quantile(0.95),
        distillers: cluster.distillers_of("distiller/jpeg").len(),
        fe_backlog_p95_ms,
    }
}

fn main() {
    banner(
        "Table 2 — results of the scalability experiment",
        "Fox et al., SOSP '97, §4.6 Table 2",
    );
    println!(
        "\n{:>8} {:>5} {:>11} {:>9} {:>12} {:>14}   element that saturated",
        "req/s", "#FE", "#distillers", "p95 (s)", "completed", "FE backlog p95"
    );

    let mut fes = 1usize;
    let mut prev_distillers = 1usize;
    let mut rows: Vec<(f64, usize, usize)> = Vec::new();
    for step in 1..=16 {
        let rate = step as f64 * 10.0;
        let mut result = run(rate, fes);
        let mut saturated_element = String::from("-");
        // The operator's move: when the run degrades because the front
        // end's egress segment is backlogged, add a front end and re-run
        // (the manager already scales distillers automatically).
        let mut guard = 0;
        while (result.completed < 0.985
            || result.p95_latency > 2.5
            || result.fe_backlog_p95_ms > 30.0)
            && guard < 3
        {
            if result.fe_backlog_p95_ms > 30.0 {
                fes += 1;
                saturated_element = "FE Ethernet".into();
            } else {
                saturated_element = "distillers".into();
            }
            result = run(rate, fes);
            guard += 1;
        }
        if saturated_element == "-" && result.distillers > prev_distillers {
            saturated_element = "distillers".into();
        }
        println!(
            "{rate:>8.0} {fes:>5} {:>11} {:>9.2} {:>11.1}% {:>12.1}ms   {saturated_element}",
            result.distillers,
            result.p95_latency,
            result.completed * 100.0,
            result.fe_backlog_p95_ms,
        );
        prev_distillers = result.distillers;
        rows.push((rate, fes, result.distillers));
    }

    println!();
    let (r_last, fe_last, d_last) = *rows.last().expect("rows");
    compare(
        "max offered load sustained (req/s)",
        "159",
        &format!("{r_last:.0}"),
    );
    compare("front ends at max load", "3", &format!("{fe_last}"));
    compare("distillers at max load", "7", &format!("{d_last}"));
    compare(
        "throughput per distiller (req/s)",
        "~23",
        &format!("{:.1}", r_last / d_last as f64),
    );
    compare(
        "throughput per FE segment (req/s)",
        "~70",
        &format!("{:.1}", r_last / fe_last as f64),
    );
    println!(
        "\nShape check: distiller count grows ~linearly with load (one per ~23 req/s);\n\
         front ends are added near multiples of ~70-90 req/s; growth stays linear to\n\
         the end of the sweep — the SAN interior never saturates (§4.6)."
    );
}
