//! Figure 7: average distillation latency vs GIF input size.
//!
//! Paper: "approximately linear relationship between distillation time
//! and input size, although a large variation in distillation time is
//! observed for any particular data size. The slope … is approximately
//! 8 milliseconds per kilobyte of input", measured across ~100,000 trace
//! items.

use sns_bench::{banner, compare, fit_linear, sparkline};
use sns_distillers::GifDistiller;
use sns_sim::rng::Pcg32;
use sns_tacc::content::ContentObject;
use sns_tacc::worker::{TaccArgs, TaccWorker};
use sns_workload::sizes::SizeModel;
use sns_workload::MimeType;

fn main() {
    banner(
        "Figure 7 — average distillation latency vs GIF size",
        "Fox et al., SOSP '97, §4.3 Figure 7",
    );
    let model = SizeModel::default();
    let distiller = GifDistiller::new();
    let args = TaccArgs::default();
    let mut rng = Pcg32::new(7);
    let n = 100_000;

    // Bin by input size: 30 bins over 0..30 KB like the figure's x-axis.
    const BINS: usize = 30;
    let mut sums = vec![0.0f64; BINS];
    let mut counts = vec![0u64; BINS];
    let mut cv_accum: Vec<Vec<f64>> = vec![Vec::new(); BINS];
    for _ in 0..n {
        let size = model.sample(MimeType::Gif, &mut rng);
        if size >= 30_000 {
            continue;
        }
        let obj = ContentObject::synthetic("u", MimeType::Gif, size);
        let latency = distiller.cost(&obj, &args, &mut rng).as_secs_f64();
        let b = (size as usize * BINS) / 30_000;
        sums[b] += latency;
        counts[b] += 1;
        if cv_accum[b].len() < 4000 {
            cv_accum[b].push(latency);
        }
    }

    let mut points = Vec::new();
    println!("\n  GIF size (KB)   avg latency (s)   samples");
    for b in 0..BINS {
        if counts[b] < 50 {
            continue;
        }
        let kb = (b as f64 + 0.5) * 30.0 / BINS as f64;
        let avg = sums[b] / counts[b] as f64;
        points.push((kb, avg));
        if b % 3 == 0 {
            println!("  {kb:>10.1}     {avg:>12.4}     {:>8}", counts[b]);
        }
    }
    let avg_curve: Vec<f64> = points.iter().map(|p| p.1).collect();
    println!("\n  avg latency vs size: {}", sparkline(&avg_curve));

    let (slope, intercept) = fit_linear(&points);
    compare(
        "slope (ms per KB of input)",
        "~8",
        &format!("{:.2}", slope * 1000.0),
    );
    compare(
        "intercept (ms)",
        "(small)",
        &format!("{:.2}", intercept * 1000.0),
    );
    // Variability within a size bin (the figure's scatter).
    let mid = &cv_accum[BINS / 2];
    if mid.len() > 100 {
        let mean = mid.iter().sum::<f64>() / mid.len() as f64;
        let sd =
            (mid.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / mid.len() as f64).sqrt();
        compare(
            "coefficient of variation at ~15 KB",
            "large scatter",
            &format!("{:.2}", sd / mean),
        );
    }
    println!(
        "\nShape check: linear growth with visible per-size variance; one distiller\n\
         therefore saturates at ~23 requests/s on 10 KB inputs (Table 2)."
    );
}
