//! Figure 5: distribution of content lengths for HTML, GIF and JPEG.
//!
//! Paper statistics being reproduced: average content lengths HTML
//! 5131 B, GIF 3428 B, JPEG 12070 B; a bimodal GIF distribution with an
//! icon plateau below the 1 KB distillation threshold; a JPEG
//! distribution that falls off rapidly below 1 KB; "most content is
//! small but the average byte transferred is part of large content
//! (3–12 KB)".

use sns_bench::{banner, compare, sparkline};
use sns_sim::rng::Pcg32;
use sns_workload::sizes::SizeModel;
use sns_workload::MimeType;

fn main() {
    banner(
        "Figure 5 — content-length distributions by MIME type",
        "Fox et al., SOSP '97, §4.1 Figure 5",
    );
    let model = SizeModel::default();
    let mut rng = Pcg32::new(5);
    let n = 1_000_000usize;

    // Log-spaced bins from 10 B to 1 MB, like the figure's log x-axis.
    let edges: Vec<f64> = (0..=50)
        .map(|i| 10f64 * (1e6f64 / 10.0).powf(i as f64 / 50.0))
        .collect();

    for mime in [MimeType::Html, MimeType::Gif, MimeType::Jpeg] {
        let mut counts = vec![0u64; edges.len() - 1];
        let mut sum = 0u64;
        let mut under_1k = 0u64;
        for _ in 0..n {
            let s = model.sample(mime, &mut rng);
            sum += s;
            if s < 1024 {
                under_1k += 1;
            }
            let x = s as f64;
            if let Some(b) = edges.windows(2).position(|w| x >= w[0] && x < w[1]) {
                counts[b] += 1;
            }
        }
        let mean = sum as f64 / n as f64;
        let probs: Vec<f64> = counts.iter().map(|&c| c as f64 / n as f64).collect();
        println!("\n{mime} ({n} samples)  [x: log scale 10 B → 1 MB]");
        println!("  P(size) {}", sparkline(&probs));
        compare(
            "mean content length (bytes)",
            &format!("{:.0}", SizeModel::paper_mean(mime)),
            &format!("{mean:.0}"),
        );
        compare(
            "fraction below 1 KB threshold",
            match mime {
                MimeType::Gif => "substantial (icon plateau)",
                MimeType::Jpeg => "falls off rapidly",
                _ => "(not highlighted)",
            },
            &format!("{:.1}%", 100.0 * under_1k as f64 / n as f64),
        );
    }
    println!(
        "\nShape check: the GIF line should show two plateaus (icons < 1 KB, photos > 1 KB);\n\
         JPEG mass sits well above 1 KB; HTML is unimodal around a few KB."
    );
}
