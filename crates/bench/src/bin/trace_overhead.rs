//! Cost of the tracing instrumentation on the request hot path.
//!
//! The span-emission sites (`sns_core::trace`) are wired permanently
//! through the front end, dispatch plane and worker stub; when tracing
//! is disabled each site costs one `Option` branch. This bench proves
//! that cost is inside the noise floor: the same TranSend request-path
//! profile (pass-through requests through admission → lottery dispatch
//! → queue → service → reply) is measured four times in one process —
//!
//! * `request_path/base` — tracing disabled, first measurement;
//! * `request_path/off`  — tracing disabled again (the A/A control:
//!   any base↔off gap is pure measurement noise);
//! * `request_path/on`   — tracing enabled, every span recorded;
//! * `request_path/sampled` — tracing enabled, head-sampled 1-in-64:
//!   the always-on production configuration, where almost every
//!   request takes the enabled-but-sampled-out path.
//!
//! The bin asserts the disabled path's A/A regression stays ≤ 2%
//! (fastest-batch means), that the enabled-but-sampled-out path also
//! stays ≤ 2% over the disabled baseline, and that all four
//! configurations dispatch bit-identical simulations — recording (or
//! deciding not to record) spans must observe the run, never perturb
//! it. Rows are *appended* to `BENCH_sim.json` alongside the
//! `sim_throughput` scheduler rows, together with the span-derived
//! `slo/*` summary rows aggregated from the fully traced run.
//!
//! ```sh
//! cargo run -p sns-bench --release --bin trace_overhead [-- OUTPUT.json]
//! ```

use std::time::Duration;

use sns_core::slo::SloAggregator;
use sns_core::trace::TraceLog;
use sns_sim::time::SimTime;
use sns_testkit::{BenchConfig, BenchSuite};
use sns_transend::client::ClientReportHandle;
use sns_transend::{TranSendBuilder, TranSendCluster};
use sns_workload::trace::TraceRecord;
use sns_workload::MimeType;

/// Requests per measured run.
const REQUESTS: u64 = 200;

/// Pass-through objects (identity pipeline), one every 5 ms.
fn items() -> Vec<(Duration, TraceRecord)> {
    (0..REQUESTS)
        .map(|i| {
            (
                Duration::from_millis(5 * i),
                TraceRecord {
                    at: Duration::from_millis(5 * i),
                    user: (i % 16) as u32,
                    url: format!("bin://object/{}", i % 64),
                    mime: MimeType::Other,
                    size: 16 * 1024,
                },
            )
        })
        .collect()
}

fn build(traced: bool, sample_rate: u32) -> (TranSendCluster, ClientReportHandle) {
    let mut cluster = TranSendBuilder::new()
        .with_seed(0x0b5e)
        .with_worker_nodes(4)
        .with_frontends(1)
        .with_cache_partitions(2)
        .with_min_distillers(1)
        .with_origin_penalty_scale(0.1)
        .with_tracing(traced)
        .with_trace_sampling(sample_rate)
        .build();
    let report = cluster.attach_client(items(), Duration::from_secs(2));
    (cluster, report)
}

/// Rebuilds `path` as one JSON row array: every pre-existing row except
/// stale `request_path/*` and `slo/*` ones, then the given freshly
/// rendered rows.
fn append_rows(path: &str, new_rows_json: &str) {
    let row_lines = |s: &str, drop_ours: bool| -> Vec<String> {
        s.lines()
            .filter(|l| l.contains("\"bench\":"))
            .filter(|l| {
                !(drop_ours
                    && (l.contains("\"bench\":\"request_path/") || l.contains("\"bench\":\"slo/")))
            })
            .map(|l| l.trim_end().trim_end_matches(',').to_string())
            .collect()
    };
    let mut rows = match std::fs::read_to_string(path) {
        Ok(existing) => row_lines(&existing, true),
        Err(_) => Vec::new(),
    };
    rows.extend(row_lines(new_rows_json, false));
    let body = rows.join(",\n");
    std::fs::write(path, format!("[\n{body}\n]")).expect("write bench rows");
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    let mut suite = BenchSuite::with_config(
        "sim",
        BenchConfig {
            warmup: Duration::from_millis(50),
            measure: Duration::from_millis(400),
            ..Default::default()
        },
    );

    /// Head-sampling rate of the always-on configuration.
    const SAMPLE_RATE: u32 = 64;
    let mut fingerprints: Vec<(u64, u64, u64)> = Vec::new();
    let mut full_trace: Option<TraceLog> = None;
    let mut sampled_spans = 0usize;
    let configs = [
        ("base", false, 1),
        ("off", false, 1),
        ("on", true, 1),
        ("sampled", true, SAMPLE_RATE),
    ];
    for (tag, traced, rate) in configs {
        let mut last = None;
        suite.bench_batched(
            &format!("request_path/{tag}"),
            || build(traced, rate),
            |(mut cluster, report)| {
                cluster.sim.run_until(SimTime::from_secs(30));
                let r = report.borrow();
                assert_eq!(r.responses, REQUESTS, "every request must be answered");
                last = Some((
                    cluster.sim.events_dispatched(),
                    r.responses,
                    r.bytes_received,
                ));
                if traced && rate == 1 {
                    full_trace = Some(cluster.trace().expect("tracing enabled"));
                } else if traced {
                    sampled_spans = cluster.trace().expect("tracing enabled").len();
                }
            },
        );
        fingerprints.push(last.expect("at least one measured run"));
    }
    // Tracing — on, off, or sampled — must observe the run, not
    // perturb it: all four configurations executed the bit-identical
    // simulation (the sampling decision never touches component RNGs).
    assert!(
        fingerprints.iter().all(|f| *f == fingerprints[0]),
        "enabling tracing changed the simulation: {fingerprints:?}"
    );
    let full_trace = full_trace.expect("the traced run ran");
    let spans_recorded = full_trace.len();
    assert!(
        spans_recorded > REQUESTS as usize,
        "the traced run should record more than one span per request"
    );
    assert!(
        sampled_spans > 0 && sampled_spans < spans_recorded / 4,
        "1-in-{SAMPLE_RATE} sampling must keep a small non-empty slice: \
         {sampled_spans} of {spans_recorded} spans"
    );

    let row = |name: &str| {
        suite
            .rows()
            .iter()
            .find(|r| r.bench == name)
            .expect("row exists")
    };
    let base = row("request_path/base").min_ns;
    let off = row("request_path/off").min_ns;
    let on = row("request_path/on").min_ns;
    let sampled = row("request_path/sampled").min_ns;
    println!(
        "-- disabled-path A/A delta {:+.2}%   enabled cost {:+.2}%   sampled-out cost {:+.2}%   \
         ({spans_recorded} spans/run on, {sampled_spans} at 1/{SAMPLE_RATE})",
        (off / base - 1.0) * 100.0,
        (on / base - 1.0) * 100.0,
        (sampled / base - 1.0) * 100.0,
    );
    assert!(
        off <= base * 1.02,
        "disabled tracing path regressed the request profile by more than 2%: \
         base {base:.0} ns vs off {off:.0} ns"
    );
    assert!(
        sampled <= base * 1.02,
        "enabled-but-sampled-out tracing costs more than 2% over disabled: \
         base {base:.0} ns vs sampled {sampled:.0} ns"
    );

    // Span-derived SLO summary rows from the fully traced run: request
    // and per-service percentiles plus the depth-1 breakdown, in the
    // same trajectory format as the bench rows.
    let mut slo = SloAggregator::new(1);
    slo.ingest(&full_trace);
    assert_eq!(
        slo.sampled_requests(),
        REQUESTS,
        "rate-1 SLO closure: every answered request has a request span"
    );

    // One append: a second call would treat the first call's fresh
    // rows as stale and drop them.
    append_rows(
        &out,
        &format!("{}\n{}", suite.to_json(), slo.to_json_rows("sim")),
    );
    println!(
        "appended {} bench + {} slo rows to {out}",
        suite.rows().len(),
        slo.rows().len()
    );
}
