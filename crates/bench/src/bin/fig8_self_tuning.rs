//! Figure 8: self-tuning — distiller queue lengths under ramped load,
//! with on-demand spawning (threshold H, cooldown D) and a mid-run
//! double kill.
//!
//! Paper narrative being reproduced: the system bootstraps with no
//! distillers; the first is spawned as soon as load is offered; each
//! time the smoothed queue average crosses H a new distiller starts and
//! the queues rebalance within ~5 s; manually killing two distillers at
//! once makes the load on the survivor spike, the manager immediately
//! restarts one, and after D seconds discovers it is still overloaded
//! and starts another.

use std::time::Duration;

use sns_bench::{banner, compare, ramp_workload, series_buckets, sparkline};
use sns_sim::time::SimTime;
use sns_transend::TranSendBuilder;

fn main() {
    banner(
        "Figure 8 — distiller queue lengths over time (self-tuning + kills)",
        "Fox et al., SOSP '97, §4.5 Figure 8 (a,b)",
    );

    let mut cluster = TranSendBuilder::new()
        .with_worker_nodes(8)
        .with_overflow_nodes(2)
        .with_cores_per_node(1)
        .with_frontends(1)
        .with_cache_partitions(0) // no caching: every request is distilled
        .with_min_distillers(0) // first distiller spawns on demand
        .with_distillers(["jpeg"])
        .with_origin_penalty_scale(0.02) // fast origin keeps distillation the bottleneck
        .build();

    // Offered load ramp (tasks/s), echoing the figure's right axis.
    let segments = [
        (50.0, 4.0),
        (100.0, 10.0),
        (150.0, 16.0),
        (200.0, 22.0),
        (250.0, 28.0),
        (400.0, 34.0),
    ];
    let items = ramp_workload(&segments, 400, 10 * 1024, 88);
    let n_items = items.len();
    let report = cluster.attach_client(items, Duration::from_secs(2));

    // Manually kill the two oldest distillers at t = 250 s (Figure 8b).
    cluster.sim.at(SimTime::from_secs(250), |sim| {
        let mut ds = sim.components_of_kind(sns_core::intern_class("distiller/jpeg"));
        ds.sort();
        for d in ds.into_iter().take(2) {
            sim.kill_component(d);
        }
    });

    cluster.sim.run_until(SimTime::from_secs(420));

    // Per-distiller queue-length time lines.
    println!("\nper-distiller queue lengths (0–420 s, 84 buckets of 5 s):");
    let stats = cluster.sim.stats();
    let mut distillers = 0;
    for (name, series) in stats.all_series() {
        if let Some(id) = name.strip_prefix("worker.qlen.distiller/jpeg.") {
            distillers += 1;
            let first = series
                .points()
                .first()
                .map(|p| p.0.as_secs_f64())
                .unwrap_or(0.0);
            let last = series
                .points()
                .last()
                .map(|p| p.0.as_secs_f64())
                .unwrap_or(0.0);
            let (_, vals) = series_buckets(series, 84);
            println!(
                "  {id:>5} [{first:>5.0}s–{last:>4.0}s] {}",
                sparkline(&vals)
            );
        }
    }
    if let Some(avg) = stats.series("manager.avg_qlen.distiller/jpeg") {
        let (_, vals) = series_buckets(avg, 84);
        println!("  mgr-avg              {}", sparkline(&vals));
    }

    println!("\nevents:");
    compare(
        "distillers ever started",
        "5 (a) + respawns (b)",
        &format!("{distillers}"),
    );
    compare(
        "manager spawns (incl. respawns after kill)",
        "new distiller per H-crossing; 2 after the kill",
        &format!("{}", stats.counter("manager.spawns")),
    );
    compare(
        "worker deaths observed by manager",
        "2 (manual kills)",
        &format!("{}", stats.counter("manager.worker_deaths")),
    );
    let r = report.borrow();
    compare(
        "requests answered / offered",
        "all (availability maintained)",
        &format!("{} / {n_items}", r.responses),
    );
    compare(
        "mean end-to-end latency (s)",
        "(bounded by H)",
        &format!("{:.3}", r.latency.mean()),
    );
    println!(
        "\nShape check: staircase growth of the distiller population as load ramps;\n\
         after the t=250 s kill the surviving queues spike and fall back within\n\
         ~5 s of each respawn (stability knob D, §4.5)."
    );
}
