//! Scaling of the simulator itself: cores and abstraction levels.
//!
//! Two families of rows, both appended to `BENCH_sim.json`:
//!
//! * `scale/route/shardsN` — the *route profile*: a fixed ring of token
//!   routers (CPU burst per hop, cross-shard hops over 1 ms boundary
//!   links) partitioned into 1 / 2 / 4 event lanes and driven with
//!   [`sns_sim::ShardedSim::run_parallel`]. The total work is identical
//!   across shard counts, so `shards1 / shards4` wall-clock is the
//!   parallel speedup. Before timing anything the bin asserts, per shard
//!   count, that the parallel driver's fingerprint is byte-identical to
//!   the sequential driver's — speed never buys back determinism.
//! * `replay/*` — the million-user diurnal replay
//!   ([`sns_workload::ReplayLoad`], peak rotated to the window) through
//!   the SAN at both fidelity levels: `datagram_window` walks every
//!   request through the exact per-message model, `flow_window` offers
//!   the same epochs as aggregate flows (`San::offer_flow`), and
//!   `flow_24h` is the headline full-day flow-level replay. The bin
//!   asserts the two windows agree on delivered counts and mean delay
//!   (coarse fidelity band — the fine bands live in the `flow_shapes`
//!   suite) and that flow mode is ≥10× faster on the matched window.
//!
//! The 4-shard speedup is *printed*, not asserted: ci.sh gates it at
//! ≥2.0× only on hosts with ≥4 cores (a single-core runner cannot
//! measure parallelism). The ≥10× flow speedup is asserted here — it is
//! algorithmic, not core-count dependent.
//!
//! ```sh
//! cargo run -p sns-bench --release --bin sim_scale [-- OUTPUT.json]
//! ```

use std::time::Duration;

use sns_san::{San, SanConfig, SanMode};
use sns_sim::engine::{Component, Ctx, NodeSpec, Sim, SimConfig, Wire};
use sns_sim::network::{Delivery, Endpoint, IdealNetwork, Network, TrafficClass};
use sns_sim::time::SimTime;
use sns_sim::{ComponentId, Lane, NodeId, Pcg32, PortId, ShardedSim, Uplink};
use sns_testkit::{BenchConfig, BenchSuite};
use sns_workload::ReplayLoad;

/// Routers in the ring (total, across all shards).
const ROUTERS: u32 = 8;
/// Tokens circulating concurrently.
const TOKENS: u64 = 32;
/// Hops each token makes before dying.
const TTL: u64 = 400;
/// CPU burst per hop.
const HOP_WORK: Duration = Duration::from_micros(50);
/// Shard-local work messages fanned out per ring hop — the per-shard
/// event volume the parallel driver gets to overlap across cores.
const BURST: u64 = 16;

#[derive(Clone)]
struct Tok(u64);
impl Wire for Tok {
    fn wire_size(&self) -> u64 {
        64
    }
}

/// Where a router forwards to: its ring successor, either on the same
/// shard (direct send) or across the boundary (uplink).
enum Next {
    Local(ComponentId),
    Up(Uplink<Tok>),
}

/// One ring hop: burn a CPU burst, fan local work out to the shard's
/// sink, then forward the decremented token.
struct Router {
    next: Next,
    sink: ComponentId,
}

impl Component<Tok> for Router {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Tok>, _from: ComponentId, msg: Tok) {
        ctx.stats().incr("hops", 1);
        if msg.0 == 0 {
            ctx.stats().incr("retired", 1);
            return;
        }
        ctx.exec_cpu(HOP_WORK, msg.0);
    }

    fn on_cpu_done(&mut self, ctx: &mut Ctx<'_, Tok>, token: u64) {
        for _ in 0..BURST {
            ctx.send(self.sink, Tok(0));
        }
        match &self.next {
            Next::Local(c) => ctx.send(*c, Tok(token - 1)),
            Next::Up(u) => u.send(ctx.now(), Tok(token - 1)),
        }
    }
}

/// Counts the shard-local work messages.
struct Sink;

impl Component<Tok> for Sink {
    fn on_message(&mut self, ctx: &mut Ctx<'_, Tok>, _from: ComponentId, _msg: Tok) {
        ctx.stats().incr("work", 1);
    }
}

/// The route profile partitioned into `shards` lanes: routers
/// `[lo, hi)` per shard, ring successor local within a shard, uplinked
/// at the shard edge. Port `s` is bound to shard `s`'s first router.
fn route_profile(shards: u32) -> ShardedSim<Tok, IdealNetwork> {
    assert_eq!(ROUTERS % shards, 0, "even partition");
    let span = ROUTERS / shards;
    let mut ss: ShardedSim<Tok, IdealNetwork> = ShardedSim::new(Duration::from_millis(1));
    for _ in 0..shards {
        ss.add_shard(move |shard| {
            let sim = Sim::new(
                SimConfig::new().with_seed(0x5ca1e ^ u64::from(shard.0)),
                IdealNetwork::default(),
            );
            let mut lane = Lane::new(sim);
            let node = lane.sim().add_node(NodeSpec::new(2, "dedicated"));
            let sink = lane.sim().spawn(node, Box::new(Sink), "sink");
            // Spawn the shard's routers from the ring edge back to the
            // port anchor so each knows its successor's id; the edge
            // router uplinks to the next shard's port.
            let up = lane.uplink(PortId((shard.0 + 1) % shards));
            let mut next = Next::Up(up);
            let mut anchor = None;
            for _ in 0..span {
                let id = lane
                    .sim()
                    .spawn(node, Box::new(Router { next, sink }), "router");
                next = Next::Local(id);
                anchor = Some(id);
            }
            let anchor = anchor.expect("span >= 1");
            lane.bind(PortId(shard.0), anchor);
            // Every shard launches its share of the tokens, staggered.
            for t in 0..TOKENS / u64::from(shards) {
                lane.sim()
                    .inject_at(SimTime::from_millis(t), anchor, Tok(TTL));
            }
            lane.set_report(|sim| {
                format!(
                    "hops={} retired={} work={}",
                    sim.stats().counter("hops"),
                    sim.stats().counter("retired"),
                    sim.stats().counter("work"),
                )
            });
            lane
        });
    }
    ss
}

const ROUTE_HORIZON: SimTime = SimTime::from_secs(60);

/// Nodes on each side of the replayed SAN traffic matrix.
const REPLAY_PAIRS: u32 = 4;
/// Replay window compared across fidelity levels.
const WINDOW_SECS: u64 = 60;
/// The full-day headline replay.
const DAY_SECS: u64 = 24 * 3600;

/// The replay envelope: one million users, peak rotated onto the window
/// so the matched comparison runs at the diurnal maximum (~1300 req/s).
fn replay_load() -> ReplayLoad {
    let mut load = ReplayLoad::million_users(0xF10).with_epoch(Duration::from_secs(1));
    load.arrivals.diurnal.peak_hour = 0.0;
    load
}

fn replay_san(mode: SanMode) -> San {
    // The SAN's utilisation-averaging epoch must match the envelope's
    // aggregation epoch: each offer_flow call charges one epoch's load.
    let mut san = San::new(
        SanConfig::switched_100mbps()
            .with_mode(mode)
            .with_flow_epoch(Duration::from_secs(1)),
    );
    for n in 0..2 * REPLAY_PAIRS {
        san.register_node(NodeId(n));
    }
    san
}

/// Replays `secs` of the envelope per-request through the exact model.
/// Returns (delivered, mean delay seconds, requests replayed).
fn datagram_replay(secs: u64) -> (u64, f64, u64) {
    let load = replay_load();
    let mut san = replay_san(SanMode::Datagram);
    let mut rng = Pcg32::new(7);
    let (mut delivered, mut delay_sum, mut total) = (0u64, 0f64, 0u64);
    for e in load.epochs(Duration::from_secs(secs)) {
        if e.requests == 0 {
            continue;
        }
        let size = e.bytes / e.requests;
        let step = Duration::from_secs(1).div_f64(e.requests as f64);
        for k in 0..e.requests {
            let at = SimTime::ZERO + e.start + step.mul_f64(k as f64);
            let pair = (k % u64::from(REPLAY_PAIRS)) as u32;
            let from = Endpoint {
                node: NodeId(pair),
                comp: ComponentId(1),
            };
            let to = Endpoint {
                node: NodeId(REPLAY_PAIRS + pair),
                comp: ComponentId(2),
            };
            match san.unicast(at, &mut rng, from, to, size, TrafficClass::Reliable) {
                Delivery::At(t) => {
                    delivered += 1;
                    delay_sum += t.since(at).as_secs_f64();
                }
                Delivery::Dropped => {}
            }
            total += 1;
        }
    }
    (delivered, delay_sum / delivered.max(1) as f64, total)
}

/// Replays `secs` of the same envelope as per-epoch aggregate flows.
fn flow_replay(secs: u64) -> (u64, f64, u64) {
    let load = replay_load();
    let mut san = replay_san(SanMode::Flow);
    let (mut delivered, mut delay_sum, mut total) = (0u64, 0f64, 0u64);
    for e in load.epochs(Duration::from_secs(secs)) {
        if e.requests == 0 {
            continue;
        }
        let per = e.requests / u64::from(REPLAY_PAIRS);
        let rem = e.requests % u64::from(REPLAY_PAIRS);
        let now = SimTime::ZERO + e.start;
        for pair in 0..REPLAY_PAIRS {
            let msgs = per + u64::from(u64::from(pair) < rem);
            if msgs == 0 {
                continue;
            }
            let bytes = e.bytes * msgs / e.requests;
            let r = san.offer_flow(
                now,
                NodeId(pair),
                NodeId(REPLAY_PAIRS + pair),
                bytes,
                msgs,
                TrafficClass::Reliable,
            );
            delivered += r.delivered;
            delay_sum += r.delay.as_secs_f64() * r.delivered as f64;
            total += msgs;
        }
    }
    (delivered, delay_sum / delivered.max(1) as f64, total)
}

/// Rebuilds `path` as one JSON row array: every pre-existing row except
/// stale `scale/*` and `replay/*` ones, then the given fresh rows.
fn append_rows(path: &str, new_rows_json: &str) {
    let row_lines = |s: &str, drop_ours: bool| -> Vec<String> {
        s.lines()
            .filter(|l| l.contains("\"bench\":"))
            .filter(|l| {
                !(drop_ours
                    && (l.contains("\"bench\":\"scale/") || l.contains("\"bench\":\"replay/")))
            })
            .map(|l| l.trim_end().trim_end_matches(',').to_string())
            .collect()
    };
    let mut rows = match std::fs::read_to_string(path) {
        Ok(existing) => row_lines(&existing, true),
        Err(_) => Vec::new(),
    };
    rows.extend(row_lines(new_rows_json, false));
    let body = rows.join(",\n");
    std::fs::write(path, format!("[\n{body}\n]")).expect("write bench rows");
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    let mut suite = BenchSuite::with_config(
        "sim",
        BenchConfig {
            warmup: Duration::from_millis(60),
            measure: Duration::from_millis(300),
            min_samples: 3,
            ..Default::default()
        },
    );

    // Determinism first: per shard count, the parallel driver must be
    // byte-identical to the sequential reference before its speed means
    // anything.
    let mut expected_hops = None;
    for shards in [1u32, 2, 4] {
        let seq = route_profile(shards).run_sequential(ROUTE_HORIZON);
        let par = route_profile(shards).run_parallel(ROUTE_HORIZON);
        assert_eq!(
            seq.fingerprint(),
            par.fingerprint(),
            "shards={shards}: parallel run diverged from sequential"
        );
        // The ring retires every token regardless of partitioning.
        let hops: u64 = TOKENS * TTL + TOKENS;
        let got: u64 = seq
            .reports
            .iter()
            .map(|r| {
                r.split(&['=', ' '][..])
                    .nth(1)
                    .and_then(|h| h.parse().ok())
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(got, hops, "shards={shards}: the full ring must run");
        match expected_hops {
            None => expected_hops = Some(hops),
            Some(h) => assert_eq!(h, hops),
        }
    }

    for shards in [1u32, 2, 4] {
        suite.bench_batched(
            &format!("scale/route/shards{shards}"),
            || route_profile(shards),
            |ss| ss.run_parallel(ROUTE_HORIZON),
        );
    }

    // Fidelity before speed for the replay rows too: matched window,
    // same envelope, both fidelity levels.
    let (d_del, d_delay, d_total) = datagram_replay(WINDOW_SECS);
    let (f_del, f_delay, f_total) = flow_replay(WINDOW_SECS);
    assert_eq!(d_total, f_total, "both replays offer the same envelope");
    assert_eq!(
        d_del, f_del,
        "reliable traffic arrives in full at either fidelity"
    );
    assert!(
        f_delay / d_delay > 0.5 && f_delay / d_delay < 2.0,
        "flow delay {f_delay}s vs datagram {d_delay}s off the coarse band"
    );

    suite.bench("replay/datagram_window", || datagram_replay(WINDOW_SECS));
    suite.bench("replay/flow_window", || flow_replay(WINDOW_SECS));
    suite.bench("replay/flow_24h", || flow_replay(DAY_SECS));

    let row = |name: &str| {
        suite
            .rows()
            .iter()
            .find(|r| r.bench == name)
            .expect("row exists")
    };
    let s1 = row("scale/route/shards1").min_ns;
    let s4 = row("scale/route/shards4").min_ns;
    let dgram = row("replay/datagram_window").min_ns;
    let flow = row("replay/flow_window").min_ns;
    let day = row("replay/flow_24h").min_ns;
    println!(
        "-- 4-shard speedup {:.2}x (route profile; ci gates >=2.0x on >=4-core hosts)",
        s1 / s4
    );
    println!(
        "-- flow-level replay {:.0}x faster than datagram on the matched {WINDOW_SECS}s peak \
         window ({d_total} requests); full 24h flow replay {:.1} ms/run vs ~{:.0} s estimated \
         per-datagram",
        dgram / flow,
        day / 1e6,
        dgram * (DAY_SECS / WINDOW_SECS) as f64 / 1e9,
    );
    assert!(
        dgram / flow >= 10.0,
        "flow-level replay must be >=10x faster than per-datagram on the matched window: \
         {dgram:.0} ns vs {flow:.0} ns"
    );

    append_rows(&out, &suite.to_json());
    println!("appended {} bench rows to {out}", suite.rows().len());
}
