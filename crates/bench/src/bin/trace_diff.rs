//! The trace-diff regression gate: replays a pinned-seed TranSend
//! profile with full tracing, derives the normalized request-path
//! latency breakdown (overhead / compute / queue / service / net) from
//! the span stream, and compares each component's *share* of total
//! request time against the checked-in `TRACE_BASELINE.json`.
//!
//! Because the replay runs in virtual time the shares are
//! bit-deterministic for the pinned seed — a shifted share means the
//! *shape* of the request path changed (more queueing, a slower
//! dispatch hop, extra front-end overhead), which wall-clock
//! throughput benches routinely miss. The gate fails when any
//! component's share drifts more than 0.02 absolute or 5% relative
//! from the baseline.
//!
//! ```sh
//! cargo run -p sns-bench --release --bin trace_diff                    # gate
//! cargo run -p sns-bench --release --bin trace_diff -- --write-baseline
//! ```
//!
//! `--write-baseline` refreshes `TRACE_BASELINE.json` after an
//! *intentional* request-path change (commit it with the change that
//! moved the shares). `SNS_TRACE_DIFF_INJECT=<component>:<factor>`
//! multiplies one component's time before normalizing — CI uses
//! `dispatch:1.10` to prove the gate actually fails on a synthetic 10%
//! dispatch-path slowdown.

use std::time::Duration;

use sns_core::slo::SloAggregator;
use sns_sim::time::SimTime;
use sns_transend::TranSendBuilder;
use sns_workload::trace::TraceRecord;
use sns_workload::MimeType;

/// Pinned replay seed; changing it invalidates the baseline.
const SEED: u64 = 0x7d1f;

/// Requests in the replayed profile.
const REQUESTS: u64 = 200;

/// Maximum absolute share drift before the gate fails.
const ABS_BAND: f64 = 0.02;

/// Maximum relative share drift before the gate fails (for components
/// whose baseline share is non-negligible).
const REL_BAND: f64 = 0.05;

/// Baseline shares below this are compared absolutely only.
const REL_FLOOR: f64 = 0.01;

/// The same pass-through request shape as `trace_overhead`, replayed
/// under the gate's own pinned seed.
fn items() -> Vec<(Duration, TraceRecord)> {
    (0..REQUESTS)
        .map(|i| {
            (
                Duration::from_millis(5 * i),
                TraceRecord {
                    at: Duration::from_millis(5 * i),
                    user: (i % 16) as u32,
                    url: format!("bin://object/{}", i % 64),
                    mime: MimeType::Other,
                    size: 16 * 1024,
                },
            )
        })
        .collect()
}

/// Runs the pinned profile fully traced and returns the component
/// share map, normalized to sum to 1.
fn measured_shares() -> Vec<(&'static str, f64)> {
    let mut cluster = TranSendBuilder::new()
        .with_seed(SEED)
        .with_worker_nodes(4)
        .with_frontends(1)
        .with_cache_partitions(2)
        .with_min_distillers(1)
        .with_origin_penalty_scale(0.1)
        .with_tracing(true)
        .build();
    let report = cluster.attach_client(items(), Duration::from_secs(2));
    cluster.sim.run_until(SimTime::from_secs(30));
    assert_eq!(
        report.borrow().responses,
        REQUESTS,
        "the pinned replay must answer every request"
    );
    let mut slo = SloAggregator::new(1);
    slo.ingest(&cluster.trace().expect("tracing enabled"));
    assert_eq!(
        slo.sampled_requests(),
        REQUESTS,
        "rate-1 closure: one request span per answered request"
    );

    let mut sums = slo.breakdown_sums();
    if let Ok(spec) = std::env::var("SNS_TRACE_DIFF_INJECT") {
        let (name, factor) = spec
            .split_once(':')
            .expect("SNS_TRACE_DIFF_INJECT takes <component>:<factor>");
        let factor: f64 = factor.parse().expect("injection factor must be a number");
        // "dispatch" is the operator-facing name for the non-queue,
        // non-service remainder of a dispatch round trip.
        let name = if name == "dispatch" { "net" } else { name };
        let entry = sums
            .iter_mut()
            .find(|(n, _)| *n == name)
            .unwrap_or_else(|| panic!("unknown breakdown component '{name}'"));
        entry.1 *= factor;
        println!("injected synthetic slowdown: {name} x {factor}");
    }
    let total: f64 = sums.iter().map(|(_, ns)| ns).sum();
    assert!(total > 0.0, "the traced replay recorded no breakdown time");
    sums.into_iter().map(|(n, ns)| (n, ns / total)).collect()
}

fn render_baseline(shares: &[(&'static str, f64)]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"profile\": \"transend_request_path\",\n");
    out.push_str(&format!("  \"seed\": {SEED},\n"));
    out.push_str(&format!("  \"requests\": {REQUESTS},\n"));
    out.push_str("  \"shares\": {\n");
    for (i, (name, share)) in shares.iter().enumerate() {
        out.push_str(&format!(
            "    \"{name}\": {share:.6}{}\n",
            if i + 1 < shares.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    out
}

/// Minimal fixed-schema reader: every breakdown component name appears
/// exactly once in the baseline, as `"<name>": <float>`.
fn baseline_share(baseline: &str, name: &str) -> f64 {
    let key = format!("\"{name}\":");
    let at = baseline
        .find(&key)
        .unwrap_or_else(|| panic!("baseline is missing component '{name}'"));
    let rest = &baseline[at + key.len()..];
    let end = rest
        .find([',', '\n', '}'])
        .unwrap_or_else(|| panic!("malformed baseline after '{name}'"));
    rest[..end]
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("malformed share for '{name}': {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let write = args.iter().any(|a| a == "--write-baseline");
    let path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "TRACE_BASELINE.json".to_string());

    let shares = measured_shares();
    if write {
        std::fs::write(&path, render_baseline(&shares)).expect("write baseline");
        println!("wrote baseline shares to {path}");
        for (name, share) in &shares {
            println!("  {name:<10} {share:>8.4}");
        }
        return;
    }

    let baseline = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("cannot read baseline {path}: {e} (generate with --write-baseline)")
    });
    let mut failed = false;
    println!("-- request-path breakdown shares vs {path}");
    for (name, share) in &shares {
        let expect = baseline_share(&baseline, name);
        let abs = (share - expect).abs();
        let rel = if expect > REL_FLOOR {
            abs / expect
        } else {
            0.0
        };
        let ok = abs <= ABS_BAND && rel <= REL_BAND;
        failed |= !ok;
        println!(
            "  {name:<10} now {share:>8.4}  baseline {expect:>8.4}  drift {abs:>7.4} abs / {:>5.1}% rel  {}",
            rel * 100.0,
            if ok { "ok" } else { "DRIFTED" }
        );
    }
    if failed {
        eprintln!(
            "trace_diff: request-path latency composition drifted beyond the band \
             (> {ABS_BAND} abs or > {:.0}% rel); if intentional, refresh with --write-baseline",
            REL_BAND * 100.0
        );
        std::process::exit(1);
    }
    println!("trace_diff: composition matches the baseline");
}
