//! Figure 6: request-rate burstiness across time scales.
//!
//! Paper: (a) 24 hours at 2-minute buckets — 5.8 req/s average, 12.6
//! req/s max, a strong diurnal cycle; (b) 3 h 20 min at 30-second
//! buckets — 5.6 avg, 10.3 peak; (c) 3 min 20 s at 1-second buckets —
//! 8.1 avg, 20 peak. Bursts exist at every scale (self-similarity).

use std::time::Duration;

use sns_bench::{banner, compare, sparkline};
use sns_sim::rng::Pcg32;
use sns_workload::bursts::ArrivalProcess;

fn window_stats(
    arrivals: &[Duration],
    from: Duration,
    len: Duration,
    bucket: Duration,
) -> (Vec<u64>, f64, f64) {
    let to = from + len;
    let slice: Vec<Duration> = arrivals
        .iter()
        .filter(|&&a| a >= from && a < to)
        .map(|&a| a - from)
        .collect();
    let buckets = ArrivalProcess::bucketize(&slice, bucket, len);
    let avg = slice.len() as f64 / len.as_secs_f64();
    let peak = buckets.iter().copied().max().unwrap_or(0) as f64 / bucket.as_secs_f64();
    (buckets, avg, peak)
}

fn main() {
    banner(
        "Figure 6 — burstiness of traced request rates across time scales",
        "Fox et al., SOSP '97, §4.2 Figure 6 (a,b,c)",
    );
    let process = ArrivalProcess::paper_default(6);
    let mut rng = Pcg32::new(6);
    let day = Duration::from_secs(24 * 3600);
    let arrivals = process.arrivals(day, &mut rng);
    println!(
        "generated {} arrivals over 24 h ({:.2} req/s overall)\n",
        arrivals.len(),
        arrivals.len() as f64 / day.as_secs_f64()
    );

    // (a) 24 h, 2-minute buckets.
    let (b, avg, peak) = window_stats(&arrivals, Duration::ZERO, day, Duration::from_secs(120));
    let vals: Vec<f64> = b.iter().map(|&c| c as f64).collect();
    println!("(a) 24 h, 120 s buckets:");
    println!("    {}", sparkline(&vals));
    compare("average rate (req/s)", "5.8", &format!("{avg:.1}"));
    compare("peak bucket rate (req/s)", "12.6", &format!("{peak:.1}"));

    // (b) 3 h 20 min of ordinary afternoon load, 30-second buckets.
    let from = Duration::from_secs(14 * 3600);
    let len = Duration::from_secs(3 * 3600 + 20 * 60);
    let (b, avg, peak) = window_stats(&arrivals, from, len, Duration::from_secs(30));
    let vals: Vec<f64> = b.iter().map(|&c| c as f64).collect();
    println!("\n(b) 3 h 20 min (evening), 30 s buckets:");
    println!("    {}", sparkline(&vals));
    compare("average rate (req/s)", "5.6", &format!("{avg:.1}"));
    compare("peak bucket rate (req/s)", "10.3", &format!("{peak:.1}"));

    // (c) 3 min 20 s inside the peak, 1-second buckets.
    let from = Duration::from_secs(21 * 3600 + 40 * 60);
    let len = Duration::from_secs(200);
    let (b, avg, peak) = window_stats(&arrivals, from, len, Duration::from_secs(1));
    let vals: Vec<f64> = b.iter().map(|&c| c as f64).collect();
    println!("\n(c) 3 min 20 s (peak), 1 s buckets:");
    println!("    {}", sparkline(&vals));
    compare("average rate (req/s)", "8.1", &format!("{avg:.1}"));
    compare("peak bucket rate (req/s)", "20", &format!("{peak:.1}"));

    println!(
        "\nShape check: every scale shows bursts well above its own average —\n\
         the self-similarity the overflow pool must absorb (§2.2.3)."
    );
}
