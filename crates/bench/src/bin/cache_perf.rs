//! §4.4: cache-partition performance and the cache-size / population
//! study.
//!
//! Paper results reproduced:
//! * average cache hit 27 ms (15 ms of it TCP overhead); 95% of hits
//!   under 100 ms; miss penalty 100 ms – 100 s dominates;
//! * hit rate grows monotonically with cache size but plateaus at a
//!   population-dependent level; ~6 GB over the traced 8000-user
//!   population gave 56%;
//! * growing the population at fixed cache size raises the hit rate
//!   (cross-user locality) until the combined working set exceeds the
//!   cache.

use std::time::Duration;

use sns_bench::{banner, bar_chart, compare};
use sns_cache::simulator::CacheSim;
use sns_cache::timing::CacheTiming;
use sns_sim::rng::Pcg32;
use sns_workload::trace::{TraceGenerator, WorkloadConfig};

fn hit_rate(users: u32, cache_mb: u64, requests_per_user: f64) -> f64 {
    let mut gen = TraceGenerator::new(WorkloadConfig {
        seed: 0xcac4e,
        users,
        shared_objects: 40_000,
        private_per_user: 120,
        shared_prob: 0.65,
        ..Default::default()
    });
    let n = (f64::from(users) * requests_per_user) as u64;
    let mut sim = CacheSim::new(cache_mb * 1024 * 1024);
    // Constant-rate stream; the simulator only cares about the order.
    let horizon = Duration::from_secs(3600);
    let rate = n as f64 / horizon.as_secs_f64();
    let trace = gen.constant_rate(rate.max(1.0), horizon);
    for r in &trace.records {
        sim.access(&r.url, r.size);
    }
    sim.report().hit_rate
}

fn main() {
    banner(
        "§4.4 — cache partition performance and hit-rate study",
        "Fox et al., SOSP '97, §4.4",
    );

    // Part 1: service-time model.
    let timing = CacheTiming::default();
    let mut rng = Pcg32::new(0x44);
    let n = 200_000;
    let mut hits: Vec<f64> = (0..n)
        .map(|_| timing.hit_time(&mut rng).as_secs_f64())
        .collect();
    hits.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let hit_mean = hits.iter().sum::<f64>() / n as f64;
    let hit_p95 = hits[(n as f64 * 0.95) as usize];
    let _ = hit_p95;
    let misses: Vec<f64> = (0..n)
        .map(|_| timing.miss_penalty(&mut rng).as_secs_f64())
        .collect();
    let miss_mean = misses.iter().sum::<f64>() / n as f64;
    let miss_max = misses.iter().cloned().fold(0.0, f64::max);

    println!("\ncache service times ({n} draws):");
    compare(
        "average hit time (ms)",
        "27",
        &format!("{:.1}", hit_mean * 1e3),
    );
    compare(
        "TCP setup/teardown share (ms)",
        "15",
        "15.0 (model constant)",
    );
    compare(
        "hits under 100 ms",
        "95%",
        &format!(
            "{:.1}%",
            100.0 * hits.iter().filter(|&&h| h < 0.1).count() as f64 / n as f64
        ),
    );
    compare(
        "average miss penalty (s)",
        "0.1–100 (wide)",
        &format!("{miss_mean:.2}"),
    );
    compare("max miss penalty (s)", "~100", &format!("{miss_max:.1}"));
    compare(
        "max cache service rate per partition (req/s)",
        "37",
        &format!("{:.0}", 1.0 / hit_mean),
    );

    // Part 2: hit rate vs cache size at the traced population.
    println!("\nhit rate vs total cache size (8000 users, LRU):");
    let sizes_mb = [64u64, 256, 1024, 3072, 6144, 12288];
    let rows: Vec<(String, f64)> = sizes_mb
        .iter()
        .map(|&mb| (format!("{:>5} MB", mb), hit_rate(8000, mb, 40.0)))
        .collect();
    bar_chart(&rows, 40);
    let at6gb = rows[4].1;
    compare(
        "hit rate at 6 GB / 8000 users",
        "0.56",
        &format!("{at6gb:.2}"),
    );
    let plateau = (rows[5].1 - rows[4].1).abs();
    compare(
        "6 GB → 12 GB improvement (plateau)",
        "small",
        &format!("{plateau:.3}"),
    );

    // Part 3: hit rate vs population at fixed cache size. The cache is
    // kept small (256 MB) so the combined working sets eventually exceed
    // it and the hit rate falls, as the paper observed.
    println!("\nhit rate vs user population (256 MB cache, LRU):");
    let pops = [250u32, 1000, 4000, 8000, 16000, 32000, 64000];
    let rows: Vec<(String, f64)> = pops
        .iter()
        .map(|&u| (format!("{u:>6} users"), hit_rate(u, 256, 40.0)))
        .collect();
    bar_chart(&rows, 40);
    let peak = rows.iter().map(|r| r.1).fold(0.0, f64::max);
    let last = rows.last().expect("rows").1;
    compare(
        "falloff once working sets exceed the cache",
        "hit rate falls",
        &format!("peak {peak:.2} → {last:.2} at 64k users"),
    );
    println!(
        "\nShape check: monotone growth with cache size flattening once the working\n\
         set fits; growth with population (cross-user locality) until the combined\n\
         working sets exceed the cache, after which the hit rate falls (§4.4)."
    );
}
