//! §3.2: HotBot graceful degradation under partition loss.
//!
//! Paper: with 26 nodes, "the loss of one machine results in the
//! database dropping from 54M to about 51M documents, which is still
//! significantly larger than other search engines" — availability is
//! maintained, coverage degrades by 1/26, and fast restart restores it.

use std::time::Duration;

use sns_bench::{banner, compare, series_buckets, sparkline};
use sns_hotbot::HotBotBuilder;
use sns_sim::time::SimTime;

fn main() {
    banner(
        "§3.2 — HotBot: partition loss degrades coverage, not availability",
        "Fox et al., SOSP '97, §3.2 (54M → 51M documents example)",
    );
    let mut cluster = HotBotBuilder::new()
        .with_partitions(26)
        .with_corpus_docs(5_400) // stands in for 54M pages at 1:10_000 scale
        .with_frontends(2)
        .with_auto_restart_partitions(true)
        .build();
    let total = cluster.total_docs();
    let lost = cluster.docs_per_partition[3];
    let report = cluster.attach_client(10.0, 1200, Duration::from_secs(5));

    // Node failure at t = 40 s; fast restart at t = 80 s.
    let victim = cluster.partition_nodes[3];
    cluster
        .sim
        .at(SimTime::from_secs(40), move |sim| sim.kill_node(victim));
    cluster
        .sim
        .at(SimTime::from_secs(80), move |sim| sim.revive_node(victim));
    cluster.sim.run_until(SimTime::from_secs(140));

    println!();
    compare(
        "corpus size (docs)",
        "54M",
        &format!("{total} (scaled 1:10k)"),
    );
    compare(
        "docs on the failed node",
        "~3M (54M→51M)",
        &format!("{lost} ({}→{})", total, total - lost),
    );
    let r = report.borrow();
    compare(
        "queries answered / sent",
        "100% availability",
        &format!("{} / {}", r.answered, r.sent),
    );
    compare("query errors", "0", &format!("{}", r.errors));
    compare(
        "coverage during outage",
        &format!("{:.1}% (51/54)", 100.0 * 51.0 / 54.0),
        &format!("{:.1}%", r.min_coverage * 100.0),
    );
    compare(
        "queries with partial coverage",
        "only during the outage window",
        &format!("{} of {}", r.partial_coverage, r.answered),
    );
    drop(r);

    if let Some(series) = cluster.sim.stats().series("hb.coverage_ts") {
        let (w, vals) = series_buckets(series, 70);
        println!(
            "\ncoverage over time ({}s per bucket; kill at 40 s, restart at 80 s):",
            w.round()
        );
        println!("  {}", sparkline(&vals));
    }
    println!(
        "\nShape check: a flat 100% coverage line with a ~96% shelf between the\n\
         node failure and its fast restart; no query ever fails (§3.2: during\n\
         the Berkeley→San Jose move \"the overall service was still up and\n\
         useful\" while parts of the database were unavailable)."
    );
}
