//! Macro-benchmark of the discrete-event engine's scheduling/dispatch
//! hot path: whole simulation runs of 1M+ events, measured for both
//! pending-event schedulers (`heap` baseline vs `wheel` + arenas) in
//! the same process so the recorded ratio is apples-to-apples.
//!
//! Three profiles stress different parts of the hot path:
//!
//! * `route_1m` — a 64-component message ring over the ideal network;
//!   small queue, many same-timestamp deliveries (batching + arena
//!   dispatch dominate).
//! * `spawn_1m` — components continuously spawning and killing
//!   children (component-table churn, start/death bookkeeping).
//! * `monitor_1m` — ~1M standing re-arming timers spread over 1000 s
//!   of virtual time, the Section-2 monitoring workload shape: every
//!   pop digs through a million-entry priority queue (heap) or drains
//!   an O(1) wheel bucket.
//!
//! ```sh
//! cargo run -p sns-bench --release --bin sim_throughput [-- OUTPUT.json]
//! ```
//!
//! Rows land in `BENCH_sim.json`; events/sec and the wheel-vs-heap
//! speedup per profile print at the end.

use std::time::Duration;

use sns_sim::engine::{Component, Ctx, NodeSpec, Sim, SimConfig, Wire};
use sns_sim::network::IdealNetwork;
use sns_sim::sched::SchedulerKind;
use sns_sim::time::SimTime;
use sns_sim::ComponentId;
use sns_testkit::{BenchConfig, BenchSuite};

/// Events per measured run, shared by all profiles.
const EVENTS: u64 = 1_000_000;

#[derive(Clone)]
struct Ping;
impl Wire for Ping {
    fn wire_size(&self) -> u64 {
        64
    }
}

fn config(kind: SchedulerKind, max_events: u64) -> SimConfig {
    SimConfig {
        seed: 0x517,
        scheduler: kind,
        max_events,
        ..Default::default()
    }
}

/// 64 tokens circulating a component ring; each delivery forwards to
/// the next member, so 64 messages are always in flight and most of
/// them share timestamps.
fn route_sim(kind: SchedulerKind) -> Sim<Ping, IdealNetwork> {
    struct Fwd {
        next: ComponentId,
    }
    impl Component<Ping> for Fwd {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Ping>, _from: ComponentId, msg: Ping) {
            ctx.send(self.next, msg);
        }
    }
    let mut sim: Sim<Ping, IdealNetwork> = Sim::new(config(kind, EVENTS), IdealNetwork::default());
    let ring = 64u64;
    let node = sim.add_node(NodeSpec::new(4, "dedicated"));
    // Component ids are allocated sequentially from 1, so each member
    // can name its successor before it exists.
    let first = ComponentId(1);
    for i in 0..ring {
        let next = ComponentId(first.0 + (i + 1) % ring);
        sim.spawn(node, Box::new(Fwd { next }), "fwd");
    }
    for i in 0..ring {
        sim.inject(ComponentId(first.0 + i), Ping);
    }
    sim
}

/// Spawner components that kill their previous child and fork a new
/// one on every timer tick (manager respawn-churn shape).
fn spawn_sim(kind: SchedulerKind) -> Sim<Ping, IdealNetwork> {
    struct Child;
    impl Component<Ping> for Child {
        fn on_message(&mut self, _: &mut Ctx<'_, Ping>, _: ComponentId, _: Ping) {}
    }
    struct Spawner {
        child: Option<ComponentId>,
    }
    impl Component<Ping> for Spawner {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Ping>) {
            ctx.timer(Duration::from_millis(1), 0);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, Ping>, _t: u64) {
            if let Some(c) = self.child.take() {
                ctx.kill(c);
            }
            self.child = ctx.spawn(ctx.my_node(), Box::new(Child), "child");
            ctx.timer(Duration::from_millis(1), 0);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, Ping>, _: ComponentId, _: Ping) {}
    }
    let mut sim: Sim<Ping, IdealNetwork> = Sim::new(config(kind, EVENTS), IdealNetwork::default());
    for _ in 0..8 {
        let node = sim.add_node(NodeSpec::new(4, "dedicated"));
        for _ in 0..8 {
            sim.spawn(node, Box::new(Spawner { child: None }), "spawner");
        }
    }
    sim
}

/// ~1M standing timers uniformly spread over 1000 s of virtual time;
/// each firing re-arms, so the pending population stays at ~1M for the
/// whole run.
fn monitor_sim(kind: SchedulerKind) -> Sim<Ping, IdealNetwork> {
    const WATCHERS: u64 = 1_000;
    const TIMERS_EACH: u64 = 1_000;
    const SPREAD_NS: u64 = 1_000 * 1_000_000_000;
    struct Watcher;
    impl Component<Ping> for Watcher {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Ping>) {
            for t in 0..TIMERS_EACH {
                let delay = ctx.rng().below(SPREAD_NS);
                ctx.timer(Duration::from_nanos(delay), t);
            }
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, Ping>, t: u64) {
            let delay = ctx.rng().below(SPREAD_NS);
            ctx.timer(Duration::from_nanos(delay), t);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, Ping>, _: ComponentId, _: Ping) {}
    }
    // Leave headroom for the Start events so the cap still cuts off at
    // EVENTS-many timer firings.
    let mut sim: Sim<Ping, IdealNetwork> =
        Sim::new(config(kind, EVENTS + WATCHERS), IdealNetwork::default());
    let node = sim.add_node(NodeSpec::new(4, "dedicated"));
    for _ in 0..WATCHERS {
        sim.spawn(node, Box::new(Watcher), "watcher");
    }
    // Dispatch the Start events now so every measured run begins with
    // the full standing-timer population already queued.
    sim.run_until(SimTime::ZERO);
    assert_eq!(sim.events_dispatched(), WATCHERS);
    sim
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    // Whole runs take seconds, so the wall-clock budget is nominal and
    // `min_samples` drives the loop: ≥ 5 measured runs per benchmark,
    // so the recorded p50/p99 are a distribution, not a point estimate.
    let mut suite = BenchSuite::with_config(
        "sim",
        BenchConfig {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(1),
            min_samples: 5,
            ..Default::default()
        },
    );
    type Builder = fn(SchedulerKind) -> Sim<Ping, IdealNetwork>;
    let profiles: [(&str, Builder); 3] = [
        ("route_1m", route_sim),
        ("spawn_1m", spawn_sim),
        ("monitor_1m", monitor_sim),
    ];
    for (profile, build) in profiles {
        let mut per_kind: Vec<(SimTime, u64)> = Vec::new();
        for kind in [SchedulerKind::Heap, SchedulerKind::Wheel] {
            let tag = match kind {
                SchedulerKind::Heap => "heap",
                SchedulerKind::Wheel => "wheel",
            };
            let mut fingerprints: Vec<(SimTime, u64)> = Vec::new();
            suite.bench_batched(
                &format!("{profile}/{tag}"),
                || build(kind),
                |mut sim| {
                    sim.run();
                    fingerprints.push((sim.now(), sim.events_dispatched()));
                },
            );
            let f = fingerprints.last().copied().expect("at least one run");
            assert!(
                fingerprints.iter().all(|&x| x == f),
                "{profile}/{tag}: repeated runs diverged"
            );
            println!(
                "    {profile}/{tag}: finished at {} after {} events",
                f.0, f.1
            );
            per_kind.push(f);
        }
        // Both schedulers must have executed the exact same run.
        assert_eq!(
            per_kind[0], per_kind[1],
            "{profile}: heap and wheel runs diverged"
        );
    }
    suite.write_json(&out).expect("write bench rows");

    println!("-- events/sec ({EVENTS} dispatched events per run)");
    let row = |name: &str| {
        suite
            .rows()
            .iter()
            .find(|r| r.bench == name)
            .expect("row exists")
            .mean_ns
    };
    for (profile, _) in profiles {
        let heap_ns = row(&format!("{profile}/heap"));
        let wheel_ns = row(&format!("{profile}/wheel"));
        let eps = |ns: f64| EVENTS as f64 / (ns / 1e9);
        println!(
            "  {profile:<12} heap {:>12.0} ev/s   wheel {:>12.0} ev/s   speedup {:.2}x",
            eps(heap_ns),
            eps(wheel_ns),
            heap_ns / wheel_ns
        );
    }
    println!("wrote {} rows to {out}", suite.rows().len());
}
