//! Macro-benchmark of the threaded runtime's dispatch path, in two
//! parts:
//!
//! * `submit_1k/workers{1,4}` — jobs/sec through `RtCluster::submit`
//!   → sharded `DispatchPlane` lottery → worker thread → reply
//!   channel, with `time_scale: 0` so service time is zero and the
//!   measurement isolates dispatch and channel overhead per job.
//! * `scaling/workers{1,2,4,8,16}` — the worker-scaling curve: a
//!   fixed batch of jobs with a real (slept) service time, submitted
//!   from several threads, with one dispatch shard per worker and
//!   work stealing on. Service sleeps overlap across worker threads,
//!   so wall time should fall near-linearly with the pool size until
//!   the dispatch plane stops being the bottleneck — this is the curve
//!   `ci.sh`'s `rt_scaling` stage guards (1→8 workers must be ≥ 2×).
//!
//! ```sh
//! cargo run -p sns-bench --release --bin rt_throughput [-- OUTPUT.json]
//! ```
//!
//! Rows land in `BENCH_rt.json` together with span-derived `slo/*`
//! summary rows from a separate head-sampled traced run; jobs/sec per
//! pool size prints at the end.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use sns_core::msg::{Job, JobResult};
use sns_core::slo::SloAggregator;
use sns_core::worker::{WorkerError, WorkerLogic};
use sns_core::{Blob, Payload, WorkerClass};
use sns_rt::{RtCluster, RtConfig};
use sns_sim::rng::Pcg32;
use sns_sim::time::SimTime;
use sns_testkit::{BenchConfig, BenchSuite};

/// Jobs per measured zero-service run.
const JOBS: u64 = 1_000;

/// Jobs per scaling-curve run (smaller: each carries a real sleep).
const SCALE_JOBS: u64 = 256;

/// Modelled service time per job in the scaling runs.
const SERVICE: Duration = Duration::from_millis(4);

struct Nop;

impl WorkerLogic for Nop {
    fn class(&self) -> WorkerClass {
        "nop".into()
    }
    fn service_time(&mut self, _j: &Job, _n: SimTime, _r: &mut Pcg32) -> Duration {
        Duration::ZERO
    }
    fn process(&mut self, job: &Job, _n: SimTime, _r: &mut Pcg32) -> Result<Payload, WorkerError> {
        Ok(Blob::payload(job.input.wire_size(), "done"))
    }
}

struct Sleeper;

impl WorkerLogic for Sleeper {
    fn class(&self) -> WorkerClass {
        "nop".into()
    }
    fn service_time(&mut self, _j: &Job, _n: SimTime, _r: &mut Pcg32) -> Duration {
        SERVICE
    }
    fn process(&mut self, job: &Job, _n: SimTime, _r: &mut Pcg32) -> Result<Payload, WorkerError> {
        Ok(Blob::payload(job.input.wire_size(), "done"))
    }
}

fn cluster(workers: usize) -> Arc<RtCluster> {
    let c = RtCluster::start(
        RtConfig::new()
            .with_time_scale(0.0)
            .with_report_period(Duration::from_millis(10))
            .with_beacon_period(Duration::from_millis(20))
            .with_seed(0x6274),
    );
    c.add_workers("nop", workers, || Box::new(Nop));
    c
}

/// Scaling cluster: real (scaled 1:1) service sleeps, one dispatch
/// shard per worker, stealing on so a momentarily unlucky lottery
/// cannot serialize the batch behind one queue.
fn scaling_cluster(workers: usize) -> Arc<RtCluster> {
    let c = RtCluster::start(
        RtConfig::new()
            .with_time_scale(1.0)
            .with_report_period(Duration::from_millis(10))
            .with_beacon_period(Duration::from_millis(20))
            .with_seed(0x6274)
            .with_shards(workers)
            .with_work_stealing(true),
    );
    c.add_workers("nop", workers, || Box::new(Sleeper));
    c
}

/// Pushes `SCALE_JOBS` through the cluster from several submitter
/// threads and waits for every reply.
fn scaling_run(c: &Arc<RtCluster>, workers: usize) {
    let submitters = workers.clamp(1, 8);
    let per = SCALE_JOBS / submitters as u64;
    let extra = SCALE_JOBS % submitters as u64;
    std::thread::scope(|s| {
        for t in 0..submitters {
            let share = per + u64::from((t as u64) < extra);
            let c = Arc::clone(c);
            s.spawn(move || {
                let receivers: Vec<_> = (0..share)
                    .map(|i| c.submit("nop", "op", Blob::payload(64 + i, "x"), None))
                    .collect();
                for rx in receivers {
                    match rx.recv().expect("reply") {
                        JobResult::Ok(_) => {}
                        JobResult::Failed(e) => panic!("scaling job failed: {e}"),
                    }
                }
            });
        }
    });
    assert_eq!(c.jobs_done.load(Ordering::Relaxed), SCALE_JOBS);
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_rt.json".to_string());
    // Each run pushes a full batch through real threads; the nominal
    // wall-clock budget means `min_samples` drives the loop: ≥ 5
    // measured runs per benchmark, so the recorded p50/p99 are a
    // distribution, not a point estimate.
    let mut suite = BenchSuite::with_config(
        "rt",
        BenchConfig {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(1),
            min_samples: 5,
            ..Default::default()
        },
    );
    let pools = [1usize, 4];
    for workers in pools {
        suite.bench_batched(
            &format!("submit_1k/workers{workers}"),
            || cluster(workers),
            |c| {
                let receivers: Vec<_> = (0..JOBS)
                    .map(|i| c.submit("nop", "op", Blob::payload(64 + i, "x"), None))
                    .collect();
                for rx in receivers {
                    match rx.recv().expect("reply") {
                        JobResult::Ok(_) => {}
                        JobResult::Failed(e) => panic!("bench job failed: {e}"),
                    }
                }
                assert_eq!(c.jobs_done.load(Ordering::Relaxed), JOBS);
                c.shutdown();
            },
        );
    }
    let scale_pools = [1usize, 2, 4, 8, 16];
    for workers in scale_pools {
        suite.bench_batched(
            &format!("scaling/workers{workers}"),
            || scaling_cluster(workers),
            |c| {
                scaling_run(&c, workers);
                c.shutdown();
            },
        );
    }
    suite.write_json(&out).expect("write bench rows");

    // Span-derived SLO rows from an unmeasured head-sampled traced run
    // (the always-on production configuration): request percentiles and
    // the depth-1 queue/service/net breakdown, scaled back up by the
    // sampling rate.
    const SLO_RATE: u32 = 4;
    let slo_rows = {
        let c = RtCluster::start(
            RtConfig::new()
                .with_time_scale(0.0)
                .with_report_period(Duration::from_millis(10))
                .with_beacon_period(Duration::from_millis(20))
                .with_seed(0x6274)
                .with_tracing(true)
                .with_trace_sampling(SLO_RATE),
        );
        c.add_workers("nop", 4, || Box::new(Nop));
        let receivers: Vec<_> = (0..JOBS)
            .map(|i| c.submit("nop", "op", Blob::payload(64 + i, "x"), None))
            .collect();
        for rx in receivers {
            match rx.recv().expect("reply") {
                JobResult::Ok(_) => {}
                JobResult::Failed(e) => panic!("slo job failed: {e}"),
            }
        }
        c.shutdown();
        let log = c.trace_snapshot().expect("tracing enabled");
        let mut slo = SloAggregator::new(SLO_RATE);
        slo.ingest(&log);
        // Sampling closure: the 1-in-SLO_RATE slice, scaled back up,
        // must account for the admitted batch within a generous band.
        let est = slo.sampled_requests() * u64::from(SLO_RATE);
        assert!(
            (JOBS / 2..=JOBS * 2).contains(&est),
            "sampled-request estimate {est} is not within 2x of {JOBS} admitted jobs"
        );
        slo.to_json_rows("rt")
    };
    let merged = {
        let bench = std::fs::read_to_string(&out).expect("read bench rows");
        let body = |s: &str| {
            s.trim()
                .trim_start_matches('[')
                .trim_end_matches(']')
                .trim_matches('\n')
                .trim_end_matches(',')
                .to_string()
        };
        format!("[\n{},\n{}\n]", body(&bench), body(&slo_rows))
    };
    std::fs::write(&out, merged).expect("write merged rows");

    let row = |name: &str| {
        suite
            .rows()
            .iter()
            .find(|r| r.bench == name)
            .expect("row exists")
            .mean_ns
    };
    println!("-- jobs/sec ({JOBS} jobs per run, zero service time)");
    for workers in pools {
        let ns = row(&format!("submit_1k/workers{workers}"));
        println!(
            "  workers{workers:<2}  {:>12.0} jobs/s",
            JOBS as f64 / (ns / 1e9)
        );
    }
    println!("-- scaling ({SCALE_JOBS} jobs per run, {SERVICE:?} service, shards = workers)");
    let base = row("scaling/workers1");
    for workers in scale_pools {
        let ns = row(&format!("scaling/workers{workers}"));
        println!(
            "  workers{workers:<2}  {:>12.0} jobs/s  ({:.2}x vs 1 worker)",
            SCALE_JOBS as f64 / (ns / 1e9),
            base / ns,
        );
    }
    println!(
        "wrote {} bench + slo rows to {out} (sample rate 1/{SLO_RATE})",
        suite.rows().len()
    );
}
