//! Macro-benchmark of the threaded runtime's submit path: jobs/sec
//! through `RtCluster::submit` → shared `DispatchPlane` lottery →
//! worker thread → reply channel, with `time_scale: 0` so service time
//! is zero and the measurement isolates the control-plane and channel
//! overhead per job.
//!
//! ```sh
//! cargo run -p sns-bench --release --bin rt_throughput [-- OUTPUT.json]
//! ```
//!
//! Rows land in `BENCH_rt.json`; jobs/sec per worker-pool size prints
//! at the end.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use sns_core::msg::{Job, JobResult};
use sns_core::worker::{WorkerError, WorkerLogic};
use sns_core::{Blob, Payload, WorkerClass};
use sns_rt::{RtCluster, RtConfig};
use sns_sim::rng::Pcg32;
use sns_sim::time::SimTime;
use sns_testkit::{BenchConfig, BenchSuite};

/// Jobs per measured run, shared by all pool sizes.
const JOBS: u64 = 1_000;

struct Nop;

impl WorkerLogic for Nop {
    fn class(&self) -> WorkerClass {
        "nop".into()
    }
    fn service_time(&mut self, _j: &Job, _n: SimTime, _r: &mut Pcg32) -> Duration {
        Duration::ZERO
    }
    fn process(&mut self, job: &Job, _n: SimTime, _r: &mut Pcg32) -> Result<Payload, WorkerError> {
        Ok(Blob::payload(job.input.wire_size(), "done"))
    }
}

fn cluster(workers: usize) -> Arc<RtCluster> {
    let c = RtCluster::start(RtConfig {
        time_scale: 0.0,
        report_period: Duration::from_millis(10),
        beacon_period: Duration::from_millis(20),
        seed: 0x6274,
        ..RtConfig::default()
    });
    c.add_workers("nop", workers, || Box::new(Nop));
    c
}

fn main() {
    let out = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_rt.json".to_string());
    // Each run pushes 1k jobs through real threads; small budgets still
    // give one warmup run and at least one measured sample.
    let mut suite = BenchSuite::with_config(
        "rt",
        BenchConfig {
            warmup: Duration::from_millis(1),
            measure: Duration::from_millis(1),
            ..Default::default()
        },
    );
    let pools = [1usize, 4];
    for workers in pools {
        suite.bench_batched(
            &format!("submit_1k/workers{workers}"),
            || cluster(workers),
            |c| {
                let receivers: Vec<_> = (0..JOBS)
                    .map(|i| c.submit("nop", "op", Blob::payload(64 + i, "x"), None))
                    .collect();
                for rx in receivers {
                    match rx.recv().expect("reply") {
                        JobResult::Ok(_) => {}
                        JobResult::Failed(e) => panic!("bench job failed: {e}"),
                    }
                }
                assert_eq!(c.jobs_done.load(Ordering::Relaxed), JOBS);
                c.shutdown();
            },
        );
    }
    suite.write_json(&out).expect("write bench rows");

    println!("-- jobs/sec ({JOBS} jobs per run, zero service time)");
    let row = |name: &str| {
        suite
            .rows()
            .iter()
            .find(|r| r.bench == name)
            .expect("row exists")
            .mean_ns
    };
    for workers in pools {
        let ns = row(&format!("submit_1k/workers{workers}"));
        println!(
            "  workers{workers:<2}  {:>12.0} jobs/s",
            JOBS as f64 / (ns / 1e9)
        );
    }
    println!("wrote {} rows to {out}", suite.rows().len());
}
