//! §5.2: economic feasibility of TranSend.
//!
//! Paper arithmetic reproduced from this implementation's own measured
//! capacities: a US$5,000 Pentium-Pro-class server handles ~750 modems
//! (~15,000 subscribers at the 20:1 subscriber:modem ratio) for marginal
//! cents per user per month; a ≥50% cache hit rate saves 1–2 T1 lines of
//! WAN capacity (~US$3,000/month), paying for the server in about two
//! months.

use sns_bench::{banner, compare};
use sns_distillers::CostModel;

fn main() {
    banner("§5.2 — economic feasibility", "Fox et al., SOSP '97, §5.2");

    // Measured inputs from this implementation.
    let jpeg = CostModel::jpeg();
    let per_req = jpeg.mean(10 * 1024).as_secs_f64();
    let distiller_rps = 1.0 / per_req;
    // A $5000 two-CPU server runs two distillers alongside FE duties.
    let server_rps = 2.0 * distiller_rps;
    // Traced demand: ~15 req/s mean across the 600-modem bank
    // (Figure 6), so 0.025 req/s per modem on average; provision for the
    // measured peak-to-mean burst ratio (~2.5x, Figure 6a).
    let mean_per_modem = 15.0 / 600.0;
    let burst_headroom = 2.5;
    let modems_supported = (server_rps / (mean_per_modem * burst_headroom)).floor();
    let subscribers = modems_supported * 20.0;
    let server_cost = 5000.0;
    let cents_per_user_month = server_cost / 12.0 / subscribers * 100.0;

    println!();
    compare(
        "distiller throughput (10 KB JPEG, req/s)",
        "~23",
        &format!("{distiller_rps:.1}"),
    );
    compare(
        "server capacity (2 CPUs, req/s)",
        "~46",
        &format!("{server_rps:.1}"),
    );
    compare(
        "modems supported per $5000 server (peak-provisioned)",
        "750",
        &format!("{modems_supported:.0}"),
    );
    compare(
        "subscribers at 20:1 ratio",
        "15,000",
        &format!("{subscribers:.0}"),
    );
    compare(
        "amortised marginal cost (¢/user/month, 1 yr)",
        "cents (paper headline: 25¢)",
        &format!("{cents_per_user_month:.1}"),
    );

    // Cache savings: the WAN capacity an installation must buy tracks the
    // modem bank's downstream bandwidth; a >=50% hit rate (§4.4 study)
    // halves it.
    let hit_rate: f64 = 0.50;
    let modem_bps = 28_800.0;
    let utilization = 0.30; // fraction of modems drawing data at once
    let saved_bps = modems_supported * modem_bps * utilization * hit_rate;
    let t1_bps = 1.544e6;
    let t1_saved = saved_bps / t1_bps;
    let t1_monthly_cost = 1500.0; // late-90s per-T1 pricing
    let monthly_savings = t1_saved * t1_monthly_cost;
    let payback_months = server_cost / monthly_savings;

    println!();
    compare(
        "cache hit rate (from the §4.4 study)",
        "≥50%",
        &format!("{:.0}%", hit_rate * 100.0),
    );
    compare(
        "WAN capacity saved (T1 equivalents)",
        "1–2",
        &format!("{t1_saved:.1}"),
    );
    compare(
        "operating savings (US$/month)",
        "~3000",
        &format!("{monthly_savings:.0}"),
    );
    compare(
        "server payback time (months)",
        "~2",
        &format!("{payback_months:.1}"),
    );

    // The user-side benefit that justifies deployment.
    let modem_kbps = 28.8;
    let orig_kb = 12.07; // mean traced JPEG
    let distilled_kb = orig_kb * 0.15; // default scale 2 / quality 25
    let t_orig = orig_kb * 8.0 / modem_kbps;
    let t_dist = distilled_kb * 8.0 / modem_kbps + per_req;
    println!();
    compare(
        "modem transfer time, mean JPEG (s)",
        "(dominates end-to-end)",
        &format!("{t_orig:.1} original vs {t_dist:.1} distilled"),
    );
    compare(
        "end-to-end latency reduction",
        "3–5x",
        &format!("{:.1}x", t_orig / t_dist),
    );
    println!(
        "\nShape check: marginal cost is cents per user per month, the cache pays\n\
         for the hardware within a couple of months, and distillation cuts modem\n\
         transfer times by the paper's 3-5x — the §5.2 feasibility argument."
    );
}
