//! §4.6: manager load-announcement capacity.
//!
//! Paper experiment: "Nine hundred distillers were created on four
//! machines. Each of these distillers generated a load announcement
//! packet for the manager every half a second. The manager was easily
//! able to handle this aggregate load of 1800 announcements per
//! second" — computationally enough for ~18,000 requests/s worth of
//! distillers, three orders of magnitude above the traced peak.

use std::collections::BTreeMap;
use std::time::Duration;

use sns_bench::{banner, compare};
use sns_core::manager::{Manager, ManagerConfig};
use sns_core::msg::{Job, SnsMsg};
use sns_core::worker::{WorkerError, WorkerLogic, WorkerStub, WorkerStubConfig};
use sns_core::{Blob, Payload, SnsConfig, WorkerClass};
use sns_san::{San, SanConfig};
use sns_sim::engine::{NodeSpec, Sim, SimConfig};
use sns_sim::rng::Pcg32;
use sns_sim::time::SimTime;

/// An idle distiller: it only exists to report load.
struct Idle;

impl WorkerLogic for Idle {
    fn class(&self) -> WorkerClass {
        "distiller/idle".into()
    }
    fn service_time(&mut self, _j: &Job, _n: SimTime, _r: &mut Pcg32) -> Duration {
        Duration::from_millis(40)
    }
    fn process(&mut self, _j: &Job, _n: SimTime, _r: &mut Pcg32) -> Result<Payload, WorkerError> {
        Ok(Blob::payload(100, "idle"))
    }
}

fn main() {
    banner(
        "§4.6 — manager load-announcement capacity (900 distillers)",
        "Fox et al., SOSP '97, §4.6",
    );
    let mut sim: Sim<SnsMsg, San> = Sim::new(
        SimConfig::default(),
        San::new(SanConfig::switched_100mbps()),
    );
    // Four very wide machines host the 900 stubs, as in the paper.
    let nodes: Vec<_> = (0..4)
        .map(|_| sim.add_node(NodeSpec::new(256, "dedicated")))
        .collect();
    let infra = sim.add_node(NodeSpec::new(2, "infra"));
    let beacon = sim.create_group();
    let monitor = sim.create_group();

    let manager = sim.spawn(
        infra,
        Box::new(Manager::new(ManagerConfig {
            sns: SnsConfig::default(),
            beacon_group: beacon,
            monitor_group: monitor,
            incarnation: 1,
            classes: BTreeMap::new(),
            fe_factory: None,
        })),
        "manager",
    );
    let n_workers = 900u32;
    for i in 0..n_workers {
        sim.spawn(
            nodes[(i % 4) as usize],
            Box::new(WorkerStub::new(
                Box::new(Idle),
                WorkerStubConfig {
                    beacon_group: beacon,
                    monitor_group: monitor,
                    report_period: Duration::from_millis(500),
                    cost_weight_unit: None,
                },
            )),
            "distiller/idle",
        );
    }

    let horizon = 60u64;
    let wall = std::time::Instant::now();
    sim.run_until(SimTime::from_secs(horizon));
    let wall = wall.elapsed();

    let reports = sim.stats().counter("manager.load_reports");
    let dropped = sim.net().stats().datagrams_dropped;
    // Workers discover the manager via its first beacon (~1 s in), so the
    // effective reporting window is slightly shorter than the horizon.
    let window = horizon as f64 - 2.0;
    let rate = reports as f64 / window;
    println!();
    compare("distillers reporting", "900", &format!("{n_workers}"));
    compare(
        "announcement rate handled (msg/s)",
        "1800",
        &format!("{rate:.0}"),
    );
    compare(
        "announcements lost in the SAN",
        "none observed",
        &format!("{dropped}"),
    );
    compare(
        "equivalent distiller service capacity (req/s)",
        "~18000 (900 × 20+)",
        &format!("{:.0}", f64::from(n_workers) * 23.0),
    );
    compare(
        "beacons emitted (soft-state refresh)",
        "1 per second",
        &format!("{}", sim.stats().counter("manager.beacons")),
    );
    println!(
        "\n(virtual minute simulated in {wall:?} wall-clock; the manager also kept\n\
         advertising all 900 workers in every beacon without backlog)"
    );
    let _ = manager;
    println!(
        "\nShape check: the centralised manager is three orders of magnitude away\n\
         from being the bottleneck — the paper's argument for centralising the\n\
         load-balancing policy (§2.2.2)."
    );
}
