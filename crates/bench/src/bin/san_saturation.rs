//! §4.6: SAN saturation and the loss of control traffic.
//!
//! Paper: "we repeated the scalability experiments using a 10 Mb/s
//! switched Ethernet. As the network was driven closer to saturation,
//! we noticed that most of our (unreliable) multicast traffic was being
//! dropped, crippling the ability of the manager to balance load and the
//! ability of the monitor to report system conditions." On the 100 Mb/s
//! SAN the same offered load leaves the interior comfortably idle.

use std::time::Duration;

use sns_bench::{banner, compare, ramp_workload, warmup_workload};
use sns_san::SanConfig;
use sns_sim::time::SimTime;
use sns_transend::{TranSendBuilder, TranSendConfig};

struct Outcome {
    beacon_drops: u64,
    datagram_drops: u64,
    load_reports: u64,
    stub_timeouts: u64,
    completed: f64,
    p95: f64,
}

fn run(san: SanConfig) -> Outcome {
    let n_objects = 40;
    let rate = 48.0;
    let mut cluster = TranSendBuilder::new()
        .with_seed(0x5a71)
        .with_san(san)
        .with_worker_nodes(8)
        .with_overflow_nodes(2)
        .with_cores_per_node(2)
        .with_frontends(1)
        .with_cache_partitions(4)
        .with_min_distillers(2)
        .with_distillers(["jpeg"])
        .with_origin_penalty_scale(0.05)
        .with_ts(TranSendConfig {
            cache_distilled: false,
            ..Default::default()
        })
        .build();
    let mut items = warmup_workload(n_objects, 10 * 1024, Duration::from_millis(50));
    let mut load = ramp_workload(&[(95.0, rate)], n_objects, 10 * 1024, 7);
    load.retain(|(at, _)| at.as_secs_f64() > 6.0);
    let offered = load.len() as u64 + n_objects as u64;
    items.extend(load);
    let report = cluster.attach_client(items, Duration::from_secs(3));
    cluster.sim.run_until(SimTime::from_secs(120));

    let mut r = report.borrow_mut();
    Outcome {
        beacon_drops: cluster.sim.stats().counter("net.multicast_dropped"),
        datagram_drops: cluster.sim.net().stats().datagrams_dropped,
        load_reports: cluster.sim.stats().counter("manager.load_reports"),
        stub_timeouts: cluster.sim.stats().counter("stub.timeouts"),
        completed: r.responses as f64 / offered as f64,
        p95: r.latency.quantile(0.95),
    }
}

fn main() {
    banner(
        "§4.6 — SAN saturation: 10 Mb/s shared segment vs switched 100 Mb/s",
        "Fox et al., SOSP '97, §4.6",
    );
    println!("\nworkload: 48 req/s of 10 KB JPEG distillation for 90 s\n");

    let fast = run(SanConfig::switched_100mbps());
    let slow = run(SanConfig::shared_10mbps());

    println!("switched 100 Mb/s SAN:");
    compare(
        "multicast (beacon/report) drops",
        "none",
        &format!("{}", fast.beacon_drops),
    );
    compare(
        "datagram drops at links",
        "none",
        &format!("{}", fast.datagram_drops),
    );
    compare(
        "load reports reaching manager",
        "all",
        &format!("{}", fast.load_reports),
    );
    compare(
        "dispatch timeouts",
        "few",
        &format!("{}", fast.stub_timeouts),
    );
    compare(
        "requests completed",
        "100%",
        &format!("{:.1}%", fast.completed * 100.0),
    );
    compare("p95 latency (s)", "bounded", &format!("{:.2}", fast.p95));

    println!("\nshared 10 Mb/s SAN (near saturation):");
    compare(
        "multicast (beacon/report) drops",
        "\"most multicast traffic dropped\"",
        &format!("{}", slow.beacon_drops),
    );
    compare(
        "datagram drops at links",
        "heavy",
        &format!("{}", slow.datagram_drops),
    );
    compare(
        "load reports reaching manager",
        "starved",
        &format!(
            "{} (vs {} on fast SAN)",
            slow.load_reports, fast.load_reports
        ),
    );
    compare(
        "dispatch timeouts",
        "elevated (stale balance)",
        &format!("{}", slow.stub_timeouts),
    );
    compare(
        "requests completed",
        "degraded",
        &format!("{:.1}%", slow.completed * 100.0),
    );
    compare("p95 latency (s)", "blows up", &format!("{:.2}", slow.p95));

    println!(
        "\nShape check: the same offered load that the switched 100 Mb/s SAN carries\n\
         cleanly drives the shared 10 Mb/s segment into dropping the soft-state\n\
         control traffic — exactly the failure mode that motivated the paper's\n\
         suggestion of a separate low-speed utility network (§4.6)."
    );
}
