//! Table 1: the structural differences between TranSend and HotBot,
//! printed from the two services' actual configurations.

use sns_bench::banner;
use sns_transend::config::render_table1;

fn main() {
    banner(
        "Table 1 — main differences between TranSend and HotBot",
        "Fox et al., SOSP '97, §3 Table 1",
    );
    println!("{}", render_table1());
    println!(
        "Both services share the SNS layer (manager, stubs, beacons, process-peer\n\
         fault tolerance); the table captures where their service/TACC layers and\n\
         data layouts deliberately diverge (§3.3)."
    );
}
