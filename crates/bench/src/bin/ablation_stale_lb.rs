//! §4.5 ablation: load balancing on raw stale reports vs the queue-delta
//! correction.
//!
//! Paper: "When we first ran this experiment, we noticed rapid
//! oscillations in queue lengths … the front end's manager stubs only
//! periodically received distiller queue length reports \[and\] were
//! making load balancing decisions based on stale data. To repair this,
//! we changed the manager stub to keep a running estimate of the change
//! in distiller queue lengths between successive reports; these
//! estimates were sufficient to eliminate the oscillations."

use std::time::Duration;

use sns_bench::{banner, compare, ramp_workload, series_buckets, sparkline, warmup_workload};
use sns_sim::time::SimTime;
use sns_transend::{TranSendBuilder, TranSendConfig};

struct Outcome {
    /// Mean absolute per-bucket change of each distiller queue (the
    /// oscillation measure).
    oscillation: f64,
    /// Mean across distillers of time-averaged queue length.
    mean_queue: f64,
    p95_latency: f64,
    sparklines: Vec<(String, String)>,
}

fn run(delta_correction: bool) -> Outcome {
    let n_objects = 40;
    let mut cluster = TranSendBuilder::new()
        .with_seed(0xab1a7e)
        .with_worker_nodes(8)
        .with_overflow_nodes(2)
        .with_cores_per_node(2)
        .with_frontends(1)
        .with_cache_partitions(2)
        .with_min_distillers(3)
        .with_distillers(["jpeg"])
        .with_origin_penalty_scale(0.05)
        .with_delta_correction(delta_correction)
        .with_ts(TranSendConfig {
            cache_distilled: false,
            ..Default::default()
        })
        .build();
    // Steady 55 req/s across 3 distillers: high enough that misrouting a
    // beacon interval's worth of work visibly swings the queues.
    let mut items = warmup_workload(n_objects, 10 * 1024, Duration::from_millis(50));
    let mut load = ramp_workload(&[(100.0, 55.0)], n_objects, 10 * 1024, 13);
    load.retain(|(at, _)| at.as_secs_f64() > 6.0);
    items.extend(load);
    let report = cluster.attach_client(items, Duration::from_secs(3));
    cluster.sim.run_until(SimTime::from_secs(125));

    let stats = cluster.sim.stats();
    let mut oscillation_sum = 0.0;
    let mut queue_sum = 0.0;
    let mut series_n = 0usize;
    let mut sparklines = Vec::new();
    for (name, series) in stats.all_series() {
        let Some(id) = name.strip_prefix("worker.qlen.distiller/jpeg.") else {
            continue;
        };
        let (_, vals) = series_buckets(series, 60);
        if vals.len() < 10 {
            continue;
        }
        let osc: f64 =
            vals.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (vals.len() - 1) as f64;
        oscillation_sum += osc;
        queue_sum += series.time_weighted_mean();
        series_n += 1;
        sparklines.push((id.to_string(), sparkline(&vals)));
    }
    let mut r = report.borrow_mut();
    Outcome {
        oscillation: oscillation_sum / series_n.max(1) as f64,
        mean_queue: queue_sum / series_n.max(1) as f64,
        p95_latency: r.latency.quantile(0.95),
        sparklines,
    }
}

fn main() {
    banner(
        "§4.5 ablation — stale-report load balancing vs queue-delta correction",
        "Fox et al., SOSP '97, §4.5 (the oscillation anecdote)",
    );

    let with = run(true);
    let without = run(false);

    println!("\nqueue lengths WITH the delta correction (3 distillers, 55 req/s):");
    for (id, line) in &with.sparklines {
        println!("  {id:>5} {line}");
    }
    println!("\nqueue lengths WITHOUT the correction (raw stale reports):");
    for (id, line) in &without.sparklines {
        println!("  {id:>5} {line}");
    }

    println!();
    compare(
        "queue oscillation (mean |Δq| per 2 s)",
        "rapid oscillations without the fix",
        &format!(
            "{:.2} with vs {:.2} without",
            with.oscillation, without.oscillation
        ),
    );
    compare(
        "time-averaged queue length",
        "lower once fixed",
        &format!(
            "{:.2} with vs {:.2} without",
            with.mean_queue, without.mean_queue
        ),
    );
    compare(
        "p95 latency (s)",
        "improves with the fix",
        &format!(
            "{:.2} with vs {:.2} without",
            with.p95_latency, without.p95_latency
        ),
    );
    println!(
        "\nShape check: without the correction every front end dumps a whole beacon\n\
         interval's worth of work on whichever distiller last reported the shortest\n\
         queue, swinging the queues in lockstep; the running delta estimate\n\
         eliminates the oscillation (§4.5)."
    );
}
