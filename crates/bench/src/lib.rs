//! # sns-bench — experiment harnesses for every table and figure
//!
//! One binary per paper artefact (see `DESIGN.md` §3 for the index):
//!
//! ```text
//! cargo run -p sns-bench --release --bin fig5_size_dist
//! cargo run -p sns-bench --release --bin fig6_burstiness
//! cargo run -p sns-bench --release --bin fig7_distill_latency
//! cargo run -p sns-bench --release --bin fig8_self_tuning
//! cargo run -p sns-bench --release --bin table1_comparison
//! cargo run -p sns-bench --release --bin table2_scalability
//! cargo run -p sns-bench --release --bin cache_perf
//! cargo run -p sns-bench --release --bin manager_capacity
//! cargo run -p sns-bench --release --bin san_saturation
//! cargo run -p sns-bench --release --bin hotbot_degradation
//! cargo run -p sns-bench --release --bin ablation_stale_lb
//! cargo run -p sns-bench --release --bin economics
//! ```
//!
//! This library holds the shared report-formatting and workload helpers.

use std::time::Duration;

use sns_sim::stats::Series;
use sns_workload::trace::TraceRecord;
use sns_workload::MimeType;

/// Prints an experiment banner.
pub fn banner(title: &str, paper_ref: &str) {
    println!("{}", "=".repeat(78));
    println!("{title}");
    println!("reproduces: {paper_ref}");
    println!("{}", "=".repeat(78));
}

/// Prints one paper-vs-measured comparison row.
pub fn compare(metric: &str, paper: &str, measured: &str) {
    println!("  {metric:<46} paper: {paper:<18} measured: {measured}");
}

/// Renders values as a one-line unicode sparkline.
pub fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().cloned().fold(f64::MIN, f64::max);
    let min = values.iter().cloned().fold(f64::MAX, f64::min);
    let span = (max - min).max(1e-12);
    values
        .iter()
        .map(|v| BARS[(((v - min) / span) * 7.0).round() as usize])
        .collect()
}

/// Renders a horizontal ASCII bar chart of `(label, value)` rows.
pub fn bar_chart(rows: &[(String, f64)], width: usize) {
    let max = rows.iter().map(|r| r.1).fold(f64::MIN, f64::max).max(1e-12);
    for (label, v) in rows {
        let n = ((v / max) * width as f64).round() as usize;
        println!("  {label:<22} {:<width$} {v:.4}", "#".repeat(n));
    }
}

/// Least-squares linear fit; returns `(slope, intercept)`.
pub fn fit_linear(points: &[(f64, f64)]) -> (f64, f64) {
    let n = points.len() as f64;
    assert!(n >= 2.0, "need at least two points");
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
    let intercept = (sy - slope * sx) / n;
    (slope, intercept)
}

/// Downsamples a time series into `buckets` means for sparkline display;
/// returns `(bucket_seconds, values)`.
pub fn series_buckets(series: &Series, buckets: usize) -> (f64, Vec<f64>) {
    let pts = series.points();
    if pts.is_empty() {
        return (0.0, Vec::new());
    }
    let t0 = pts[0].0.as_secs_f64();
    let t1 = pts[pts.len() - 1].0.as_secs_f64();
    let span = (t1 - t0).max(1e-9);
    let w = span / buckets as f64;
    let mut sums = vec![0.0; buckets];
    let mut counts = vec![0u32; buckets];
    for &(t, v) in pts {
        let i = (((t.as_secs_f64() - t0) / w) as usize).min(buckets - 1);
        sums[i] += v;
        counts[i] += 1;
    }
    let vals = sums
        .iter()
        .zip(&counts)
        .map(|(&s, &c)| if c == 0 { 0.0 } else { s / f64::from(c) })
        .collect();
    (w, vals)
}

/// Builds a retimed request list at a piecewise-linear offered-load ramp:
/// `(until_seconds, rate_rps)` segments, with a fixed working set of JPEG
/// objects (the Table 2 / Figure 8 style workload).
pub fn ramp_workload(
    segments: &[(f64, f64)],
    n_objects: usize,
    object_size: u64,
    seed: u64,
) -> Vec<(Duration, TraceRecord)> {
    let mut rng = sns_sim::rng::Pcg32::new(seed);
    let mut out = Vec::new();
    let mut t = 0.0f64;
    let mut seg_start = 0.0f64;
    for &(until, rate) in segments {
        if rate <= 0.0 {
            t = until;
            seg_start = until;
            continue;
        }
        let _ = seg_start;
        while t < until {
            t += rng.exp(1.0 / rate);
            if t >= until {
                break;
            }
            let obj = rng.below(n_objects as u64);
            out.push((
                Duration::from_secs_f64(t),
                TraceRecord {
                    at: Duration::from_secs_f64(t),
                    user: (obj % 97) as u32,
                    url: format!("http://fixed/obj{obj}.jpg"),
                    mime: MimeType::Jpeg,
                    size: object_size,
                },
            ));
        }
        seg_start = until;
    }
    out
}

/// A warm-up pass touching every object in the fixed working set once
/// (pre-loads originals into the cache), spaced at `gap`.
pub fn warmup_workload(
    n_objects: usize,
    object_size: u64,
    gap: Duration,
) -> Vec<(Duration, TraceRecord)> {
    (0..n_objects)
        .map(|obj| {
            let at = gap * obj as u32;
            (
                at,
                TraceRecord {
                    at,
                    user: (obj % 97) as u32,
                    url: format!("http://fixed/obj{obj}.jpg"),
                    mime: MimeType::Jpeg,
                    size: object_size,
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_fit_recovers_line() {
        let pts: Vec<(f64, f64)> = (0..50).map(|i| (i as f64, 3.0 * i as f64 + 7.0)).collect();
        let (m, b) = fit_linear(&pts);
        assert!((m - 3.0).abs() < 1e-9);
        assert!((b - 7.0).abs() < 1e-9);
    }

    #[test]
    fn ramp_rates_are_respected() {
        let items = ramp_workload(&[(10.0, 5.0), (20.0, 20.0)], 10, 1000, 1);
        let first: usize = items
            .iter()
            .filter(|(at, _)| at.as_secs_f64() < 10.0)
            .count();
        let second = items.len() - first;
        assert!((first as f64 - 50.0).abs() < 25.0, "seg1 {first}");
        assert!((second as f64 - 200.0).abs() < 60.0, "seg2 {second}");
        assert!(items.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn sparkline_has_one_char_per_value() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        assert_eq!(s.chars().count(), 3);
    }

    #[test]
    fn warmup_touches_each_object_once() {
        let w = warmup_workload(20, 500, Duration::from_millis(10));
        assert_eq!(w.len(), 20);
        let urls: std::collections::BTreeSet<_> = w.iter().map(|(_, r)| r.url.clone()).collect();
        assert_eq!(urls.len(), 20);
    }
}
