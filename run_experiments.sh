#!/usr/bin/env bash
# Regenerates every table and figure from the paper (see EXPERIMENTS.md).
# Outputs are written to target/experiment-logs/.
set -euo pipefail
mkdir -p target/experiment-logs
bins=(
  fig5_size_dist fig6_burstiness fig7_distill_latency fig8_self_tuning
  table1_comparison table2_scalability cache_perf manager_capacity
  san_saturation hotbot_degradation ablation_stale_lb economics
)
for b in "${bins[@]}"; do
  echo "== $b"
  cargo run -q -p sns-bench --release --bin "$b" | tee "target/experiment-logs/$b.txt"
done
echo "== micro"
cargo run -q -p sns-bench --release --bin micro -- target/experiment-logs/BENCH_micro.json \
  | tee target/experiment-logs/micro.txt
