//! The same TACC worker code on real OS threads: `sns-rt` runs the
//! distillers from `sns-distillers` (unchanged) behind channel-connected
//! worker threads with load reports, lottery scheduling and process-peer
//! restarts — no simulator involved.
//!
//! ```sh
//! cargo run --release --example realtime_cluster
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use cluster_sns::core::msg::JobResult;
use cluster_sns::core::payload_as;
use cluster_sns::distillers::{GifDistiller, HtmlMunger};
use cluster_sns::rt::{RtCluster, RtConfig};
use cluster_sns::tacc::content::{synth_html, ContentObject};
use cluster_sns::tacc::worker::TaccWorkerHost;
use cluster_sns::workload::MimeType;

fn main() {
    // run the modelled hardware 5x faster
    let cluster = RtCluster::start(RtConfig::new().with_time_scale(0.2));
    // The *identical* worker implementations the simulator uses:
    cluster.add_workers("distiller/gif", 3, || {
        Box::new(TaccWorkerHost::transformer(
            Box::new(GifDistiller::new()),
            BTreeMap::new(),
        ))
    });
    cluster.add_workers("distiller/html", 2, || {
        Box::new(TaccWorkerHost::transformer(
            Box::new(HtmlMunger::new()),
            BTreeMap::new(),
        ))
    });
    println!(
        "started {} GIF + {} HTML distiller threads",
        cluster.workers_of("distiller/gif"),
        cluster.workers_of("distiller/html")
    );

    // Push a batch of real work through.
    let t0 = Instant::now();
    let mut gif_rx = Vec::new();
    for i in 0..40 {
        let img = ContentObject::synthetic(format!("http://h/{i}.gif"), MimeType::Gif, 8_192);
        gif_rx.push(cluster.submit("distiller/gif", "transform", img.into_payload(), None));
    }
    let words: Vec<&str> = "real threads crunching real markup just like the simulator said"
        .split(' ')
        .collect();
    let page = ContentObject::text(
        "http://h/page",
        MimeType::Html,
        synth_html("http://h/page", 3, &words),
    );
    let html_rx = cluster.submit("distiller/html", "transform", page.into_payload(), None);

    let mut bytes_in = 0u64;
    let mut bytes_out = 0u64;
    for rx in gif_rx {
        match rx.recv_timeout(Duration::from_secs(30)).expect("reply") {
            JobResult::Ok(p) => {
                let obj = payload_as::<ContentObject>(&p).expect("content");
                bytes_in += 8_192;
                bytes_out += obj.len();
            }
            JobResult::Failed(e) => panic!("gif job failed: {e}"),
        }
    }
    let munged = match html_rx
        .recv_timeout(Duration::from_secs(30))
        .expect("reply")
    {
        JobResult::Ok(p) => payload_as::<ContentObject>(&p).expect("content").clone(),
        JobResult::Failed(e) => panic!("html job failed: {e}"),
    };

    println!(
        "distilled 40 GIFs: {bytes_in} → {bytes_out} bytes ({:.0}% saved) in {:?} wall-clock",
        100.0 * (1.0 - bytes_out as f64 / bytes_in as f64),
        t0.elapsed()
    );
    println!(
        "HTML munger marked {} image refs and injected the toolbar",
        munged
            .meta
            .get("images_marked")
            .map(String::as_str)
            .unwrap_or("?")
    );
    println!(
        "jobs done: {}   crashes: {}   restarts: {}",
        cluster.jobs_done.load(Ordering::Relaxed),
        cluster.crashes.load(Ordering::Relaxed),
        cluster.restarts.load(Ordering::Relaxed),
    );
    cluster.shutdown();
    println!("clean shutdown — same code, real threads.");
}
