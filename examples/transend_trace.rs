//! Trace-driven TranSend session with the paper's bursty diurnal
//! arrival process, fault injection, and a monitor snapshot at the end.
//!
//! ```sh
//! cargo run --release --example transend_trace
//! # Also capture a request trace (see OBSERVABILITY.md):
//! cargo run --release --example transend_trace -- transend.trace.json
//! ```
//!
//! With an output path the run records every request as a span tree and
//! writes a Chrome `trace_event` file loadable in `chrome://tracing` or
//! https://ui.perfetto.dev.

use std::time::Duration;

use cluster_sns::core::trace::to_chrome;
use cluster_sns::sim::SimTime;
use cluster_sns::transend::TranSendBuilder;
use cluster_sns::workload::bursts::ArrivalProcess;
use cluster_sns::workload::playback::{Playback, Schedule};
use cluster_sns::workload::trace::{TraceGenerator, WorkloadConfig};

fn main() {
    let trace_out = std::env::args().nth(1);
    let mut cluster = TranSendBuilder::new()
        .with_tracing(trace_out.is_some())
        .with_worker_nodes(8)
        .with_overflow_nodes(2)
        .with_frontends(2)
        .with_cache_partitions(4)
        .with_min_distillers(1)
        .with_origin_penalty_scale(0.1)
        // Some registered users with custom preferences.
        .with_profiles(vec![
            (
                "u3".into(),
                vec![
                    ("quality".into(), "10".into()),
                    ("scale".into(), "4".into()),
                ],
            ),
            (
                "u7".into(),
                vec![("keywords".into(), "network, cluster".into())],
            ),
        ])
        .build();

    // 20 minutes of the Figure 6 bursty arrival process, accelerated 2x.
    let mut gen = TraceGenerator::new(WorkloadConfig {
        users: 400,
        shared_objects: 3000,
        private_per_user: 40,
        ..Default::default()
    });
    let process = ArrivalProcess::paper_default(17);
    let trace = gen.bursty(&process, Duration::from_secs(20 * 60));
    let items: Vec<_> = Playback::new(&trace, Schedule::Accelerated(2.0))
        .map(|(at, r)| (at, r.clone()))
        .collect();
    println!(
        "playing {} bursty requests (20 traced minutes at 2x)…",
        items.len()
    );
    let report = cluster.attach_client(items, Duration::from_secs(4));

    // Fault injection while the trace runs: kill a cache partition and a
    // distiller; the SNS layer absorbs both.
    cluster.sim.at(SimTime::from_secs(180), |sim| {
        if let Some(&c) = sim
            .components_of_kind(cluster_sns::core::intern_class("cache"))
            .first()
        {
            println!("[t=180s] killing a cache partition (BASE data — only a perf hit)");
            sim.kill_component(c);
        }
    });
    cluster.sim.at(SimTime::from_secs(300), |sim| {
        if let Some(&d) = sim
            .components_of_kind(cluster_sns::core::intern_class("distiller/gif"))
            .first()
        {
            println!("[t=300s] killing a GIF distiller (process peers restart it)");
            sim.kill_component(d);
        }
    });

    cluster.sim.run_until(SimTime::from_secs(1000));

    let mut r = report.borrow_mut();
    println!("\n== results ==");
    println!("responses           : {} / {} sent", r.responses, r.sent);
    println!("errors              : {}", r.errors);
    println!("degraded responses  : {}", r.degraded);
    println!("byte savings        : {:.0}%", r.savings() * 100.0);
    println!(
        "latency mean / p95  : {:.0} ms / {:.0} ms",
        r.latency.mean() * 1e3,
        r.latency.quantile(0.95) * 1e3
    );

    let stats = cluster.sim.stats();
    let hits = stats.counter("ts.cache_hit_final") + stats.counter("ts.cache_hit_orig");
    let lookups = hits + stats.counter("ts.cache_miss");
    println!(
        "cache hit rate      : {:.0}% ({} of {} lookups)",
        100.0 * hits as f64 / lookups.max(1) as f64,
        hits,
        lookups
    );
    println!(
        "fault recovery      : {} spawns, {} worker deaths seen by manager",
        stats.counter("manager.spawns"),
        stats.counter("manager.worker_deaths")
    );
    println!(
        "monitor             : {} events, {} operator pages",
        stats.counter("monitor.events"),
        stats.counter("monitor.pages")
    );

    if let Some(path) = trace_out {
        let log = cluster.trace().expect("tracing was enabled");
        std::fs::write(&path, to_chrome(&log)).expect("write trace file");
        println!(
            "trace               : {} spans → {path} (load in chrome://tracing or ui.perfetto.dev)",
            log.len()
        );
    }
}
