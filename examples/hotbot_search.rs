//! HotBot: partitioned search with a node failure mid-run — the 54M→51M
//! graceful-degradation story at laptop scale.
//!
//! ```sh
//! cargo run --release --example hotbot_search
//! ```

use std::time::Duration;

use cluster_sns::hotbot::HotBotBuilder;
use cluster_sns::sim::SimTime;

fn main() {
    let mut cluster = HotBotBuilder::new()
        .with_partitions(26)
        .with_corpus_docs(5_400)
        .with_frontends(2)
        .build();
    println!(
        "indexed {} synthetic documents across {} partitions (one node each)",
        cluster.total_docs(),
        cluster.partition_nodes.len()
    );

    let report = cluster.attach_client(12.0, 800, Duration::from_secs(5));

    // One of the 26 nodes dies for 30 virtual seconds, then fast-restarts.
    let victim = cluster.partition_nodes[7];
    let lost = cluster.docs_per_partition[7];
    let total = cluster.total_docs();
    cluster.sim.at(SimTime::from_secs(25), move |sim| {
        println!(
            "[t=25s] node failure: searchable corpus drops {total} → {}",
            total - lost
        );
        sim.kill_node(victim);
    });
    cluster.sim.at(SimTime::from_secs(55), move |sim| {
        println!("[t=55s] fast restart: the partition re-registers and coverage recovers");
        sim.revive_node(victim);
    });

    cluster.sim.run_until(SimTime::from_secs(110));

    let mut r = report.borrow_mut();
    println!("\n== results ==");
    println!(
        "queries answered    : {} / {} (errors: {})",
        r.answered, r.sent, r.errors
    );
    println!(
        "full / partial cov. : {} / {}",
        r.full_coverage, r.partial_coverage
    );
    println!("worst coverage      : {:.1}%", r.min_coverage * 100.0);
    println!("results per query   : {:.1} mean", r.results.mean());
    println!(
        "query latency       : {:.0} ms mean, {:.0} ms p95",
        r.latency.mean() * 1e3,
        r.latency.quantile(0.95) * 1e3
    );
    println!(
        "\nNo query failed: during the outage HotBot answered from the surviving\n\
         25 partitions with ~96% of the corpus — a BASE approximate answer\n\
         delivered quickly instead of an exact answer delivered late (§1.4, §3.2)."
    );
}
