//! A fault-plan walkthrough: one declarative `FaultPlan` drives worker
//! crashes, a manager failover, a SAN partition and a beacon-loss burst
//! against a live TranSend cluster, while a monitor tap records the
//! event stream for the recovery-invariant checkers.
//!
//! ```sh
//! cargo run --release --example chaos_demo
//! ```

use std::time::Duration;

use cluster_sns::chaos::{
    check_death_reconciliation, CrashBudget, FaultKind, FaultPlan, RespawnCoverage, SimChaos,
    SimChaosConfig,
};
use cluster_sns::core::MonitorTap;
use cluster_sns::sim::SimTime;
use cluster_sns::transend::TranSendBuilder;
use cluster_sns::workload::playback::{Playback, Schedule};
use cluster_sns::workload::trace::{TraceGenerator, WorkloadConfig};

fn main() {
    let mut cluster = TranSendBuilder::new()
        .with_worker_nodes(6)
        .with_overflow_nodes(1)
        .with_frontends(1)
        .with_cache_partitions(2)
        .with_min_distillers(1)
        .with_origin_penalty_scale(0.1)
        .build();

    // Tap the monitor multicast group: the recorded log is what the
    // invariant checkers replay after the run.
    let infra = cluster.sim.nodes_with_tag("infra")[0];
    let (tap, log) = MonitorTap::new(cluster.monitor_group);
    cluster.sim.spawn(infra, Box::new(tap), "montap");

    // 90 s of steady load so faults land while requests are in flight.
    let mut gen = TraceGenerator::new(WorkloadConfig {
        users: 60,
        shared_objects: 200,
        private_per_user: 10,
        ..Default::default()
    });
    let t = gen.constant_rate(4.0, Duration::from_secs(90));
    let items: Vec<_> = Playback::new(&t, Schedule::Timestamps)
        .map(|(at, r)| (at, r.clone()))
        .collect();
    let n = items.len() as u64;
    let report = cluster.attach_client(items, Duration::from_secs(4));

    // The declarative schedule — the same artifact the sim- and
    // rt-backend injectors both compile.
    let plan = FaultPlan::new()
        .with(
            Duration::from_secs(15),
            FaultKind::KillWorker {
                class: "cache".into(),
                which: 0,
            },
        )
        .with(Duration::from_secs(25), FaultKind::KillManager)
        .with(
            Duration::from_secs(40),
            FaultKind::Partition {
                pool: "dedicated".into(),
                which: 1,
                heal_after: Duration::from_secs(10),
            },
        )
        .with(
            Duration::from_secs(60),
            FaultKind::BeaconLoss {
                lasting: Duration::from_secs(2),
            },
        )
        .with(
            Duration::from_secs(70),
            FaultKind::Straggler {
                pool: "overflow".into(),
                which: 0,
                slowdown: 10,
                lasting: Duration::from_secs(5),
            },
        );
    println!("fault plan:\n{plan}\n");

    let chaos = SimChaos::install(&mut cluster.sim, &plan, SimChaosConfig::default());
    cluster
        .sim
        .run_until(SimTime::ZERO + plan.horizon(Duration::from_secs(120)));

    println!("== injections ==");
    for inj in chaos.injections() {
        println!(
            "  [{inj_at}] {what} {status}",
            inj_at = inj.at,
            what = inj.what,
            status = if inj.applied { "applied" } else { "skipped" }
        );
    }

    let r = report.borrow();
    println!("\n== service under chaos ==");
    println!("responses : {} / {n}", r.responses);
    println!("errors    : {}", r.errors);
    drop(r);

    let log = log.borrow();
    println!("\n== invariants over {} monitor events ==", log.len());
    let mut coverage = RespawnCoverage::new(7); // 6 boot spawns + the killed cache
    let mut crash_budget = CrashBudget::new(0); // no input-induced crashes configured
    for inv in [log.check(&mut coverage), log.check(&mut crash_budget)] {
        match inv {
            Ok(()) => println!("  ok"),
            Err(e) => println!("  VIOLATED: {e}"),
        }
    }
    let stale = chaos.stale_routing_violations(&log);
    println!(
        "  stale-routing probe: {}",
        if stale.is_empty() {
            "ok".into()
        } else {
            format!("{stale:?}")
        }
    );
    // Reaps are manager-sanctioned deaths (surplus after the partition
    // heals), so they are slack, not violations.
    let reaped = log.count("reaped") as u64;
    let stats = cluster.sim.stats();
    match check_death_reconciliation(stats.counter("sim.deaths"), plan.kills() as u64, reaped) {
        Ok(()) => println!(
            "  death reconciliation: ok ({} kills, {reaped} sanctioned reaps)",
            plan.kills()
        ),
        Err(e) => println!("  death reconciliation VIOLATED: {e}"),
    }
    println!(
        "\nchaos counters: injected={} skipped={}",
        stats.counter("chaos.injected"),
        stats.counter("chaos.skipped")
    );
}
