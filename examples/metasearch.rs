//! TACC composition at the library level: the §5.1 metasearch service
//! (collate results from several engines) chained with the per-user
//! keyword filter, plus the anonymous-rewebber pair — three of the
//! paper's example services built from composable, stateless workers.
//!
//! ```sh
//! cargo run --release --example metasearch
//! ```

use std::collections::BTreeMap;

use cluster_sns::distillers::{
    KeywordFilter, MetasearchAggregator, RewebberDecrypt, RewebberEncrypt,
};
use cluster_sns::sim::Pcg32;
use cluster_sns::tacc::content::{Body, ContentObject};
use cluster_sns::tacc::worker::{Aggregator, TaccArgs, TaccWorker};
use cluster_sns::workload::MimeType;

fn engine_page(engine: &str, results: &[(&str, &str)]) -> ContentObject {
    let body: String = results.iter().map(|(t, u)| format!("{t}\t{u}\n")).collect();
    ContentObject::text(engine, MimeType::Other, body)
}

fn main() {
    let mut rng = Pcg32::new(1);

    // --- Aggregation: collate three engines' result pages. -------------
    let engines = vec![
        engine_page(
            "hotbot",
            &[
                (
                    "Cluster-Based Scalable Network Services",
                    "http://sosp/fox97",
                ),
                ("BASE semantics explained", "http://base/intro"),
                ("Commodity workstation clusters", "http://now/overview"),
            ],
        ),
        engine_page(
            "altavista",
            &[
                (
                    "Cluster-Based Scalable Network Services",
                    "http://sosp/fox97",
                ),
                ("TACC programming model", "http://tacc/model"),
            ],
        ),
        engine_page(
            "excite",
            &[("Harvest object cache", "http://harvest/cache")],
        ),
    ];
    let mut meta = MetasearchAggregator::new();
    let args = TaccArgs::from_map(BTreeMap::from([
        ("query".to_string(), "scalable network services".to_string()),
        ("max_results".to_string(), "10".to_string()),
    ]));
    let page = meta
        .aggregate(&engines, &args, &mut rng)
        .expect("collation");
    println!(
        "metasearch: {} engines → {} deduplicated results",
        page.meta["engines"], page.meta["results"]
    );

    // --- Customisation: chain the keyword filter (per-user profile). ---
    let mut filter = KeywordFilter::new();
    let user_args = TaccArgs::from_map(BTreeMap::from([(
        "keywords".to_string(),
        "cluster, cache".to_string(),
    )]));
    let mut page_html = page.clone();
    page_html.mime = MimeType::Html;
    let highlighted = filter
        .transform(&page_html, &user_args, &mut rng)
        .expect("filtering");
    println!(
        "keyword filter: {} matches highlighted for this user",
        highlighted.meta["keyword_hits"]
    );
    if let Body::Text(t) = &highlighted.body {
        let preview: String = t.lines().skip(2).take(4).collect::<Vec<_>>().join("\n");
        println!("\n--- page preview ---\n{preview}\n--------------------");
    }

    // --- The rewebber pair: encrypt for anonymous publishing, decrypt
    //     on retrieval (same worker API, per-user keys). ----------------
    let mut enc = RewebberEncrypt::new();
    let mut dec = RewebberDecrypt::new();
    let key_args = TaccArgs::from_map(BTreeMap::from([(
        "key".to_string(),
        "user-7-public-key".to_string(),
    )]));
    let hidden = enc
        .transform(&highlighted, &key_args, &mut rng)
        .expect("encrypt");
    println!(
        "\nrewebber: page sealed to {} opaque bytes (lineage {:?})",
        hidden.len(),
        hidden.lineage
    );
    let opened = dec
        .transform(&hidden, &key_args, &mut rng)
        .expect("decrypt");
    assert_eq!(
        match (&opened.body, &highlighted.body) {
            (Body::Text(a), Body::Text(b)) => (a, b),
            _ => panic!("text bodies"),
        }
        .0,
        match &highlighted.body {
            Body::Text(b) => b,
            _ => unreachable!(),
        }
    );
    println!("rewebber: decrypted page matches the original exactly");
    println!(
        "\nEvery stage above is a stateless TACC worker: in the cluster they run\n\
         behind worker stubs, are load-balanced by queue length, restarted on\n\
         crashes, and receive each user's profile with every request (§2.3, §5.1)."
    );
}
