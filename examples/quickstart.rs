//! Quickstart: build a small TranSend cluster, push a handful of
//! requests through it, and look at what came back.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::time::Duration;

use cluster_sns::sim::SimTime;
use cluster_sns::transend::TranSendBuilder;
use cluster_sns::workload::playback::{Playback, Schedule};
use cluster_sns::workload::trace::{TraceGenerator, WorkloadConfig};

fn main() {
    // 1. Describe the cluster: worker nodes, front ends, cache
    //    partitions, which distillers exist. Everything else (manager,
    //    monitor, profile DB, origin model) comes with it.
    let mut cluster = TranSendBuilder::new()
        .with_worker_nodes(6)
        .with_frontends(1)
        .with_cache_partitions(3)
        .with_min_distillers(1)
        .with_origin_penalty_scale(0.2)
        .build();

    // 2. Generate a two-minute Web trace (50 users, the paper's MIME mix
    //    and size distributions) and attach a playback client.
    let mut gen = TraceGenerator::new(WorkloadConfig {
        users: 50,
        shared_objects: 300,
        private_per_user: 20,
        ..Default::default()
    });
    let trace = gen.constant_rate(5.0, Duration::from_secs(120));
    let items: Vec<_> = Playback::new(&trace, Schedule::Timestamps)
        .map(|(at, r)| (at, r.clone()))
        .collect();
    println!("playing {} traced requests through TranSend…", items.len());
    let report = cluster.attach_client(items, Duration::from_secs(4));

    // 3. Run. Virtual time: the whole session takes a moment of wall
    //    clock.
    cluster.sim.run_until(SimTime::from_secs(400));

    // 4. Read the results.
    let mut r = report.borrow_mut();
    println!("\n== client view ==");
    println!("requests sent        : {}", r.sent);
    println!(
        "responses            : {} ({} errors)",
        r.responses, r.errors
    );
    println!("degraded (approx.)   : {}", r.degraded);
    println!(
        "bytes requested/got  : {} / {}  ({:.0}% saved by distillation)",
        r.bytes_requested,
        r.bytes_received,
        r.savings() * 100.0
    );
    println!(
        "latency mean / p95   : {:.0} ms / {:.0} ms",
        r.latency.mean() * 1e3,
        r.latency.quantile(0.95) * 1e3
    );

    let stats = cluster.sim.stats();
    println!("\n== cluster view ==");
    for key in [
        "ts.requests",
        "ts.cache_hit_final",
        "ts.cache_hit_orig",
        "ts.cache_miss",
        "ts.origin_fetches",
        "ts.distilled",
        "ts.passthrough",
        "manager.spawns",
    ] {
        println!("{key:<22}: {}", stats.counter(key));
    }
}
