//! A three-stage TACC pipeline — fetch → distill → aggregate (→ cache)
//! — written as **one async fn** and served by a simulated cluster.
//!
//! ```sh
//! cargo run --release --example async_pipeline
//! ```
//!
//! The service body is [`cluster_sns::tacc::PipelineService`]: a single
//! `async fn run()` that fans out origin fetches (`select_some`, arrival
//! order), pushes each page through the distiller chain with a hedged
//! retry (`race`) under a give-up deadline (`timeout`), collates the
//! results through an aggregator, injects the answer into the cache and
//! replies. The paper's §3.1.8 tactics are combinators, not state.
//!
//! For contrast, the *legacy* expression of the same control flow — the
//! per-request state machine every front-end service was written as
//! before the executor existed — looks like this (abbreviated from
//! `sns_transend::logic::TranSendLogic`):
//!
//! ```ignore
//! const TAG_FETCH0: u64 = 1024;   // + source index
//! const TAG_DISTILL0: u64 = 16;   // + stage index
//! const TAG_AGGREGATE: u64 = 8;
//! const TAG_GIVE_UP: u64 = 5;     // nap timer token
//!
//! fn on_request(&mut self, req, fe) -> Vec<Action> {
//!     // remember per-request state, emit one Dispatch per source…
//!     self.pending.insert(req.id, Pending::Fetching { got: vec![] });
//!     sources.map(|i, s| Action::Dispatch { tag: TAG_FETCH0 + i, .. })
//! }
//!
//! fn on_event(&mut self, st, ev, fe) -> Vec<Action> {
//!     match (self.pending.get_mut(&st), ev) {
//!         // every arrow in the dataflow is a (state, tag) arm:
//!         (Fetching { got }, WorkerReply { tag, .. })
//!             if (TAG_FETCH0..).contains(&tag) => { /* collect;
//!                 when all arrived, emit TAG_DISTILL0 dispatch */ }
//!         (Distilling { .. }, WorkerReply { tag: TAG_DISTILL0, .. })
//!             => { /* next stage, or TAG_AGGREGATE dispatch */ }
//!         (Distilling { .. }, NapDone { tag: TAG_GIVE_UP })
//!             => { /* give-up: degrade, skip to aggregate */ }
//!         (Aggregating, WorkerReply { tag: TAG_AGGREGATE, .. })
//!             => { /* inject + reply */ }
//!         // …plus DispatchFailed arms for every tag above.
//!     }
//! }
//! ```
//!
//! Same dataflow, but the sequencing lives in tag constants and a
//! cross-product of match arms. The async body below reads top to
//! bottom; the driver printing the results is itself an
//! [`cluster_sns::core::exec::component::AsyncComponent`] — the same
//! executor adapted to a whole engine component.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use cluster_sns::core::exec::component::{AcBody, AsyncComponent};
use cluster_sns::core::exec::service::AsyncSvcLogic;
use cluster_sns::core::exec::timeout;
use cluster_sns::core::msg::{ClientRequest, SnsMsg};
use cluster_sns::sim::SimTime;
use cluster_sns::tacc::origin::FetchRequest;
use cluster_sns::tacc::{PipelineConfig, PipelineJob, PipelineService};
use cluster_sns::transend::TranSendBuilder;
use cluster_sns::workload::MimeType;

/// Per-query outcome: `(id, degraded, Ok(bytes) | Err(reason))`.
type Outcomes = Arc<Mutex<Vec<(u64, bool, Result<u64, String>)>>>;

fn main() {
    // A stock TranSend cluster supplies the substrate — origin, cache
    // partitions, distillers, an aggregator — then one extra front end
    // runs the async pipeline service instead of TranSend's logic.
    let mut cluster = TranSendBuilder::new()
        .with_worker_nodes(6)
        .with_frontends(1)
        .with_cache_partitions(3)
        .with_distillers(["gif", "jpeg", "html"])
        .with_aggregators(["metasearch"])
        .with_origin_penalty_scale(0.2)
        .build();
    let pipe_fe = cluster.add_frontend_with_logic(Box::new(AsyncSvcLogic::new(
        PipelineService::new(PipelineConfig {
            stages: vec!["html".into()],
            aggregator: Some("metasearch".into()),
            give_up: Duration::from_secs(8),
            hedge_after: Duration::from_secs(2),
            cache_final: true,
        }),
    )));

    // The driver is an async body too: send each query, await the
    // response (bounded), record the outcome.
    let done: Outcomes = Arc::new(Mutex::new(Vec::new()));
    let report = Arc::clone(&done);
    let body: AcBody<SnsMsg> = Box::new(move |inbox, h| {
        Box::pin(async move {
            // Let bootstrap spawns register and the first beacon land.
            h.sleep(Duration::from_secs(5)).await;
            for id in 0..8u64 {
                let sources = (0..3)
                    .map(|e| FetchRequest {
                        url: format!("http://engine{e}/results?q={id}"),
                        mime: MimeType::Html,
                        size: 24 * 1024,
                    })
                    .collect();
                let args = BTreeMap::from([
                    ("query".to_string(), format!("scalable services {id}")),
                    ("max_results".to_string(), "10".to_string()),
                ]);
                h.send(
                    pipe_fe,
                    SnsMsg::Request(Arc::new(ClientRequest {
                        id,
                        user: format!("user{}", id % 3),
                        url: format!("transend://metasearch?q={id}"),
                        body: Some(Arc::new(PipelineJob { sources, args })),
                    })),
                );
                let sent = h.now();
                // One request at a time: await its response (or give up
                // after 30 virtual seconds) before issuing the next.
                let got = timeout(inbox.recv(), h.sleep(Duration::from_secs(30))).await;
                let Some(Some((_, SnsMsg::Response(resp)))) = got else {
                    report
                        .lock()
                        .unwrap()
                        .push((id, false, Err("timed out".into())));
                    continue;
                };
                let latency = h.now().since(sent);
                h.observe("demo.latency_ms", latency.as_secs_f64() * 1e3);
                report.lock().unwrap().push((
                    resp.id,
                    resp.degraded,
                    resp.result
                        .as_ref()
                        .map(|p| p.wire_size())
                        .map_err(Clone::clone),
                ));
            }
        })
    });
    let client_node = cluster.client_node;
    cluster.sim.spawn(
        client_node,
        Box::new(AsyncComponent::new("pipe-client", body).exit_when_done()),
        "pipe-client",
    );

    cluster.sim.run_until(SimTime::from_secs(600));

    println!("== async pipeline: fetch → distill/html → metasearch → cache ==");
    for (id, degraded, outcome) in done.lock().unwrap().iter() {
        match outcome {
            Ok(bytes) => println!(
                "query {id}: {bytes} bytes{}",
                if *degraded { "  (degraded)" } else { "" }
            ),
            Err(e) => println!("query {id}: error: {e}"),
        }
    }
    println!("\n== pipeline counters ==");
    for key in [
        "tacc.pipe_requests",
        "tacc.pipe_hedges",
        "tacc.pipe_gave_up",
        "tacc.pipe_source_missing",
        "tacc.pipe_stage_degraded",
        "tacc.pipe_aggregated",
        "tacc.pipe_agg_degraded",
    ] {
        println!("{key:<26}: {}", cluster.sim.stats().counter(key));
    }
    if let Some(lat) = cluster.sim.stats_mut().summary_mut("demo.latency_ms") {
        println!(
            "latency mean / p95        : {:.0} ms / {:.0} ms",
            lat.mean(),
            lat.quantile(0.95)
        );
    }
}
