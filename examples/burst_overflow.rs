//! The overflow pool absorbing a Pathfinder-style burst (§2.2.3).
//!
//! A modest dedicated pool serves the steady load; a sudden prolonged
//! burst recruits workers on overflow (desktop) nodes; when the burst
//! subsides, the overflow workers are reaped and the machines released.
//!
//! ```sh
//! cargo run --release --example burst_overflow
//! ```

use std::time::Duration;

use cluster_sns::core::SnsConfig;
use cluster_sns::sim::SimTime;
use cluster_sns::transend::{TranSendBuilder, TranSendConfig};
use cluster_sns::workload::trace::TraceRecord;
use cluster_sns::workload::MimeType;

/// Constant-then-burst-then-constant offered load.
fn bursty_items() -> Vec<(Duration, TraceRecord)> {
    let mut rng = cluster_sns::sim::Pcg32::new(0xb1257);
    let mut out = Vec::new();
    let mut t = 0.0f64;
    let rate_at = |t: f64| -> f64 {
        if (120.0..240.0).contains(&t) {
            80.0 // the burst: Mars has landed
        } else {
            10.0
        }
    };
    while t < 360.0 {
        t += rng.exp(1.0 / rate_at(t));
        if t >= 360.0 {
            break;
        }
        let obj = rng.below(60);
        out.push((
            Duration::from_secs_f64(t),
            TraceRecord {
                at: Duration::from_secs_f64(t),
                user: (obj % 50) as u32,
                url: format!("http://mars/pathfinder{obj}.jpg"),
                mime: MimeType::Jpeg,
                size: 10 * 1024,
            },
        ));
    }
    out
}

fn main() {
    // Small dedicated pool (2 nodes) + a big overflow pool (6 desktop
    // nodes). The dedicated pool alone cannot absorb the burst.
    let mut cluster = TranSendBuilder::new()
        .with_worker_nodes(2)
        .with_overflow_nodes(6)
        .with_cores_per_node(2)
        .with_frontends(1)
        .with_cache_partitions(2)
        .with_min_distillers(1)
        .with_distillers(["jpeg"])
        .with_origin_penalty_scale(0.05)
        .with_ts(TranSendConfig {
            cache_distilled: false, // keep the distillers busy
            ..Default::default()
        })
        .with_sns(SnsConfig {
            spawn_threshold_h: 6.0,
            spawn_cooldown_d: Duration::from_secs(4),
            reap_threshold: 0.5,
            reap_idle_for: Duration::from_secs(20),
            ..Default::default()
        })
        .build();

    let items = bursty_items();
    println!(
        "offered load: 10 req/s steady, bursting to 80 req/s for t=120..240 s ({} requests)",
        items.len()
    );
    let report = cluster.attach_client(items, Duration::from_secs(3));

    // Sample the population of distillers and where they run.
    for s in (10..=420).step_by(10) {
        cluster.sim.at(SimTime::from_secs(s), move |sim| {
            let ds = sim.components_of_kind(cluster_sns::core::intern_class("distiller/jpeg"));
            let on_overflow = ds
                .iter()
                .filter(|&&d| {
                    sim.node_of(d)
                        .and_then(|n| sim.nodes_with_tag("overflow").contains(&n).then_some(()))
                        .is_some()
                })
                .count();
            let t = sim.now();
            sim.stats_mut()
                .sample("demo.distillers", t, ds.len() as f64);
            sim.stats_mut()
                .sample("demo.overflow_distillers", t, on_overflow as f64);
        });
    }

    cluster.sim.run_until(SimTime::from_secs(430));

    println!("\ntime   distillers   on overflow nodes");
    let stats = cluster.sim.stats();
    let total = stats.series("demo.distillers").expect("sampled");
    let over = stats.series("demo.overflow_distillers").expect("sampled");
    for (&(t, n), &(_, o)) in total.points().iter().zip(over.points()) {
        if (t.as_secs_f64() as u64) % 30 < 10 {
            let bars = "#".repeat(n as usize);
            println!("{:>4.0}s  {n:>2.0} {bars:<12} {o:>2.0}", t.as_secs_f64());
        }
    }

    let mut r = report.borrow_mut();
    println!(
        "\nresponses: {} / {} (errors {})",
        r.responses, r.sent, r.errors
    );
    println!(
        "latency mean / p95: {:.0} ms / {:.0} ms",
        r.latency.mean() * 1e3,
        r.latency.quantile(0.95) * 1e3
    );
    println!(
        "overflow spawns: {}   reaps after the burst: {}",
        stats.counter("manager.overflow_spawns"),
        stats.counter("manager.reaps")
    );
    println!(
        "\n\"When the overflow machines are being recruited unusually often, it is\n\
         time to purchase more dedicated nodes\" (§2.2.3)."
    );
}
