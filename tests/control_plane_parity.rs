//! Differential test of the shared sans-IO control plane: the same
//! fault script — bootstrap three echo workers, kill one twice — runs
//! through the *simulator* driver (`sns_core::Manager` over the SAN)
//! and the *threaded runtime* driver (`sns_rt::RtCluster` over OS
//! threads), and both must produce the identical canonical decision
//! sequence in their monitor logs. The backends share
//! [`sns_core::ControlPlane`], so a divergence here means a driver is
//! feeding the machine different inputs, not that policy forked.
//!
//! Timestamps and raw ids necessarily differ between a virtual-time
//! simulation and wall-clock threads, so the comparison normalises:
//! events are filtered to the control plane's *decisions* (`spawned`,
//! `peer_restarted`), timestamps are stripped, and component/node
//! tokens are renamed by first appearance.

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cluster_sns::core::invariant::MonitorLog;
use cluster_sns::core::manager::{Manager, ManagerConfig, WorkerSpec};
use cluster_sns::core::msg::{Job, SnsMsg};
use cluster_sns::core::worker::{WorkerError, WorkerLogic, WorkerStub, WorkerStubConfig};
use cluster_sns::core::{Blob, MonitorTap, Payload, SnsConfig, WorkerClass};
use cluster_sns::rt::{RtCluster, RtConfig};
use cluster_sns::san::{San, SanConfig};
use cluster_sns::sim::engine::{NodeSpec, Sim, SimConfig};
use cluster_sns::sim::rng::Pcg32;
use cluster_sns::sim::SimTime;

struct Echo;

impl WorkerLogic for Echo {
    fn class(&self) -> WorkerClass {
        "echo".into()
    }
    fn service_time(&mut self, _j: &Job, _n: SimTime, _r: &mut Pcg32) -> Duration {
        Duration::from_millis(20)
    }
    fn process(&mut self, job: &Job, _n: SimTime, _r: &mut Pcg32) -> Result<Payload, WorkerError> {
        Ok(Blob::payload(job.input.wire_size() / 2, "echoed"))
    }
}

/// The canonical decision sequence: spawn and process-peer-restart
/// events with ids renamed by first appearance ("C0", "N0", …) so the
/// two backends' arbitrary id spaces compare equal.
fn decisions(log: &MonitorLog) -> Vec<String> {
    let mut comps: BTreeMap<String, usize> = BTreeMap::new();
    let mut nodes: BTreeMap<String, usize> = BTreeMap::new();
    let mut rename = |tok: &str| -> String {
        let digits = |s: &str| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit());
        if let Some(rest) = tok.strip_prefix("node") {
            if digits(rest) {
                let next = nodes.len();
                return format!("N{}", *nodes.entry(tok.to_string()).or_insert(next));
            }
        }
        if let Some(rest) = tok.strip_prefix('c') {
            if digits(rest) {
                let next = comps.len();
                return format!("C{}", *comps.entry(tok.to_string()).or_insert(next));
            }
        }
        tok.to_string()
    };
    log.entries()
        .iter()
        .filter(|(_, ev)| matches!(ev.kind_key(), "spawned" | "peer_restarted"))
        .map(|(_, ev)| {
            ev.canonical()
                .split(' ')
                .map(|field| match field.split_once('=') {
                    Some((k, v)) => format!("{k}={}", rename(v)),
                    None => field.to_string(),
                })
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect()
}

/// Simulator run of the script: 3 echo workers, kill one at 6 s and
/// again at 12 s, stop at 18 s. Returns the tapped monitor log.
fn sim_run() -> MonitorLog {
    let mut sim: Sim<SnsMsg, San> = Sim::new(
        SimConfig::default(),
        San::new(SanConfig::switched_100mbps()),
    );
    let infra = sim.add_node(NodeSpec::new(2, "infra"));
    // One dedicated node, like the rt cluster's single default vnode,
    // so placement decisions line up 1:1.
    sim.add_node(NodeSpec::new(8, "dedicated"));
    let beacon = sim.create_group();
    let monitor_group = sim.create_group();
    let sns = SnsConfig::default();
    let report_period = sns.report_period;

    let mut classes = BTreeMap::new();
    classes.insert(
        WorkerClass::new("echo"),
        WorkerSpec::scaled(
            3,
            Box::new(move || {
                Box::new(WorkerStub::new(
                    Box::new(Echo),
                    WorkerStubConfig {
                        beacon_group: beacon,
                        monitor_group,
                        report_period,
                        cost_weight_unit: None,
                    },
                ))
            }),
        ),
    );
    sim.spawn(
        infra,
        Box::new(Manager::new(ManagerConfig {
            sns,
            beacon_group: beacon,
            monitor_group,
            incarnation: 1,
            classes,
            fe_factory: None,
        })),
        "manager",
    );
    let (tap, log) = MonitorTap::new(monitor_group);
    sim.spawn(infra, Box::new(tap), "montap");

    for at in [6u64, 12] {
        sim.at(SimTime::from_secs(at), |sim| {
            let victims = sim.components_of_kind(cluster_sns::core::intern_class("echo"));
            let victim = *victims.first().expect("a live echo worker");
            sim.kill_component(victim);
        });
    }
    sim.run_until(SimTime::from_secs(18));
    let out = log.borrow().clone();
    out
}

/// Threaded-runtime run of the same script: 3 echo workers, crash one,
/// wait for recovery, crash another, wait again.
fn rt_run() -> MonitorLog {
    let c: Arc<RtCluster> = RtCluster::start(RtConfig {
        time_scale: 0.0, // service instantly; only the script order matters
        report_period: Duration::from_millis(10),
        beacon_period: Duration::from_millis(20),
        ..RtConfig::default()
    });
    c.add_workers("echo", 3, || Box::new(Echo));
    for round in 1..=2u64 {
        assert!(c.crash_worker("echo"), "a live echo worker exists");
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline {
            if c.workers_of("echo") == 3 && c.restarts.load(Ordering::Relaxed) >= round {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(c.workers_of("echo"), 3, "round {round} recovered");
    }
    c.shutdown();
    c.monitor_log()
}

#[test]
fn sim_and_rt_drivers_agree_on_control_decisions() {
    let sim_decisions = decisions(&sim_run());
    let rt_decisions = decisions(&rt_run());
    // Sanity on the shape before the full diff: 3 bootstrap spawns plus
    // a (spawn, peer-restart) pair per kill.
    assert_eq!(
        sim_decisions.len(),
        7,
        "sim decision stream: {sim_decisions:?}"
    );
    assert_eq!(
        sim_decisions, rt_decisions,
        "the two drivers of the shared control plane diverged"
    );
}
