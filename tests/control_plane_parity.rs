//! Differential test of the shared sans-IO control plane: the same
//! fault script — bootstrap three echo workers, kill one twice — runs
//! through the *simulator* driver (`sns_core::Manager` over the SAN)
//! and the *threaded runtime* driver (`sns_rt::RtCluster` over OS
//! threads), and both must produce the identical canonical decision
//! sequence in their monitor logs. The backends share
//! [`sns_core::ControlPlane`], so a divergence here means a driver is
//! feeding the machine different inputs, not that policy forked.
//!
//! Timestamps and raw ids necessarily differ between a virtual-time
//! simulation and wall-clock threads, so the comparison normalises:
//! events are filtered to the control plane's *decisions* (`spawned`,
//! `peer_restarted`), timestamps are stripped, and component/node
//! tokens are renamed by first appearance.
//!
//! The request *traces* are a second parity surface: both runs submit
//! the same four echo jobs through the shared [`DispatchPlane`], and
//! the [`sns_core::trace::normalized`] rendering — identity and
//! timestamps stripped, trees sorted structurally — must be
//! byte-identical across the two backends.

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cluster_sns::core::invariant::MonitorLog;
use cluster_sns::core::manager::{Manager, ManagerConfig, WorkerSpec};
use cluster_sns::core::msg::{Job, SnsMsg};
use cluster_sns::core::trace::{normalized, Sampling, SpanCtx, Tracer};
use cluster_sns::core::worker::{WorkerError, WorkerLogic, WorkerStub, WorkerStubConfig};
use cluster_sns::core::{Blob, ManagerStub, MonitorTap, Payload, SnsConfig, WorkerClass};
use cluster_sns::rt::{RtCluster, RtConfig};
use cluster_sns::san::{San, SanConfig};
use cluster_sns::sim::engine::{Component, Ctx, NodeSpec, Sim, SimConfig};
use cluster_sns::sim::rng::Pcg32;
use cluster_sns::sim::{ComponentId, GroupId, SimTime};

/// Jobs each backend pushes through the shared dispatch plane.
const JOBS: u64 = 4;

struct Echo;

impl WorkerLogic for Echo {
    fn class(&self) -> WorkerClass {
        "echo".into()
    }
    fn service_time(&mut self, _j: &Job, _n: SimTime, _r: &mut Pcg32) -> Duration {
        Duration::from_millis(20)
    }
    fn process(&mut self, job: &Job, _n: SimTime, _r: &mut Pcg32) -> Result<Payload, WorkerError> {
        Ok(Blob::payload(job.input.wire_size() / 2, "echoed"))
    }
}

/// The canonical decision sequence: spawn and process-peer-restart
/// events with ids renamed by first appearance ("C0", "N0", …) so the
/// two backends' arbitrary id spaces compare equal.
fn decisions(log: &MonitorLog) -> Vec<String> {
    let mut comps: BTreeMap<String, usize> = BTreeMap::new();
    let mut nodes: BTreeMap<String, usize> = BTreeMap::new();
    let mut rename = |tok: &str| -> String {
        let digits = |s: &str| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit());
        if let Some(rest) = tok.strip_prefix("node") {
            if digits(rest) {
                let next = nodes.len();
                return format!("N{}", *nodes.entry(tok.to_string()).or_insert(next));
            }
        }
        if let Some(rest) = tok.strip_prefix('c') {
            if digits(rest) {
                let next = comps.len();
                return format!("C{}", *comps.entry(tok.to_string()).or_insert(next));
            }
        }
        tok.to_string()
    };
    log.entries()
        .iter()
        .filter(|(_, ev)| matches!(ev.kind_key(), "spawned" | "peer_restarted"))
        .map(|(_, ev)| {
            ev.canonical()
                .split(' ')
                .map(|field| match field.split_once('=') {
                    Some((k, v)) => format!("{k}={}", rename(v)),
                    None => field.to_string(),
                })
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect()
}

/// A bare dispatch-plane client for the sim side: mirrors the rt
/// cluster's `submit` path (jobs enter the plane with no parent span),
/// sending the next job as each response lands.
struct Submitter {
    beacon: GroupId,
    stub: ManagerStub,
    sent: u64,
}

impl Submitter {
    fn send_next(&mut self, ctx: &mut Ctx<'_, SnsMsg>) {
        if self.sent >= JOBS {
            return;
        }
        self.sent += 1;
        self.stub.dispatch(
            ctx,
            WorkerClass::new("echo"),
            "echo",
            Blob::payload(256, "probe"),
            None,
            SpanCtx::root(),
        );
    }
}

impl Component<SnsMsg> for Submitter {
    fn on_start(&mut self, ctx: &mut Ctx<'_, SnsMsg>) {
        self.stub.set_tracing(ctx.tracer().is_enabled());
        self.stub.set_sampling(ctx.tracer().sampling());
        ctx.join(self.beacon);
        // First dispatch once beacons have populated the hint cache.
        ctx.timer(Duration::from_secs(2), 1);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, SnsMsg>, _from: ComponentId, msg: SnsMsg) {
        match msg {
            SnsMsg::Beacon(b) => {
                self.stub.on_beacon(&b);
                self.stub.flush_pending(ctx);
            }
            SnsMsg::WorkResponse { job_id, .. } => {
                self.stub.on_response(ctx, job_id);
                self.send_next(ctx);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, SnsMsg>, _token: u64) {
        self.send_next(ctx);
    }

    fn kind(&self) -> &'static str {
        "submitter"
    }
}

/// Simulator run of the script: 3 echo workers, 4 echo jobs from 2 s,
/// kill a worker at 6 s and again at 12 s, stop at 18 s. Returns the
/// tapped monitor log and the normalized trace rendering.
fn sim_run() -> (MonitorLog, String) {
    sim_run_sampled(Sampling::ALL)
}

/// Same script with an explicit head-sampling policy on the tracer.
fn sim_run_sampled(sampling: Sampling) -> (MonitorLog, String) {
    let mut sim: Sim<SnsMsg, San> = Sim::new(
        SimConfig::default(),
        San::new(SanConfig::switched_100mbps()),
    );
    sim.set_tracer(Tracer::sampled(sampling));
    let infra = sim.add_node(NodeSpec::new(2, "infra"));
    // One dedicated node, like the rt cluster's single default vnode,
    // so placement decisions line up 1:1.
    sim.add_node(NodeSpec::new(8, "dedicated"));
    let beacon = sim.create_group();
    let monitor_group = sim.create_group();
    let sns = SnsConfig::default();
    let report_period = sns.report_period;

    let mut classes = BTreeMap::new();
    classes.insert(
        WorkerClass::new("echo"),
        WorkerSpec::scaled(
            3,
            Box::new(move || {
                Box::new(WorkerStub::new(
                    Box::new(Echo),
                    WorkerStubConfig {
                        beacon_group: beacon,
                        monitor_group,
                        report_period,
                        cost_weight_unit: None,
                    },
                ))
            }),
        ),
    );
    sim.spawn(
        infra,
        Box::new(Manager::new(ManagerConfig {
            sns,
            beacon_group: beacon,
            monitor_group,
            incarnation: 1,
            classes,
            fe_factory: None,
        })),
        "manager",
    );
    let (tap, log) = MonitorTap::new(monitor_group);
    sim.spawn(infra, Box::new(tap), "montap");
    sim.spawn(
        infra,
        Box::new(Submitter {
            beacon,
            stub: ManagerStub::new(SnsConfig::default()),
            sent: 0,
        }),
        "submitter",
    );

    for at in [6u64, 12] {
        sim.at(SimTime::from_secs(at), |sim| {
            let victims = sim.components_of_kind(cluster_sns::core::intern_class("echo"));
            let victim = *victims.first().expect("a live echo worker");
            sim.kill_component(victim);
        });
    }
    sim.run_until(SimTime::from_secs(18));
    let trace = sim.tracer().snapshot().expect("tracing was enabled");
    let out = log.borrow().clone();
    (out, normalized(&trace))
}

/// Threaded-runtime run of the same script: 3 echo workers, 4 echo
/// jobs, crash a worker, wait for recovery, crash another, wait again.
fn rt_run() -> (MonitorLog, String) {
    rt_run_sampled(1)
}

/// Same script with head sampling at `rate` (decision seed = the
/// cluster seed, matching `sim_run_sampled`'s explicit policy).
fn rt_run_sampled(rate: u32) -> (MonitorLog, String) {
    let c: Arc<RtCluster> = RtCluster::start(
        RtConfig::new()
            .with_time_scale(0.0) // service instantly; only the script order matters
            .with_report_period(Duration::from_millis(10))
            .with_beacon_period(Duration::from_millis(20))
            .with_tracing(true)
            .with_trace_sampling(rate),
    );
    c.add_workers("echo", 3, || Box::new(Echo));
    c.refresh_hints_now();
    for _ in 0..JOBS {
        let rx = c.submit("echo", "echo", Blob::payload(256, "probe"), None);
        rx.recv_timeout(Duration::from_secs(10))
            .expect("echo job must be answered");
    }
    for round in 1..=2u64 {
        assert!(c.crash_worker("echo"), "a live echo worker exists");
        let deadline = Instant::now() + Duration::from_secs(10);
        while Instant::now() < deadline {
            if c.workers_of("echo") == 3 && c.restarts.load(Ordering::Relaxed) >= round {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert_eq!(c.workers_of("echo"), 3, "round {round} recovered");
    }
    c.shutdown();
    let trace = c.trace_snapshot().expect("tracing was enabled");
    (c.monitor_log(), normalized(&trace))
}

#[test]
fn sim_and_rt_drivers_agree_on_control_decisions() {
    let sim_decisions = decisions(&sim_run().0);
    let rt_decisions = decisions(&rt_run().0);
    // Sanity on the shape before the full diff: 3 bootstrap spawns plus
    // a (spawn, peer-restart) pair per kill.
    assert_eq!(
        sim_decisions.len(),
        7,
        "sim decision stream: {sim_decisions:?}"
    );
    assert_eq!(
        sim_decisions, rt_decisions,
        "the two drivers of the shared control plane diverged"
    );
}

/// Virtual-time spans and wall-clock spans normalise to the same causal
/// tree: one `job` root per submitted echo job, each covering the
/// worker-side `queue` and `service` spans it caused.
#[test]
fn sim_and_rt_traces_normalise_to_the_same_span_tree() {
    let sim_tree = sim_run().1;
    let rt_tree = rt_run().1;
    assert_eq!(
        sim_tree.lines().filter(|l| l.starts_with("job:")).count(),
        JOBS as usize,
        "one root per submitted job:\n{sim_tree}"
    );
    assert_eq!(
        sim_tree, rt_tree,
        "normalized span trees diverged between the sim and rt drivers"
    );
}

/// Head sampling keeps the backends in lock-step: the decision is a
/// pure function of the (shared) seed and the job id, so the *set* of
/// sampled jobs — and therefore the normalized span forest — is
/// byte-identical between the sim and rt drivers at any rate.
#[test]
fn sim_and_rt_sample_the_same_request_set() {
    // Match the rt side's derivation: rate over the default cluster seed.
    let rate = 2;
    let sampling = Sampling::per(rate, RtConfig::new().seed);
    let sim_tree = sim_run_sampled(sampling).1;
    let rt_tree = rt_run_sampled(rate).1;
    // Jobs get plane ids 1..=JOBS in both backends; predict the kept set.
    let expected: usize = (1..=JOBS).filter(|&n| sampling.decide(n)).count();
    assert!(
        expected < JOBS as usize,
        "rate {rate} must drop at least one of {JOBS} jobs for this seed"
    );
    assert_eq!(
        sim_tree.lines().filter(|l| l.starts_with("job:")).count(),
        expected,
        "sim kept exactly the predicted sampled set:\n{sim_tree}"
    );
    assert_eq!(
        sim_tree, rt_tree,
        "sampled span forests diverged between the sim and rt drivers"
    );
}
