//! The async-ported request path, end to end: the legacy TranSend state
//! machine and its `async fn` re-expression must be client-equivalent
//! on the sim backend, and the same pipeline body must run unmodified
//! on **both** backends — deterministic virtual time behind the sim
//! front end, wall-clock threads against a live [`RtCluster`].

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use cluster_sns::core::exec::component::{AcBody, AsyncComponent};
use cluster_sns::core::exec::service::AsyncSvcLogic;
use cluster_sns::core::exec::timeout;
use cluster_sns::core::msg::{ClientRequest, SnsMsg};
use cluster_sns::distillers::{HtmlMunger, MetasearchAggregator};
use cluster_sns::rt::{exec::serve, RtCluster, RtConfig};
use cluster_sns::sim::{SchedulerKind, SimTime};
use cluster_sns::tacc::origin::FetchRequest;
use cluster_sns::tacc::worker::TaccWorkerHost;
use cluster_sns::tacc::{OriginServer, PipelineConfig, PipelineJob, PipelineService};
use cluster_sns::transend::TranSendBuilder;
use cluster_sns::workload::playback::{Playback, Schedule};
use cluster_sns::workload::trace::{TraceGenerator, WorkloadConfig};
use cluster_sns::workload::MimeType;

/// One seeded TranSend replay; returns the client-visible outcome plus
/// the service counters that summarise what the FE logic decided.
fn transend_outcomes(async_logic: bool) -> (u64, u64, u64, u64, u64, Vec<(String, u64)>) {
    let mut cluster = TranSendBuilder::new()
        .with_seed(0xA51)
        .with_scheduler(SchedulerKind::default())
        .with_async_logic(async_logic)
        .with_worker_nodes(5)
        .with_frontends(1)
        .with_cache_partitions(2)
        .with_min_distillers(1)
        .with_origin_penalty_scale(0.1)
        .build();
    let mut gen = TraceGenerator::new(WorkloadConfig {
        seed: 0xA51 ^ 0x11,
        users: 25,
        shared_objects: 80,
        private_per_user: 6,
        ..Default::default()
    });
    let t = gen.constant_rate(4.0, Duration::from_secs(25));
    let items: Vec<_> = Playback::new(&t, Schedule::Timestamps)
        .map(|(at, r)| (at, r.clone()))
        .collect();
    let report = cluster.attach_client(items, Duration::from_secs(3));
    cluster.sim.run_until(SimTime::from_secs(150));
    let r = report.borrow();
    let counters = cluster
        .sim
        .stats()
        .all_counters()
        .filter(|(k, _)| k.starts_with("ts."))
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    (
        r.sent,
        r.responses,
        r.errors,
        r.degraded,
        r.bytes_received,
        counters,
    )
}

/// The migration contract: swapping the front end's state machine for
/// the async body changes *nothing* a client (or the service's own
/// `ts.*` counters) can see. Tags and timer tokens differ internally,
/// but every action leaves the FE in the same order with the same
/// contents, so the runs stay outcome-identical.
#[test]
fn async_and_legacy_transend_agree_on_client_outcomes() {
    let legacy = transend_outcomes(false);
    let asynced = transend_outcomes(true);
    assert_eq!(
        legacy, asynced,
        "async body diverged from the legacy state machine"
    );
}

fn pipeline_cfg() -> PipelineConfig {
    PipelineConfig {
        stages: vec!["html".into()],
        aggregator: Some("metasearch".into()),
        give_up: Duration::from_secs(8),
        hedge_after: Duration::from_secs(2),
        cache_final: true,
    }
}

fn pipeline_job(id: u64) -> PipelineJob {
    PipelineJob {
        sources: (0..3)
            .map(|e| FetchRequest {
                url: format!("http://engine{e}/results?q={id}"),
                mime: MimeType::Html,
                size: 16 * 1024,
            })
            .collect(),
        args: BTreeMap::from([
            ("query".to_string(), format!("query {id}")),
            ("max_results".to_string(), "10".to_string()),
        ]),
    }
}

/// The multi-stage TACC worker body (fetch fan-in → hedged distill →
/// aggregate → cache) behind a *sim* front end: driven by an
/// [`AsyncComponent`] client, every request aggregates and replies.
#[test]
fn pipeline_body_serves_requests_on_the_sim_backend() {
    let mut cluster = TranSendBuilder::new()
        .with_seed(0xEC)
        .with_worker_nodes(5)
        .with_frontends(1)
        .with_cache_partitions(2)
        .with_min_distillers(1)
        .with_distillers(["gif", "html"])
        .with_aggregators(["metasearch"])
        .with_origin_penalty_scale(0.2)
        .build();
    let fe = cluster.add_frontend_with_logic(Box::new(AsyncSvcLogic::new(PipelineService::new(
        pipeline_cfg(),
    ))));

    let outcomes: Arc<Mutex<Vec<(u64, bool, bool)>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&outcomes);
    let body: AcBody<SnsMsg> = Box::new(move |inbox, h| {
        Box::pin(async move {
            h.sleep(Duration::from_secs(5)).await;
            for id in 0..4u64 {
                h.send(
                    fe,
                    SnsMsg::Request(Arc::new(ClientRequest {
                        id,
                        user: "tester".into(),
                        url: format!("transend://pipeline?q={id}"),
                        body: Some(Arc::new(pipeline_job(id))),
                    })),
                );
                let got = timeout(inbox.recv(), h.sleep(Duration::from_secs(60))).await;
                if let Some(Some((_, SnsMsg::Response(resp)))) = got {
                    sink.lock()
                        .unwrap()
                        .push((resp.id, resp.result.is_ok(), resp.degraded));
                }
            }
        })
    });
    let node = cluster.client_node;
    cluster.sim.spawn(
        node,
        Box::new(AsyncComponent::new("pipe-client", body).exit_when_done()),
        "pipe-client",
    );
    cluster.sim.run_until(SimTime::from_secs(400));

    let got = outcomes.lock().unwrap().clone();
    assert_eq!(got.len(), 4, "every request must be answered: {got:?}");
    for (id, ok, degraded) in &got {
        assert!(ok, "request {id} failed");
        assert!(!degraded, "request {id} degraded");
    }
    let stats = cluster.sim.stats();
    assert_eq!(stats.counter("tacc.pipe_requests"), 4);
    assert_eq!(stats.counter("tacc.pipe_aggregated"), 4);
    assert_eq!(stats.counter("tacc.pipe_errors"), 0);
}

/// The **same** body against the threaded runtime: wall-clock driver,
/// live dispatch plane, real reply channels — fetch, distill, aggregate
/// and reply with nothing changed but the clock.
#[test]
fn pipeline_body_serves_requests_on_the_rt_backend() {
    let c = RtCluster::start(
        RtConfig::new()
            .with_time_scale(0.02)
            .with_report_period(Duration::from_millis(10))
            .with_beacon_period(Duration::from_millis(20)),
    );
    c.add_workers("origin", 2, || {
        Box::new(OriginServer::new().with_penalty_scale(0.02))
    });
    c.add_workers("distiller/html", 2, || {
        Box::new(TaccWorkerHost::transformer(
            Box::new(HtmlMunger::new()),
            BTreeMap::new(),
        ))
    });
    c.add_workers("aggregator/metasearch", 1, || {
        Box::new(TaccWorkerHost::aggregator(
            Box::new(MetasearchAggregator::new()),
            BTreeMap::new(),
        ))
    });

    let mut svc = PipelineService::new(PipelineConfig {
        stages: vec!["html".into()],
        aggregator: Some("metasearch".into()),
        give_up: Duration::from_secs(10),
        hedge_after: Duration::from_secs(2),
        cache_final: false, // no cache class in this roster
    });
    for id in 0..2u64 {
        let outcome = serve(
            &c,
            &mut svc,
            ClientRequest {
                id,
                user: "tester".into(),
                url: format!("transend://pipeline?q={id}"),
                body: Some(Arc::new(pipeline_job(id))),
            },
        );
        assert!(
            outcome.result.is_ok(),
            "rt request {id} failed: {:?}",
            outcome.result
        );
        assert!(!outcome.degraded, "rt request {id} degraded");
        assert_eq!(outcome.stats.get("tacc.pipe_requests"), Some(&1));
        assert_eq!(outcome.stats.get("tacc.pipe_aggregated"), Some(&1));
    }
    c.shutdown();
}
