//! Paper-shape regression suite: the qualitative claims recorded in
//! EXPERIMENTS.md, pinned as envelope assertions with fixed seeds so a
//! refactor that silently bends a reproduced curve fails loudly.
//!
//! Three shapes are guarded:
//!
//! * **Figure 5** — the GIF content-length distribution is bimodal
//!   around the 1 KB distillation threshold (icon plateau below,
//!   photo mass above); JPEG falls off rapidly below 1 KB; the MIME
//!   means sit near the paper's averages.
//! * **Figure 7** — GIF distillation latency grows linearly with input
//!   size at 7–9 ms/KB.
//! * **Table 2** — under the scalability protocol the manager grows the
//!   distiller pool roughly linearly with offered load, keeping the
//!   per-distiller throughput inside the ~23 req/s linearity band.

use std::time::Duration;

use cluster_sns::core::SnsConfig;
use cluster_sns::distillers::GifDistiller;
use cluster_sns::san::LinkParams;
use cluster_sns::sim::rng::Pcg32;
use cluster_sns::sim::SimTime;
use cluster_sns::tacc::content::ContentObject;
use cluster_sns::tacc::worker::{TaccArgs, TaccWorker};
use cluster_sns::transend::{TranSendBuilder, TranSendConfig};
use cluster_sns::workload::sizes::SizeModel;
use cluster_sns::workload::MimeType;
use sns_bench::{fit_linear, ramp_workload, warmup_workload};

/// Figure 5: per-MIME mean content lengths near the paper's averages
/// (HTML 5131 B, GIF 3428 B, JPEG 12070 B), within 10%.
#[test]
fn fig5_mean_content_lengths_match_the_paper() {
    let model = SizeModel::default();
    let mut rng = Pcg32::new(5);
    let n = 200_000u64;
    for mime in [MimeType::Html, MimeType::Gif, MimeType::Jpeg] {
        let sum: u64 = (0..n).map(|_| model.sample(mime, &mut rng)).sum();
        let mean = sum as f64 / n as f64;
        let paper = SizeModel::paper_mean(mime);
        assert!(
            (mean - paper).abs() / paper < 0.10,
            "{mime}: mean {mean:.0} B drifted >10% from paper {paper:.0} B"
        );
    }
}

/// Figure 5: the GIF distribution is bimodal around the 1 KB
/// distillation threshold — substantial icon mass below it,
/// substantial photo mass above it — while JPEG mass falls off
/// rapidly below 1 KB.
#[test]
fn fig5_gif_is_bimodal_around_the_1kb_threshold() {
    let model = SizeModel::default();
    let mut rng = Pcg32::new(5);
    let n = 200_000u64;
    let frac_under_1k = |mime: MimeType, rng: &mut Pcg32| {
        (0..n).filter(|_| model.sample(mime, rng) < 1024).count() as f64 / n as f64
    };
    // EXPERIMENTS.md records 46.7% of GIFs under 1 KB and 0.7% of JPEGs.
    let gif = frac_under_1k(MimeType::Gif, &mut rng);
    assert!(
        (0.30..=0.60).contains(&gif),
        "GIF icon plateau: expected 30–60% below 1 KB, got {:.1}%",
        gif * 100.0
    );
    assert!(
        gif <= 0.70,
        "GIF photo mode must keep substantial mass above 1 KB"
    );
    let jpeg = frac_under_1k(MimeType::Jpeg, &mut rng);
    assert!(
        jpeg < 0.05,
        "JPEG must fall off rapidly below 1 KB, got {:.1}%",
        jpeg * 100.0
    );
}

/// Figure 7: least-squares slope of mean GIF distillation latency vs
/// input size within the paper's ≈8 ms/KB (7–9 band), fitted exactly
/// like the `fig7_distill_latency` harness.
#[test]
fn fig7_distillation_slope_is_7_to_9_ms_per_kb() {
    let model = SizeModel::default();
    let distiller = GifDistiller::new();
    let args = TaccArgs::default();
    let mut rng = Pcg32::new(7);
    const BINS: usize = 30;
    let mut sums = vec![0.0f64; BINS];
    let mut counts = vec![0u64; BINS];
    for _ in 0..60_000 {
        let size = model.sample(MimeType::Gif, &mut rng);
        if size >= 30_000 {
            continue;
        }
        let obj = ContentObject::synthetic("u", MimeType::Gif, size);
        let latency = distiller.cost(&obj, &args, &mut rng).as_secs_f64();
        let b = (size as usize * BINS) / 30_000;
        sums[b] += latency;
        counts[b] += 1;
    }
    let points: Vec<(f64, f64)> = (0..BINS)
        .filter(|&b| counts[b] >= 50)
        .map(|b| {
            let kb = (b as f64 + 0.5) * 30.0 / BINS as f64;
            (kb, sums[b] / counts[b] as f64)
        })
        .collect();
    assert!(points.len() >= 10, "need bins across the 0–30 KB range");
    let (slope, _intercept) = fit_linear(&points);
    let ms_per_kb = slope * 1000.0;
    assert!(
        (7.0..=9.0).contains(&ms_per_kb),
        "distillation slope {ms_per_kb:.2} ms/KB outside the paper's 7–9 band"
    );
}

/// One shortened Table 2 measurement run: warm the fixed 40-object
/// 10 KB working set, ramp to `rate` and hold, with distilled-variant
/// caching off so every request re-distills (§4.6 protocol).
fn table2_run(rate: f64, fes: usize) -> (f64, usize) {
    let n_objects = 40;
    let mut cluster = TranSendBuilder::new()
        .with_seed(0x7ab1e2)
        .with_worker_nodes(16)
        .with_overflow_nodes(4)
        .with_cores_per_node(2)
        .with_frontends(fes)
        .with_cache_partitions(4)
        .with_min_distillers(1)
        .with_distillers(["jpeg"])
        .with_origin_penalty_scale(0.05)
        .with_fe_nic(LinkParams::mbps(100.0).with_overhead(Duration::from_micros(3000)))
        .with_ts(TranSendConfig {
            cache_distilled: false,
            ..Default::default()
        })
        .with_sns(SnsConfig {
            spawn_threshold_h: 8.0,
            spawn_cooldown_d: Duration::from_secs(5),
            reap_threshold: 0.8,
            reap_idle_for: Duration::from_secs(10),
            ..Default::default()
        })
        .build();
    let mut items = warmup_workload(n_objects, 10 * 1024, Duration::from_millis(50));
    let warm_end = 5.0;
    let mut load = ramp_workload(
        &[(warm_end + 20.0, rate / 2.0), (warm_end + 90.0, rate)],
        n_objects,
        10 * 1024,
        99,
    );
    load.retain(|(at, _)| at.as_secs_f64() > warm_end);
    let offered = load.len() as u64 + n_objects as u64;
    items.extend(load);
    let report = cluster.attach_client(items, Duration::from_secs(3));
    cluster.sim.run_until(SimTime::from_secs(3 + 5 + 90 + 20));
    let completed = report.borrow().responses as f64 / offered as f64;
    (completed, cluster.distillers_of("distiller/jpeg").len())
}

/// Table 2: across three offered-load steps the distiller pool grows
/// roughly one per ~23 req/s and essentially every request completes —
/// the linear-growth region of the scalability experiment.
#[test]
fn table2_distiller_pool_tracks_offered_load_linearly() {
    let mut prev = 0usize;
    for (rate, fes, band) in [
        (15.0, 1, 1..=2usize),
        (45.0, 1, 2..=4usize),
        (70.0, 2, 3..=6usize),
    ] {
        let (completed, distillers) = table2_run(rate, fes);
        assert!(
            completed >= 0.98,
            "{rate} req/s: only {:.1}% of requests completed",
            completed * 100.0
        );
        assert!(
            band.contains(&distillers),
            "{rate} req/s: {distillers} distillers outside linearity band {band:?}"
        );
        assert!(
            distillers >= prev,
            "{rate} req/s: pool shrank under rising load ({prev} -> {distillers})"
        );
        // Per-distiller throughput inside the ~23 req/s band (wide
        // envelope: autoscaler overshoot at ramp end is tolerated).
        let per = rate / distillers as f64;
        assert!(
            (10.0..=35.0).contains(&per),
            "{rate} req/s: {per:.1} req/s per distiller outside 10–35 band"
        );
        prev = distillers;
    }
}
