//! Whole-stack determinism: identical seeds produce bit-identical runs
//! across every layer — the property that makes all the reproduced
//! figures and fault-injection experiments replayable.

use std::time::Duration;

use cluster_sns::chaos::{FaultKind, FaultPlan, SimChaos, SimChaosConfig};
use cluster_sns::core::MonitorTap;
use cluster_sns::hotbot::HotBotBuilder;
use cluster_sns::sim::{SchedulerKind, SimTime};
use cluster_sns::transend::TranSendBuilder;
use cluster_sns::workload::playback::{Playback, Schedule};
use cluster_sns::workload::trace::{TraceGenerator, WorkloadConfig};

fn transend_fingerprint_on(
    seed: u64,
    scheduler: SchedulerKind,
    async_logic: bool,
) -> (u64, u64, u64, String) {
    let mut cluster = TranSendBuilder::new()
        .with_seed(seed)
        .with_scheduler(scheduler)
        .with_async_logic(async_logic)
        .with_worker_nodes(5)
        .with_frontends(1)
        .with_cache_partitions(2)
        .with_min_distillers(1)
        .with_origin_penalty_scale(0.1)
        .build();
    let mut gen = TraceGenerator::new(WorkloadConfig {
        seed: seed ^ 0x11,
        users: 30,
        shared_objects: 90,
        private_per_user: 8,
        ..Default::default()
    });
    let t = gen.constant_rate(4.0, Duration::from_secs(30));
    let items: Vec<_> = Playback::new(&t, Schedule::Timestamps)
        .map(|(at, r)| (at, r.clone()))
        .collect();
    let report = cluster.attach_client(items, Duration::from_secs(3));
    // Fault injection is part of the fingerprint too.
    cluster.sim.at(SimTime::from_secs(12), |sim| {
        if let Some(&d) = sim
            .components_of_kind(cluster_sns::core::intern_class("distiller/gif"))
            .first()
        {
            sim.kill_component(d);
        }
    });
    cluster.sim.run_until(SimTime::from_secs(200));
    let r = report.borrow();
    // Fold every counter into a stable string.
    let counters: String = cluster
        .sim
        .stats()
        .all_counters()
        .map(|(k, v)| format!("{k}={v};"))
        .collect();
    (
        cluster.sim.events_dispatched(),
        r.responses,
        r.bytes_received,
        counters,
    )
}

fn transend_fingerprint(seed: u64) -> (u64, u64, u64, String) {
    transend_fingerprint_on(seed, SchedulerKind::default(), false)
}

#[test]
fn transend_runs_are_bit_identical_given_a_seed() {
    let a = transend_fingerprint(0xd5);
    let b = transend_fingerprint(0xd5);
    assert_eq!(a, b);
}

#[test]
fn different_seeds_give_different_runs() {
    let a = transend_fingerprint(0xd5);
    let b = transend_fingerprint(0xd6);
    assert_ne!(a.0, b.0, "different seeds must diverge");
}

/// A full TranSend trace replay (fault injection included) produces the
/// same event count, responses, bytes and counters on the heap baseline
/// and the timer wheel.
#[test]
fn transend_replay_is_identical_across_schedulers() {
    let heap = transend_fingerprint_on(0xd5, SchedulerKind::Heap, false);
    let wheel = transend_fingerprint_on(0xd5, SchedulerKind::Wheel, false);
    assert_eq!(heap, wheel, "heap and wheel replays must be bit-identical");
}

/// The async-ported request path (`TranSendAsync` bodies polled by the
/// deterministic executor) must be exactly as replayable as the legacy
/// state machine: same seed, same fault injection, bit-identical event
/// counts and counters on the heap baseline and the timer wheel.
#[test]
fn async_transend_replay_is_identical_across_schedulers() {
    let heap = transend_fingerprint_on(0xd5, SchedulerKind::Heap, true);
    let wheel = transend_fingerprint_on(0xd5, SchedulerKind::Wheel, true);
    assert_eq!(heap, wheel, "async replays must be bit-identical");
}

/// One full chaos run: same seed, same fault plan, returns the
/// byte-stable canonical rendering of the tapped monitor-event log.
fn chaos_monitor_log_on(seed: u64, scheduler: SchedulerKind, async_logic: bool) -> String {
    let mut cluster = TranSendBuilder::new()
        .with_seed(seed)
        .with_scheduler(scheduler)
        .with_async_logic(async_logic)
        .with_worker_nodes(5)
        .with_overflow_nodes(1)
        .with_frontends(1)
        .with_cache_partitions(2)
        .with_min_distillers(1)
        .with_origin_penalty_scale(0.1)
        .build();
    let node = cluster.sim.nodes_with_tag("infra")[0];
    let (tap, log) = MonitorTap::new(cluster.monitor_group);
    cluster.sim.spawn(node, Box::new(tap), "montap");

    let mut gen = TraceGenerator::new(WorkloadConfig {
        seed: seed ^ 0x33,
        users: 30,
        shared_objects: 90,
        private_per_user: 8,
        ..Default::default()
    });
    let t = gen.constant_rate(3.0, Duration::from_secs(40));
    let items: Vec<_> = Playback::new(&t, Schedule::Timestamps)
        .map(|(at, r)| (at, r.clone()))
        .collect();
    let _report = cluster.attach_client(items, Duration::from_secs(3));

    // Exercise every injection path the sim backend supports.
    let plan = FaultPlan::new()
        .with(
            Duration::from_secs(15),
            FaultKind::KillWorker {
                class: "cache".into(),
                which: 0,
            },
        )
        .with(Duration::from_secs(22), FaultKind::KillManager)
        .with(
            Duration::from_secs(30),
            FaultKind::Partition {
                pool: "dedicated".into(),
                which: 1,
                heal_after: Duration::from_secs(8),
            },
        )
        .with(
            Duration::from_secs(45),
            FaultKind::BeaconLoss {
                lasting: Duration::from_secs(2),
            },
        );
    SimChaos::install(&mut cluster.sim, &plan, SimChaosConfig::default());
    cluster
        .sim
        .run_until(SimTime::ZERO + plan.horizon(Duration::from_secs(120)));
    let rendered = log.borrow().canonical();
    assert!(!rendered.is_empty(), "the tap must have seen events");
    rendered
}

fn chaos_monitor_log(seed: u64) -> String {
    chaos_monitor_log_on(seed, SchedulerKind::default(), false)
}

#[test]
fn same_seed_same_plan_gives_byte_identical_monitor_logs() {
    let a = chaos_monitor_log(0xFA);
    let b = chaos_monitor_log(0xFA);
    assert_eq!(a, b, "monitor-event logs must be byte-identical");
    let c = chaos_monitor_log(0xFB);
    assert_ne!(a, c, "a different seed must perturb the event stream");
}

/// The chaos demo plan (kill-worker, kill-manager, partition, beacon
/// loss) must leave a byte-identical monitor-event log whether the
/// engine schedules with the heap baseline or the timer wheel.
#[test]
fn chaos_monitor_logs_are_byte_identical_across_schedulers() {
    let heap = chaos_monitor_log_on(0xFA, SchedulerKind::Heap, false);
    let wheel = chaos_monitor_log_on(0xFA, SchedulerKind::Wheel, false);
    assert_eq!(heap, wheel, "monitor logs must match byte-for-byte");
}

/// The same chaos plan with the front ends on async bodies: every task
/// wake is keyed to an engine event, so the monitor-event log stays
/// byte-identical across schedulers even mid-fault-injection.
#[test]
fn async_chaos_monitor_logs_are_byte_identical_across_schedulers() {
    let heap = chaos_monitor_log_on(0xFA, SchedulerKind::Heap, true);
    let wheel = chaos_monitor_log_on(0xFA, SchedulerKind::Wheel, true);
    assert_eq!(heap, wheel, "async monitor logs must match byte-for-byte");
}

/// One rolling-upgrade-under-load chaos run: a `RollingUpgrade` plan
/// verb walks two dedicated nodes through drain → upgraded rejoin while
/// a trace replays, and the byte-stable canonical monitor log (drains,
/// rejoins, respawns, and all) is returned.
fn rolling_upgrade_log_on(seed: u64, scheduler: SchedulerKind) -> String {
    let mut cluster = TranSendBuilder::new()
        .with_seed(seed)
        .with_scheduler(scheduler)
        .with_worker_nodes(5)
        .with_overflow_nodes(1)
        .with_frontends(1)
        .with_cache_partitions(2)
        .with_min_distillers(1)
        .with_origin_penalty_scale(0.1)
        .build();
    let node = cluster.sim.nodes_with_tag("infra")[0];
    let (tap, log) = MonitorTap::new(cluster.monitor_group);
    cluster.sim.spawn(node, Box::new(tap), "montap");

    let mut gen = TraceGenerator::new(WorkloadConfig {
        seed: seed ^ 0x77,
        users: 30,
        shared_objects: 90,
        private_per_user: 8,
        ..Default::default()
    });
    let t = gen.constant_rate(3.0, Duration::from_secs(60));
    let items: Vec<_> = Playback::new(&t, Schedule::Timestamps)
        .map(|(at, r)| (at, r.clone()))
        .collect();
    let _report = cluster.attach_client(items, Duration::from_secs(3));

    let plan = FaultPlan::new().with(
        Duration::from_secs(15),
        FaultKind::RollingUpgrade {
            pool: "dedicated".into(),
            nodes: 2,
            batch: 1,
            settle: Duration::from_secs(12),
        },
    );
    SimChaos::install(&mut cluster.sim, &plan, SimChaosConfig::default());
    cluster
        .sim
        .run_until(SimTime::ZERO + plan.horizon(Duration::from_secs(120)));
    let rendered = log.borrow().canonical();
    assert!(
        rendered.contains("node_drained") && rendered.contains("node_rejoined"),
        "the upgrade must have rolled: {rendered}"
    );
    rendered
}

/// A rolling upgrade under live load — the most schedule-sensitive
/// cluster operation, since drains race in-flight dispatches — must
/// leave a byte-identical monitor log on the heap baseline and the
/// timer wheel.
#[test]
fn rolling_upgrade_monitor_logs_are_byte_identical_across_schedulers() {
    let heap = rolling_upgrade_log_on(0xFA, SchedulerKind::Heap);
    let wheel = rolling_upgrade_log_on(0xFA, SchedulerKind::Wheel);
    assert_eq!(heap, wheel, "upgrade logs must match byte-for-byte");
}

/// One traced TranSend run, exported as JSONL. Trace emission rides the
/// engine's event order, so the export must inherit the engine's
/// scheduler-independence.
fn transend_trace_jsonl_on(seed: u64, scheduler: SchedulerKind) -> String {
    transend_trace_jsonl_sampled(seed, scheduler, 1, false)
}

/// The same traced run, head-sampled 1-in-`rate` at the front end.
fn transend_trace_jsonl_sampled(
    seed: u64,
    scheduler: SchedulerKind,
    rate: u32,
    async_logic: bool,
) -> String {
    let mut cluster = TranSendBuilder::new()
        .with_seed(seed)
        .with_scheduler(scheduler)
        .with_async_logic(async_logic)
        .with_worker_nodes(5)
        .with_frontends(1)
        .with_cache_partitions(2)
        .with_min_distillers(1)
        .with_origin_penalty_scale(0.1)
        .with_tracing(true)
        .with_trace_sampling(rate)
        .build();
    let mut gen = TraceGenerator::new(WorkloadConfig {
        seed: seed ^ 0x55,
        users: 20,
        shared_objects: 60,
        private_per_user: 6,
        ..Default::default()
    });
    let t = gen.constant_rate(4.0, Duration::from_secs(15));
    let items: Vec<_> = Playback::new(&t, Schedule::Timestamps)
        .map(|(at, r)| (at, r.clone()))
        .collect();
    let _report = cluster.attach_client(items, Duration::from_secs(3));
    cluster.sim.run_until(SimTime::from_secs(90));
    let log = cluster.trace().expect("tracing was enabled");
    assert!(!log.is_empty(), "the run must have recorded spans");
    cluster_sns::core::trace::to_jsonl(&log)
}

/// Head sampling is a pure function of the request number, so a
/// sampled export must be (a) byte-identical across schedulers, like
/// the full export, and (b) a strict, non-empty line-subset of the
/// full export for the same seed — sampling drops whole requests, it
/// never invents or reorders spans.
#[test]
fn sampled_trace_exports_are_deterministic_and_subset_the_full_export() {
    let full = transend_trace_jsonl_on(0xd7, SchedulerKind::Heap);
    let heap = transend_trace_jsonl_sampled(0xd7, SchedulerKind::Heap, 4, false);
    let wheel = transend_trace_jsonl_sampled(0xd7, SchedulerKind::Wheel, 4, false);
    assert_eq!(heap, wheel, "sampled exports must match byte-for-byte");
    assert!(
        heap.lines().count() > 0,
        "1-in-4 sampling should keep some spans"
    );
    assert!(
        heap.lines().count() < full.lines().count(),
        "1-in-4 sampling should drop some spans"
    );
    let full_lines: std::collections::BTreeSet<&str> = full.lines().collect();
    for line in heap.lines() {
        assert!(
            full_lines.contains(line),
            "sampled span missing from the full export: {line}"
        );
    }
}

/// Same seed, same workload: the JSONL trace export is byte-identical
/// whether the engine schedules with the heap baseline or the timer
/// wheel — traces are as replayable as the runs they observe.
#[test]
fn same_seed_trace_exports_are_byte_identical_across_schedulers() {
    let heap = transend_trace_jsonl_on(0xd7, SchedulerKind::Heap);
    let wheel = transend_trace_jsonl_on(0xd7, SchedulerKind::Wheel);
    assert_eq!(heap, wheel, "trace exports must match byte-for-byte");
}

/// Head-sampled tracing over the async request path: span emission
/// rides the same engine event order the executor wakes on, so the
/// sampled JSONL export from async-ported front ends must also be
/// byte-identical across schedulers.
#[test]
fn async_sampled_trace_exports_are_byte_identical_across_schedulers() {
    let heap = transend_trace_jsonl_sampled(0xd7, SchedulerKind::Heap, 4, true);
    let wheel = transend_trace_jsonl_sampled(0xd7, SchedulerKind::Wheel, 4, true);
    assert_eq!(
        heap, wheel,
        "async sampled exports must match byte-for-byte"
    );
    assert!(heap.lines().count() > 0, "sampling should keep some spans");
}

#[test]
fn hotbot_runs_are_bit_identical_given_a_seed() {
    let run = || {
        let mut cluster = HotBotBuilder::new()
            .with_partitions(5)
            .with_corpus_docs(400)
            .with_frontends(1)
            .build();
        let report = cluster.attach_client(6.0, 40, Duration::from_secs(4));
        cluster.sim.run_until(SimTime::from_secs(40));
        let r = report.borrow();
        (
            cluster.sim.events_dispatched(),
            r.answered,
            (r.latency.mean() * 1e9) as u64,
        )
    };
    assert_eq!(run(), run());
}

/// Shrinkable sequential ≡ sharded equivalence: random word streams
/// decode to a multi-shard topology (2–4 lanes of echo workers behind a
/// gateway), a packet schedule and a fault plan of echo kills; the
/// parallel lane driver must reproduce the sequential reference
/// fingerprint byte for byte. Failures shrink to a minimal divergent
/// word sequence via the testkit's choice-stream shrinking.
mod sharded {
    use std::time::Duration;

    use sns_testkit::{gens, props, tk_assert, tk_assert_eq};

    use cluster_sns::sim::engine::{Component, Ctx, NodeSpec, Sim, SimConfig, Wire};
    use cluster_sns::sim::network::IdealNetwork;
    use cluster_sns::sim::time::SimTime;
    use cluster_sns::sim::{ComponentId, Lane, PortId, ShardRun, ShardedSim, Uplink};

    #[derive(Clone)]
    struct Pkt(u64);
    impl Wire for Pkt {
        fn wire_size(&self) -> u64 {
            96
        }
    }

    struct Gateway {
        ups: Vec<Uplink<Pkt>>,
        local: ComponentId,
    }
    impl Component<Pkt> for Gateway {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Pkt>, _from: ComponentId, msg: Pkt) {
            ctx.stats().incr("hops", 1);
            if msg.0 == 0 {
                return;
            }
            if ctx.rng().below(3) == 0 {
                ctx.send(self.local, Pkt(msg.0 - 1));
            } else {
                let k = ctx.rng().below(self.ups.len() as u64) as usize;
                self.ups[k].send(ctx.now(), Pkt(msg.0 - 1));
            }
        }
    }

    struct Echo;
    impl Component<Pkt> for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Pkt>, from: ComponentId, msg: Pkt) {
            ctx.stats().incr("echoed", 1);
            ctx.send(from, msg);
        }
    }

    fn run(words: &[u64], parallel: bool) -> ShardRun {
        let shards = 2 + (words.first().copied().unwrap_or(0) % 3) as u32;
        let latency = Duration::from_millis(1);
        let mut ss: ShardedSim<Pkt, IdealNetwork> = ShardedSim::new(latency);
        for _ in 0..shards {
            let words: Vec<u64> = words.to_vec();
            ss.add_shard(move |shard| {
                let sim = Sim::new(
                    SimConfig::new().with_seed(0xdef ^ u64::from(shard.0)),
                    IdealNetwork::default(),
                );
                let mut lane = Lane::new(sim);
                let node = lane.sim().add_node(NodeSpec::new(1, "dedicated"));
                let local = lane.sim().spawn(node, Box::new(Echo), "echo");
                let ups: Vec<Uplink<Pkt>> = (0..shards)
                    .filter(|&t| t != shard.0)
                    .map(|t| lane.uplink(PortId(t)))
                    .collect();
                let gw = lane
                    .sim()
                    .spawn(node, Box::new(Gateway { ups, local }), "gateway");
                lane.bind(PortId(shard.0), gw);
                for (i, &w) in words.iter().enumerate() {
                    if i as u32 % shards != shard.0 {
                        continue;
                    }
                    if w % 5 == 4 {
                        // Fault plan: kill the shard's echo worker.
                        let at = SimTime::from_nanos((1 + (w >> 8) % 150_000) * 1_000);
                        lane.sim().at(at, |sim| {
                            if let Some(&v) = sim.components_of_kind("echo").first() {
                                sim.kill_component(v);
                            }
                        });
                    } else {
                        let at = SimTime::from_nanos(((w >> 8) % 100_000) * 1_000);
                        lane.sim().inject_at(at, gw, Pkt(2 + (w >> 4) % 30));
                    }
                }
                lane.set_report(|sim| {
                    sim.stats()
                        .all_counters()
                        .map(|(k, v)| format!("{k}={v};"))
                        .collect()
                });
                lane
            });
        }
        let until = SimTime::from_secs(1);
        if parallel {
            ss.run_parallel(until)
        } else {
            ss.run_sequential(until)
        }
    }

    props! {
        /// Whatever topology, schedule and fault plan the words encode,
        /// both lane drivers agree byte for byte.
        fn sharded_runs_match_the_sequential_reference(
            words in gens::vec(gens::any_u64(), 1..32),
        ) {
            let seq = run(&words, false);
            let par = run(&words, true);
            tk_assert_eq!(seq.fingerprint(), par.fingerprint());
            tk_assert!(seq.total_events() > 0);
        }
    }
}
