//! Cross-crate scalability and load-balance sanity: small versions of
//! the Table 2 claims that are cheap enough for the test suite.

use std::time::Duration;

use cluster_sns::core::SnsConfig;
use cluster_sns::sim::{Pcg32, SimTime};
use cluster_sns::transend::{TranSendBuilder, TranSendConfig};
use cluster_sns::workload::trace::TraceRecord;
use cluster_sns::workload::MimeType;

fn fixed_jpeg_items(rate: f64, secs: f64, seed: u64) -> Vec<(Duration, TraceRecord)> {
    let mut rng = Pcg32::new(seed);
    let mut out = Vec::new();
    let mut t = 0.0;
    loop {
        t += rng.exp(1.0 / rate);
        if t >= secs {
            break;
        }
        let obj = rng.below(30);
        out.push((
            Duration::from_secs_f64(t),
            TraceRecord {
                at: Duration::from_secs_f64(t),
                user: (obj % 20) as u32,
                url: format!("http://fixed/{obj}.jpg"),
                mime: MimeType::Jpeg,
                size: 10 * 1024,
            },
        ));
    }
    out
}

fn run(rate: f64) -> (u64, u64, usize, f64) {
    let mut cluster = TranSendBuilder::new()
        .with_seed(0x5ca1e)
        .with_worker_nodes(10)
        .with_overflow_nodes(2)
        .with_cores_per_node(2)
        .with_frontends(1)
        .with_cache_partitions(2)
        .with_min_distillers(1)
        .with_distillers(["jpeg"])
        .with_origin_penalty_scale(0.05)
        .with_ts(TranSendConfig {
            cache_distilled: false,
            ..Default::default()
        })
        .with_sns(SnsConfig {
            spawn_threshold_h: 6.0,
            spawn_cooldown_d: Duration::from_secs(4),
            ..Default::default()
        })
        .build();
    let items = fixed_jpeg_items(rate, 60.0, 11);
    let n = items.len() as u64;
    let report = cluster.attach_client(items, Duration::from_secs(4));
    cluster.sim.run_until(SimTime::from_secs(90));
    let r = report.borrow();
    (
        n,
        r.responses,
        cluster.distillers_of("distiller/jpeg").len(),
        r.latency.mean(),
    )
}

#[test]
fn distiller_population_scales_with_offered_load() {
    let (n1, done1, d1, _) = run(6.0);
    let (n2, done2, d2, _) = run(45.0);
    assert_eq!(done1, n1);
    assert_eq!(done2, n2, "high load must still complete everything");
    assert!(d2 > d1, "autoscaler must add distillers: {d1} -> {d2}");
    // ~23 req/s per distiller: 45 req/s needs at least 2, and the
    // autoscaler must not explode past a small multiple of the need.
    assert!((2..=8).contains(&d2), "distillers at 45 req/s: {d2}");
}

#[test]
fn per_user_latency_stays_bounded_as_load_grows_with_the_system() {
    // The scalability *claim*: adding resources keeps per-user service
    // roughly constant. Compare mean latency at light and at 7x load
    // (where the system has grown): the ratio must stay small, nowhere
    // near the 7x of an unscaled single server.
    let (_, _, _, lat_light) = run(6.0);
    let (_, _, _, lat_heavy) = run(42.0);
    assert!(
        lat_heavy < lat_light * 4.0,
        "latency must not scale with load: {lat_light:.3}s -> {lat_heavy:.3}s"
    );
}

#[test]
fn load_spreads_across_distillers() {
    // At a load needing several distillers, lottery + delta correction
    // must not starve any of them: every live distiller's queue series
    // shows activity.
    let mut cluster = TranSendBuilder::new()
        .with_seed(0xba1a)
        .with_worker_nodes(8)
        .with_cores_per_node(2)
        .with_frontends(1)
        .with_cache_partitions(2)
        .with_min_distillers(3)
        .with_distillers(["jpeg"])
        .with_origin_penalty_scale(0.05)
        .with_ts(TranSendConfig {
            cache_distilled: false,
            ..Default::default()
        })
        .build();
    let items = fixed_jpeg_items(40.0, 40.0, 5);
    let report = cluster.attach_client(items, Duration::from_secs(4));
    cluster.sim.run_until(SimTime::from_secs(70));
    let _ = report.borrow().responses;

    let stats = cluster.sim.stats();
    let mut busy = 0;
    let mut series_count = 0;
    for (name, series) in stats.all_series() {
        if name.starts_with("worker.qlen.distiller/jpeg.") {
            series_count += 1;
            if series.time_weighted_mean() > 0.05 {
                busy += 1;
            }
        }
    }
    assert!(series_count >= 3);
    assert_eq!(busy, series_count, "no distiller may be starved");
}
