//! The backend-agnostic [`Cluster`] trait, driven end-to-end over both
//! backends with the *same* harness function: submit waves, crash a
//! worker, verify recovery, check invariants over the decision log and
//! read counters by typed key. The simulator advances virtual time
//! inside `settle`; the threaded runtime waits on wall-clock replies —
//! the harness cannot tell and must not care. This is the parity
//! discipline lifted from one hand-written differential test to an API
//! contract any chaos plan or invariant checker can rely on.

use std::sync::Arc;
use std::time::Duration;

use cluster_sns::chaos::harness::SimClusterBuilder;
use cluster_sns::chaos::{CrashBudget, RespawnCoverage, SpawnBudget};
use cluster_sns::core::cluster::Cluster;
use cluster_sns::core::msg::Job;
use cluster_sns::core::worker::{WorkerError, WorkerLogic};
use cluster_sns::core::{Blob, Payload, WorkerClass};
use cluster_sns::rt::{RtCluster, RtConfig};
use cluster_sns::sim::rng::Pcg32;
use cluster_sns::sim::{MetricKey, SimTime};

struct Echo;

impl WorkerLogic for Echo {
    fn class(&self) -> WorkerClass {
        "echo".into()
    }
    fn service_time(&mut self, _j: &Job, _n: SimTime, _r: &mut Pcg32) -> Duration {
        Duration::from_millis(20)
    }
    fn process(&mut self, job: &Job, _n: SimTime, _r: &mut Pcg32) -> Result<Payload, WorkerError> {
        Ok(Blob::payload(job.input.wire_size() / 2, "echoed"))
    }
}

fn sim_cluster() -> impl Cluster {
    SimClusterBuilder::new()
        .with_workers("echo", 3, || Box::new(Echo))
        .start()
}

fn rt_cluster() -> Arc<RtCluster> {
    let c = RtCluster::start(
        RtConfig::new()
            .with_time_scale(0.02)
            .with_report_period(Duration::from_millis(10))
            .with_beacon_period(Duration::from_millis(20)),
    );
    c.add_workers("echo", 3, || Box::new(Echo));
    c
}

/// The shared script: a load wave, a worker crash, recovery, another
/// wave — asserting the same outcomes whichever backend is underneath.
/// `budget` is the settle allowance per phase (virtual for sim, wall
/// for rt — rt compresses service times, so a smaller budget works).
fn drive(c: &dyn Cluster, budget: Duration) {
    assert_eq!(c.workers_of("echo"), 3, "[{}] bootstrap", c.backend());
    for i in 0..6 {
        c.submit("echo", "echo", Blob::payload(256 + i, "wave1"));
    }
    let s = c.settle(budget);
    assert_eq!(s.answered, 6, "[{}] wave1: {s:?}", c.backend());
    assert_eq!(s.failed, 0, "[{}] wave1 clean", c.backend());

    assert!(c.crash_worker("echo"), "[{}] a victim exists", c.backend());
    let _ = c.settle(budget);
    assert_eq!(
        c.workers_of("echo"),
        3,
        "[{}] process peer restored",
        c.backend()
    );

    for i in 0..4 {
        c.submit("echo", "echo", Blob::payload(128 + i, "wave2"));
    }
    let s = c.settle(budget);
    assert_eq!(s.answered, 4, "[{}] wave2: {s:?}", c.backend());

    // The decision log satisfies the same invariants on both backends:
    // 3 bootstrap spawns + 1 recovery spawn covering the 1 injected
    // crash.
    let log = c.monitor_log();
    log.check(&mut SpawnBudget::new(4)).unwrap();
    log.check(&mut RespawnCoverage::new(4)).unwrap();
    log.check(&mut CrashBudget::new(1)).unwrap();

    // Typed counter keys resolve on both backends.
    assert!(
        c.counter(MetricKey::new("manager.load_reports")) >= 1,
        "[{}] load reports flowed",
        c.backend()
    );
    assert!(
        c.counter(MetricKey::new("stub.dispatches")) >= 10,
        "[{}] dispatch counters rolled up",
        c.backend()
    );
}

#[test]
fn one_harness_drives_both_backends() {
    let sim = sim_cluster();
    drive(&sim, Duration::from_secs(30));
    let rt = rt_cluster();
    drive(&*rt, Duration::from_secs(3));
    rt.shutdown();
}

/// Beacon blackout through the trait: with hints frozen, submits keep
/// landing from the stale cache (§3.1.8) on both backends.
#[test]
fn blackout_serves_from_stale_hints_on_both_backends() {
    fn script(c: &dyn Cluster, budget: Duration) {
        // Warm hint caches, then freeze them.
        for _ in 0..2 {
            c.submit("echo", "echo", Blob::payload(64, "warm"));
        }
        let s = c.settle(budget);
        assert_eq!(s.answered, 2, "[{}] warm-up: {s:?}", c.backend());
        c.set_beacon_blackout(true);
        for _ in 0..4 {
            c.submit("echo", "echo", Blob::payload(64, "dark"));
        }
        let s = c.settle(budget);
        assert_eq!(
            s.answered,
            4,
            "[{}] stale hints keep serving: {s:?}",
            c.backend()
        );
        c.set_beacon_blackout(false);
    }
    let sim = sim_cluster();
    script(&sim, Duration::from_secs(30));
    let rt = rt_cluster();
    script(&*rt, Duration::from_secs(3));
    rt.shutdown();
}
