//! Cross-crate fault-tolerance scenarios on the full TranSend stack:
//! the §3.1.3 process-peer web (front end restarts manager, manager
//! restarts workers), SAN partitions, and compound failures.
//!
//! Faults are expressed as declarative `sns-chaos` [`FaultPlan`]s where
//! they have a plan vocabulary (kills, partitions, failover); each run
//! records the monitor multicast through a [`MonitorTap`] and replays
//! the log through recovery-invariant checkers on top of the end-state
//! assertions.

use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cluster_sns::chaos::{
    check_death_reconciliation, CrashBudget, FaultKind, FaultPlan, RespawnCoverage, SimChaos,
    SimChaosConfig, SpawnBudget,
};
use cluster_sns::core::msg::{Job, JobResult};
use cluster_sns::core::worker::{WorkerError, WorkerLogic};
use cluster_sns::core::{Blob, MonitorTap, Payload, TapHandle, WorkerClass};
use cluster_sns::rt::{RtCluster, RtConfig};
use cluster_sns::sim::rng::Pcg32;
use cluster_sns::sim::SimTime;
use cluster_sns::transend::{TranSendBuilder, TranSendCluster};
use cluster_sns::workload::playback::{Playback, Schedule};
use cluster_sns::workload::trace::{TraceGenerator, WorkloadConfig};

fn items(seed: u64, rate: f64, secs: u64) -> Vec<(Duration, cluster_sns::workload::TraceRecord)> {
    let mut gen = TraceGenerator::new(WorkloadConfig {
        seed,
        users: 40,
        shared_objects: 150,
        private_per_user: 10,
        ..Default::default()
    });
    let t = gen.constant_rate(rate, Duration::from_secs(secs));
    Playback::new(&t, Schedule::Timestamps)
        .map(|(at, r)| (at, r.clone()))
        .collect()
}

fn small_cluster() -> cluster_sns::transend::TranSendCluster {
    TranSendBuilder::new()
        .with_worker_nodes(6)
        .with_overflow_nodes(1)
        .with_frontends(1)
        .with_cache_partitions(2)
        .with_min_distillers(1)
        .with_origin_penalty_scale(0.1)
        .build()
}

/// Attaches a monitor tap so invariants can replay the event stream.
fn tap(cluster: &mut TranSendCluster) -> TapHandle {
    let node = cluster.sim.nodes_with_tag("infra")[0];
    let (tap, log) = MonitorTap::new(cluster.monitor_group);
    cluster.sim.spawn(node, Box::new(tap), "montap");
    log
}

fn cache_count(cluster: &TranSendCluster) -> usize {
    cluster
        .sim
        .components_of_kind(cluster_sns::core::intern_class("cache"))
        .len()
}

#[test]
fn full_process_peer_chain_manager_death_mid_service() {
    let mut cluster = small_cluster();
    let log = tap(&mut cluster);
    let reqs = items(21, 4.0, 60);
    let n = reqs.len() as u64;
    let report = cluster.attach_client(reqs, Duration::from_secs(4));

    let plan = FaultPlan::new().with(Duration::from_secs(20), FaultKind::KillManager);
    let chaos = SimChaos::install(&mut cluster.sim, &plan, SimChaosConfig::default());
    cluster
        .sim
        .run_until(SimTime::ZERO + plan.horizon(Duration::from_secs(280)));

    let r = report.borrow();
    assert_eq!(r.responses, n, "stale hints carry the FEs through (§3.1.8)");
    assert_eq!(r.errors, 0);
    drop(r);
    assert_eq!(chaos.applied_count(), 1);
    let stats = cluster.sim.stats();
    assert!(
        stats.counter("fe.manager_restarts") >= 1,
        "FE restarted the manager"
    );
    // Reconciliation: the only death the engine saw is the planned one.
    check_death_reconciliation(stats.counter("sim.deaths"), plan.kills() as u64, 0).unwrap();
    assert_eq!(
        cluster.sim.components_of_kind("manager").len(),
        1,
        "exactly one manager after recovery"
    );
    // The new incarnation re-learned every pinned worker class without
    // double-spawning: still exactly 2 caches and 1 profile DB.
    assert_eq!(cache_count(&cluster), 2);
    assert_eq!(
        cluster
            .sim
            .components_of_kind(cluster_sns::core::intern_class("profiledb"))
            .len(),
        1
    );
    // The LB never kept routing to the corpse past the grace window.
    let violations = chaos.stale_routing_violations(&log.borrow());
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn san_partition_heals_and_service_recovers() {
    let mut cluster = small_cluster();
    let reqs = items(22, 3.0, 80);
    let n = reqs.len() as u64;
    let report = cluster.attach_client(reqs, Duration::from_secs(4));

    // Partition a worker node away from the rest of the cluster for 20 s
    // (§2.2.4: workers lost because of a SAN partition).
    let plan = FaultPlan::new().with(
        Duration::from_secs(25),
        FaultKind::Partition {
            pool: "dedicated".into(),
            which: 0,
            heal_after: Duration::from_secs(20),
        },
    );
    let chaos = SimChaos::install(&mut cluster.sim, &plan, SimChaosConfig::default());
    cluster.sim.run_until(SimTime::from_secs(400));

    let r = report.borrow();
    assert_eq!(r.responses, n, "partition must not lose requests");
    assert_eq!(r.errors, 0);
    drop(r);
    assert_eq!(chaos.applied_count(), 1);
}

#[test]
fn hot_upgrade_drains_and_restores_a_node() {
    // §2.2: "temporarily disable a subset of nodes and then upgrade them
    // in place ('hot upgrade')". Drain a worker node mid-service: its
    // workers shut down gracefully and are respawned elsewhere; requests
    // keep flowing; after the upgrade the node rejoins the pool. Drains
    // are administrative messages, not faults, so this scenario stays
    // message-driven rather than plan-driven.
    let mut cluster = small_cluster();
    let manager = cluster.manager;
    let reqs = items(29, 4.0, 80);
    let n = reqs.len() as u64;
    let report = cluster.attach_client(reqs, Duration::from_secs(4));

    let victim = cluster.sim.nodes_with_tag("dedicated")[0];
    cluster.sim.at(SimTime::from_secs(20), move |sim| {
        sim.inject(
            manager,
            cluster_sns::core::msg::SnsMsg::DrainNode { node: victim },
        );
    });
    // Mid-upgrade check: nothing may be running on the drained node.
    cluster.sim.at(SimTime::from_secs(45), move |sim| {
        let leftover = sim.components_on_node(victim).len() as u64;
        sim.stats_mut().incr("test.leftover_on_drained", leftover);
    });
    cluster.sim.at(SimTime::from_secs(55), move |sim| {
        sim.inject(
            manager,
            cluster_sns::core::msg::SnsMsg::UndrainNode { node: victim },
        );
    });
    cluster.sim.run_until(SimTime::from_secs(400));

    let r = report.borrow();
    assert_eq!(r.responses, n, "hot upgrade must not lose requests");
    assert_eq!(r.errors, 0);
    drop(r);
    let stats = cluster.sim.stats();
    assert_eq!(stats.counter("manager.drains"), 1);
    assert_eq!(stats.counter("manager.undrains"), 1);
    assert_eq!(
        stats.counter("test.leftover_on_drained"),
        0,
        "the drained node must be empty during the upgrade window"
    );
    // The pinned classes are back at full strength on the other nodes.
    assert_eq!(cache_count(&cluster), 2);
}

#[test]
fn drain_rejoin_plan_verbs_run_the_hot_upgrade() {
    // The plan-driven twin of `hot_upgrade_drains_and_restores_a_node`:
    // the same drain → rejoin cycle expressed as `DrainNode` /
    // `RejoinNode` fault-plan verbs, so cluster operations shrink,
    // replay, and diff exactly like faults do.
    let mut cluster = small_cluster();
    let log = tap(&mut cluster);
    let reqs = items(29, 4.0, 80);
    let n = reqs.len() as u64;
    let report = cluster.attach_client(reqs, Duration::from_secs(4));

    let plan = FaultPlan::new()
        .with(
            Duration::from_secs(20),
            FaultKind::DrainNode {
                pool: "dedicated".into(),
                which: 0,
            },
        )
        .with(
            Duration::from_secs(55),
            FaultKind::RejoinNode {
                pool: "dedicated".into(),
                which: 0,
            },
        );
    let chaos = SimChaos::install(&mut cluster.sim, &plan, SimChaosConfig::default());
    cluster
        .sim
        .run_until(SimTime::ZERO + plan.horizon(Duration::from_secs(300)));

    let r = report.borrow();
    assert_eq!(r.responses, n, "drain/rejoin must not lose requests");
    assert_eq!(r.errors, 0);
    drop(r);
    assert_eq!(chaos.applied_count(), 2, "both verbs applied, no skips");
    let stats = cluster.sim.stats();
    assert_eq!(stats.counter("manager.drains"), 1);
    assert_eq!(stats.counter("manager.undrains"), 1);
    let tapped = log.borrow();
    assert_eq!(tapped.count("node_drained"), 1);
    assert_eq!(tapped.count("node_rejoined"), 1);
    drop(tapped);
    assert_eq!(cache_count(&cluster), 2);
}

#[test]
fn partitioned_worker_is_replaced_by_timeout_inference() {
    // §2.2.4: "if workers lost because of a SAN partition can be
    // restarted on still-visible nodes, the manager performs the
    // necessary actions" — a partitioned node's workers stop reporting,
    // the manager presumes them lost and replaces them elsewhere; when
    // the partition heals, the stragglers re-adopt and any pinned-class
    // surplus is reaped back to strength.
    let mut cluster = small_cluster();
    let reqs = items(37, 3.0, 90);
    let n = reqs.len() as u64;
    let report = cluster.attach_client(reqs, Duration::from_secs(4));

    let lonely = cluster.sim.nodes_with_tag("dedicated")[0];
    let plan = FaultPlan::new().with(
        Duration::from_secs(25),
        FaultKind::Partition {
            pool: "dedicated".into(),
            which: 0,
            heal_after: Duration::from_secs(35),
        },
    );
    SimChaos::install(&mut cluster.sim, &plan, SimChaosConfig::default());
    // Check replacement happened while still partitioned.
    cluster.sim.at(SimTime::from_secs(45), move |sim| {
        let caches = sim.components_of_kind(cluster_sns::core::intern_class("cache"));
        let off_lonely = caches
            .iter()
            .filter(|&&c| sim.node_of(c) != Some(lonely))
            .count() as u64;
        sim.stats_mut()
            .incr("test.caches_off_partition", off_lonely);
    });
    cluster.sim.run_until(SimTime::from_secs(400));

    let r = report.borrow();
    assert_eq!(r.responses, n);
    assert_eq!(r.errors, 0);
    drop(r);
    let stats = cluster.sim.stats();
    assert!(
        stats.counter("manager.report_timeouts") >= 1,
        "silent (partitioned) workers were presumed lost"
    );
    assert!(
        stats.counter("test.caches_off_partition") >= 2,
        "full cache strength restored on visible nodes during the partition"
    );
    // After healing + reaping, the pinned class is back at exactly 2.
    assert_eq!(cache_count(&cluster), 2);
}

#[test]
fn client_side_balancing_masks_front_end_failure() {
    // §3.1.2: client-side logic "balances load across multiple front
    // ends and masks transient front end failures". With two FEs, kill
    // one mid-run: the client's round-robin skips the dead FE and every
    // *new* request still succeeds (requests in flight at the instant of
    // the kill are the client's to retry in the real system; the trace
    // client counts them as unanswered, so we assert on the tail).
    let mut cluster = TranSendBuilder::new()
        .with_worker_nodes(6)
        .with_overflow_nodes(1)
        .with_frontends(2)
        .with_cache_partitions(2)
        .with_min_distillers(1)
        .with_origin_penalty_scale(0.1)
        .build();
    let reqs = items(31, 4.0, 60);
    let n = reqs.len() as u64;
    let report = cluster.attach_client(reqs, Duration::from_secs(4));

    // A front end is just another component kind to the plan grammar.
    let plan = FaultPlan::new().with(
        Duration::from_secs(20),
        FaultKind::KillWorker {
            class: "frontend".into(),
            which: 1,
        },
    );
    let chaos = SimChaos::install(&mut cluster.sim, &plan, SimChaosConfig::default());
    cluster.sim.run_until(SimTime::from_secs(300));

    let r = report.borrow();
    assert_eq!(r.errors, 0);
    // Only the requests in flight at the dead FE at kill time can be
    // lost; everything sent afterwards is served by the survivor.
    assert!(
        n - r.responses <= 5,
        "at most a handful of in-flight requests lost: {} of {}",
        n - r.responses,
        n
    );
    drop(r);
    assert_eq!(chaos.applied_count(), 1);
    assert_eq!(
        cluster.sim.components_of_kind("frontend").len(),
        1,
        "the surviving front end carries the service"
    );
}

#[test]
fn node_loss_with_workers_is_replaced_elsewhere() {
    let mut cluster = small_cluster();
    let log = tap(&mut cluster);
    let reqs = items(23, 4.0, 60);
    let n = reqs.len() as u64;
    let report = cluster.attach_client(reqs, Duration::from_secs(4));
    // Kill a whole worker node once things are running: every worker on
    // it (cache partitions, distillers, …) must be replaced on the
    // surviving nodes.
    let plan = FaultPlan::new().with(
        Duration::from_secs(20),
        FaultKind::KillNode {
            pool: "dedicated".into(),
            which: 0,
        },
    );
    let chaos = SimChaos::install(&mut cluster.sim, &plan, SimChaosConfig::default());
    cluster.sim.run_until(SimTime::from_secs(300));
    let r = report.borrow();
    assert_eq!(r.responses, n);
    assert_eq!(r.errors, 0);
    drop(r);
    assert_eq!(chaos.applied_count(), 1);
    // The pinned cache class is back at strength on other nodes.
    assert_eq!(cache_count(&cluster), 2);
    let violations = chaos.stale_routing_violations(&log.borrow());
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn crash_during_queue_salvage_still_conserves_jobs() {
    // Kill a cache partition, then kill its replacement 500 ms later —
    // inside the salvage window, while the front ends are still retrying
    // the first victim's outstanding requests against the newborn. The
    // manager must go around the spawn loop again and no request may be
    // lost to the compound failure.
    let mut cluster = small_cluster();
    let log = tap(&mut cluster);
    let reqs = items(41, 4.0, 60);
    let n = reqs.len() as u64;
    let report = cluster.attach_client(reqs, Duration::from_secs(4));

    let plan = FaultPlan::new()
        .with(
            Duration::from_secs(20),
            FaultKind::KillWorker {
                class: "cache".into(),
                which: 0,
            },
        )
        .with(
            Duration::from_millis(20_500),
            FaultKind::KillWorker {
                class: "cache".into(),
                which: 0,
            },
        );
    let chaos = SimChaos::install(&mut cluster.sim, &plan, SimChaosConfig::default());
    cluster
        .sim
        .run_until(SimTime::ZERO + plan.horizon(Duration::from_secs(280)));

    let r = report.borrow();
    assert_eq!(r.responses, n, "no request lost to the compound crash");
    assert_eq!(r.errors, 0);
    drop(r);
    assert_eq!(chaos.applied_count(), 2);
    assert_eq!(cache_count(&cluster), 2, "population restored");
    let log = log.borrow();
    // Boot spawned 6 workers (2 caches + 1 profile DB + 3 distillers);
    // both kills must have produced replacements on top of that.
    log.check(&mut RespawnCoverage::new(8)).unwrap();
    let violations = chaos.stale_routing_violations(&log);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn double_crash_of_same_logical_worker_recovers_twice() {
    // The same logical worker (cache partition 0) dies twice, 10 s
    // apart — recovery must be repeatable, not a one-shot: full strength
    // and full service after each round.
    let mut cluster = small_cluster();
    let log = tap(&mut cluster);
    let reqs = items(43, 4.0, 60);
    let n = reqs.len() as u64;
    let report = cluster.attach_client(reqs, Duration::from_secs(4));

    let kill = FaultKind::KillWorker {
        class: "cache".into(),
        which: 0,
    };
    let plan = FaultPlan::new()
        .with(Duration::from_secs(20), kill.clone())
        .with(Duration::from_secs(30), kill);
    let chaos = SimChaos::install(&mut cluster.sim, &plan, SimChaosConfig::default());
    cluster
        .sim
        .run_until(SimTime::ZERO + plan.horizon(Duration::from_secs(280)));

    let r = report.borrow();
    assert_eq!(r.responses, n);
    assert_eq!(r.errors, 0);
    drop(r);
    assert_eq!(chaos.applied_count(), 2);
    assert_eq!(cache_count(&cluster), 2);
    let log = log.borrow();
    log.check(&mut RespawnCoverage::new(8)).unwrap();
    let violations = chaos.stale_routing_violations(&log);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn manager_failover_with_beacon_in_flight() {
    // Kill the manager 200 µs after a beacon left its NIC: the beacon is
    // still in the SAN when its sender dies. The front ends must both
    // consume that last beacon harmlessly and still detect the loss and
    // restart the manager — a message from the dead must not postpone
    // failover or confuse the new incarnation.
    let mut cluster = small_cluster();
    let reqs = items(47, 4.0, 60);
    let n = reqs.len() as u64;
    let report = cluster.attach_client(reqs, Duration::from_secs(4));

    // Beacons go out every 1 s from boot; 20 s + 200 µs is just after
    // one is emitted and well inside the ~ms SAN delivery time.
    let plan = FaultPlan::new().with(Duration::from_micros(20_000_200), FaultKind::KillManager);
    let chaos = SimChaos::install(&mut cluster.sim, &plan, SimChaosConfig::default());
    cluster
        .sim
        .run_until(SimTime::ZERO + plan.horizon(Duration::from_secs(280)));

    let r = report.borrow();
    assert_eq!(r.responses, n);
    assert_eq!(r.errors, 0);
    drop(r);
    assert_eq!(chaos.applied_count(), 1);
    let stats = cluster.sim.stats();
    assert!(stats.counter("fe.manager_restarts") >= 1);
    check_death_reconciliation(stats.counter("sim.deaths"), plan.kills() as u64, 0).unwrap();
    assert_eq!(
        cluster.sim.components_of_kind("manager").len(),
        1,
        "exactly one manager survives the in-flight beacon"
    );
    assert_eq!(cache_count(&cluster), 2);
}

// ---------------------------------------------------------------------------
// The same plans, the same checkers — against the threaded runtime.
//
// Since the control plane moved into shared sans-IO machines, the rt
// backend emits the same canonical monitor stream the sim does, so the
// recovery invariants below (`SpawnBudget`, `RespawnCoverage`,
// `CrashBudget`, death reconciliation) replay over an `RtCluster`'s
// `MonitorLog` completely unchanged.
// ---------------------------------------------------------------------------

/// Modelled-to-wall-clock compression for the rt scenarios.
const RT_SCALE: f64 = 0.05;

struct RtEcho;

impl WorkerLogic for RtEcho {
    fn class(&self) -> WorkerClass {
        "echo".into()
    }
    fn service_time(&mut self, _j: &Job, _n: SimTime, _r: &mut Pcg32) -> Duration {
        Duration::from_millis(20)
    }
    fn process(&mut self, job: &Job, _n: SimTime, _r: &mut Pcg32) -> Result<Payload, WorkerError> {
        Ok(Blob::payload(job.input.wire_size(), "echoed"))
    }
}

fn rt_cluster() -> Arc<RtCluster> {
    let c = RtCluster::start(
        RtConfig::new()
            .with_time_scale(RT_SCALE)
            .with_report_period(Duration::from_millis(10))
            .with_beacon_period(Duration::from_millis(20)),
    );
    c.add_workers("echo", 3, || Box::new(RtEcho));
    c
}

fn rt_await_population(c: &RtCluster, n: usize, restarts: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if c.workers_of("echo") == n && c.restarts.load(Ordering::Relaxed) >= restarts {
            return;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!(
        "rt population not restored: {} workers, {} restarts",
        c.workers_of("echo"),
        c.restarts.load(Ordering::Relaxed)
    );
}

#[test]
fn rt_kill_worker_plan_passes_sim_recovery_invariants() {
    let c = rt_cluster();
    let kill = FaultKind::KillWorker {
        class: "echo".into(),
        which: 0,
    };
    let plan = FaultPlan::new()
        .with(Duration::from_secs(2), kill.clone())
        .with(Duration::from_secs(4), kill);
    let injector = cluster_sns::chaos::rt::run_plan(Arc::clone(&c), &plan, RT_SCALE);

    let receivers: Vec<_> = (0..100)
        .map(|i| c.submit("echo", "op", Blob::payload(100 + i, "x"), None))
        .collect();

    let report = injector.join().expect("injector thread");
    assert_eq!(report.applied.len(), 2, "{report:?}");
    assert!(report.skipped.is_empty(), "{report:?}");
    assert_eq!(report.crashes_injected, 2);

    for rx in receivers {
        match rx.recv_timeout(Duration::from_secs(30)).expect("reply") {
            JobResult::Ok(_) => {}
            JobResult::Failed(e) => panic!("job failed under rt chaos: {e}"),
        }
    }
    rt_await_population(&c, 3, 2);
    c.shutdown();

    let log = c.monitor_log();
    // 3 bootstrap spawns + exactly one respawn per planned kill.
    log.check(&mut SpawnBudget::new(5)).unwrap();
    log.check(&mut RespawnCoverage::new(5)).unwrap();
    log.check(&mut CrashBudget::new(2)).unwrap();
    check_death_reconciliation(
        c.crashes.load(Ordering::Relaxed),
        report.crashes_injected as u64,
        0,
    )
    .unwrap();
}

#[test]
fn rt_kill_manager_plan_passes_sim_recovery_invariants() {
    // Manager failover with a worker death in the gap: the replacement
    // spawn is deferred until the new incarnation takes over, and the
    // checkers still close over the resulting monitor stream. (The
    // failover respawn comes from the new incarnation's ensure pass, so
    // it is a plain spawn — no peer_restarted attribution.)
    let c = rt_cluster();
    let plan = FaultPlan::new()
        .with(Duration::from_secs(2), FaultKind::KillManager)
        .with(
            Duration::from_millis(2500),
            FaultKind::KillWorker {
                class: "echo".into(),
                which: 0,
            },
        )
        .with(Duration::from_secs(5), FaultKind::RestartManager);
    let injector = cluster_sns::chaos::rt::run_plan(Arc::clone(&c), &plan, RT_SCALE);

    let receivers: Vec<_> = (0..100)
        .map(|i| c.submit("echo", "op", Blob::payload(50 + i, "x"), None))
        .collect();

    let report = injector.join().expect("injector thread");
    assert_eq!(report.applied.len(), 3, "{report:?}");
    assert!(report.skipped.is_empty(), "{report:?}");
    assert_eq!(report.crashes_injected, 1);

    for rx in receivers {
        match rx.recv_timeout(Duration::from_secs(30)).expect("reply") {
            JobResult::Ok(_) => {}
            JobResult::Failed(e) => panic!("job failed across rt failover: {e}"),
        }
    }
    rt_await_population(&c, 3, 1);
    c.shutdown();

    let log = c.monitor_log();
    log.check(&mut RespawnCoverage::new(4)).unwrap();
    log.check(&mut CrashBudget::new(1)).unwrap();
    check_death_reconciliation(c.crashes.load(Ordering::Relaxed), 1, 0).unwrap();
}
