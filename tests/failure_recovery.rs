//! Cross-crate fault-tolerance scenarios on the full TranSend stack:
//! the §3.1.3 process-peer web (front end restarts manager, manager
//! restarts workers), SAN partitions, and compound failures.

use std::time::Duration;

use cluster_sns::sim::SimTime;
use cluster_sns::transend::TranSendBuilder;
use cluster_sns::workload::playback::{Playback, Schedule};
use cluster_sns::workload::trace::{TraceGenerator, WorkloadConfig};

fn items(seed: u64, rate: f64, secs: u64) -> Vec<(Duration, cluster_sns::workload::TraceRecord)> {
    let mut gen = TraceGenerator::new(WorkloadConfig {
        seed,
        users: 40,
        shared_objects: 150,
        private_per_user: 10,
        ..Default::default()
    });
    let t = gen.constant_rate(rate, Duration::from_secs(secs));
    Playback::new(&t, Schedule::Timestamps)
        .map(|(at, r)| (at, r.clone()))
        .collect()
}

fn small_cluster() -> cluster_sns::transend::TranSendCluster {
    TranSendBuilder::new()
        .with_worker_nodes(6)
        .with_overflow_nodes(1)
        .with_frontends(1)
        .with_cache_partitions(2)
        .with_min_distillers(1)
        .with_origin_penalty_scale(0.1)
        .build()
}

#[test]
fn full_process_peer_chain_manager_death_mid_service() {
    let mut cluster = small_cluster();
    let manager = cluster.manager;
    let reqs = items(21, 4.0, 60);
    let n = reqs.len() as u64;
    let report = cluster.attach_client(reqs, Duration::from_secs(4));
    cluster.sim.at(SimTime::from_secs(20), move |sim| {
        sim.kill_component(manager)
    });
    cluster.sim.run_until(SimTime::from_secs(300));

    let r = report.borrow();
    assert_eq!(r.responses, n, "stale hints carry the FEs through (§3.1.8)");
    assert_eq!(r.errors, 0);
    drop(r);
    let stats = cluster.sim.stats();
    assert!(
        stats.counter("fe.manager_restarts") >= 1,
        "FE restarted the manager"
    );
    assert_eq!(
        cluster.sim.components_of_kind("manager").len(),
        1,
        "exactly one manager after recovery"
    );
    // The new incarnation re-learned every pinned worker class without
    // double-spawning: still exactly 2 caches and 1 profile DB.
    assert_eq!(
        cluster
            .sim
            .components_of_kind(cluster_sns::core::intern_class("cache"))
            .len(),
        2
    );
    assert_eq!(
        cluster
            .sim
            .components_of_kind(cluster_sns::core::intern_class("profiledb"))
            .len(),
        1
    );
}

#[test]
fn san_partition_heals_and_service_recovers() {
    let mut cluster = small_cluster();
    let reqs = items(22, 3.0, 80);
    let n = reqs.len() as u64;
    let report = cluster.attach_client(reqs, Duration::from_secs(4));

    // Partition a worker node away from the rest of the cluster for 20 s
    // (§2.2.4: workers lost because of a SAN partition).
    let lonely = cluster.sim.nodes_with_tag("dedicated")[0];
    let everyone: Vec<_> = (0..32)
        .map(cluster_sns::sim::NodeId)
        .filter(|&n| n != lonely)
        .collect();
    cluster.sim.at(SimTime::from_secs(25), move |sim| {
        sim.net_mut().partition(&[vec![lonely], everyone.clone()]);
    });
    cluster.sim.at(SimTime::from_secs(45), |sim| {
        sim.net_mut().heal();
    });
    cluster.sim.run_until(SimTime::from_secs(400));

    let r = report.borrow();
    assert_eq!(r.responses, n, "partition must not lose requests");
    assert_eq!(r.errors, 0);
}

#[test]
fn hot_upgrade_drains_and_restores_a_node() {
    // §2.2: "temporarily disable a subset of nodes and then upgrade them
    // in place ('hot upgrade')". Drain a worker node mid-service: its
    // workers shut down gracefully and are respawned elsewhere; requests
    // keep flowing; after the upgrade the node rejoins the pool.
    let mut cluster = small_cluster();
    let manager = cluster.manager;
    let reqs = items(29, 4.0, 80);
    let n = reqs.len() as u64;
    let report = cluster.attach_client(reqs, Duration::from_secs(4));

    let victim = cluster.sim.nodes_with_tag("dedicated")[0];
    cluster.sim.at(SimTime::from_secs(20), move |sim| {
        sim.inject(
            manager,
            cluster_sns::core::msg::SnsMsg::DrainNode { node: victim },
        );
    });
    // Mid-upgrade check: nothing may be running on the drained node.
    cluster.sim.at(SimTime::from_secs(45), move |sim| {
        let leftover = sim.components_on_node(victim).len() as u64;
        sim.stats_mut().incr("test.leftover_on_drained", leftover);
    });
    cluster.sim.at(SimTime::from_secs(55), move |sim| {
        sim.inject(
            manager,
            cluster_sns::core::msg::SnsMsg::UndrainNode { node: victim },
        );
    });
    cluster.sim.run_until(SimTime::from_secs(400));

    let r = report.borrow();
    assert_eq!(r.responses, n, "hot upgrade must not lose requests");
    assert_eq!(r.errors, 0);
    drop(r);
    let stats = cluster.sim.stats();
    assert_eq!(stats.counter("manager.drains"), 1);
    assert_eq!(stats.counter("manager.undrains"), 1);
    assert_eq!(
        stats.counter("test.leftover_on_drained"),
        0,
        "the drained node must be empty during the upgrade window"
    );
    // The pinned classes are back at full strength on the other nodes.
    assert_eq!(
        cluster
            .sim
            .components_of_kind(cluster_sns::core::intern_class("cache"))
            .len(),
        2
    );
}

#[test]
fn partitioned_worker_is_replaced_by_timeout_inference() {
    // §2.2.4: "if workers lost because of a SAN partition can be
    // restarted on still-visible nodes, the manager performs the
    // necessary actions" — a partitioned node's workers stop reporting,
    // the manager presumes them lost and replaces them elsewhere; when
    // the partition heals, the stragglers re-adopt and any pinned-class
    // surplus is reaped back to strength.
    let mut cluster = small_cluster();
    let reqs = items(37, 3.0, 90);
    let n = reqs.len() as u64;
    let report = cluster.attach_client(reqs, Duration::from_secs(4));

    let lonely = cluster.sim.nodes_with_tag("dedicated")[0];
    let everyone: Vec<_> = (0..32)
        .map(cluster_sns::sim::NodeId)
        .filter(|&nd| nd != lonely)
        .collect();
    cluster.sim.at(SimTime::from_secs(25), move |sim| {
        sim.net_mut().partition(&[vec![lonely], everyone.clone()]);
    });
    // Check replacement happened while still partitioned.
    cluster.sim.at(SimTime::from_secs(45), move |sim| {
        let caches = sim.components_of_kind(cluster_sns::core::intern_class("cache"));
        let off_lonely = caches
            .iter()
            .filter(|&&c| sim.node_of(c) != Some(lonely))
            .count() as u64;
        sim.stats_mut()
            .incr("test.caches_off_partition", off_lonely);
    });
    cluster.sim.at(SimTime::from_secs(60), |sim| {
        sim.net_mut().heal();
    });
    cluster.sim.run_until(SimTime::from_secs(400));

    let r = report.borrow();
    assert_eq!(r.responses, n);
    assert_eq!(r.errors, 0);
    drop(r);
    let stats = cluster.sim.stats();
    assert!(
        stats.counter("manager.report_timeouts") >= 1,
        "silent (partitioned) workers were presumed lost"
    );
    assert!(
        stats.counter("test.caches_off_partition") >= 2,
        "full cache strength restored on visible nodes during the partition"
    );
    // After healing + reaping, the pinned class is back at exactly 2.
    assert_eq!(
        cluster
            .sim
            .components_of_kind(cluster_sns::core::intern_class("cache"))
            .len(),
        2
    );
}

#[test]
fn client_side_balancing_masks_front_end_failure() {
    // §3.1.2: client-side logic "balances load across multiple front
    // ends and masks transient front end failures". With two FEs, kill
    // one mid-run: the client's round-robin skips the dead FE and every
    // *new* request still succeeds (requests in flight at the instant of
    // the kill are the client's to retry in the real system; the trace
    // client counts them as unanswered, so we assert on the tail).
    let mut cluster = TranSendBuilder::new()
        .with_worker_nodes(6)
        .with_overflow_nodes(1)
        .with_frontends(2)
        .with_cache_partitions(2)
        .with_min_distillers(1)
        .with_origin_penalty_scale(0.1)
        .build();
    let reqs = items(31, 4.0, 60);
    let n = reqs.len() as u64;
    let report = cluster.attach_client(reqs, Duration::from_secs(4));
    let victim_fe = cluster.fes[1];
    cluster.sim.at(SimTime::from_secs(20), move |sim| {
        sim.kill_component(victim_fe)
    });
    cluster.sim.run_until(SimTime::from_secs(300));

    let r = report.borrow();
    assert_eq!(r.errors, 0);
    // Only the requests in flight at the dead FE at kill time can be
    // lost; everything sent afterwards is served by the survivor.
    assert!(
        n - r.responses <= 5,
        "at most a handful of in-flight requests lost: {} of {}",
        n - r.responses,
        n
    );
    drop(r);
    assert_eq!(
        cluster.sim.components_of_kind("frontend").len(),
        1,
        "the surviving front end carries the service"
    );
}

#[test]
fn node_loss_with_workers_is_replaced_elsewhere() {
    let mut cluster = small_cluster();
    let reqs = items(23, 4.0, 60);
    let n = reqs.len() as u64;
    let report = cluster.attach_client(reqs, Duration::from_secs(4));
    // Kill a whole worker node once things are running: every worker on
    // it (cache partitions, distillers, …) must be replaced on the
    // surviving nodes.
    cluster.sim.at(SimTime::from_secs(20), |sim| {
        let node = sim.nodes_with_tag("dedicated")[0];
        sim.kill_node(node);
    });
    cluster.sim.run_until(SimTime::from_secs(300));
    let r = report.borrow();
    assert_eq!(r.responses, n);
    assert_eq!(r.errors, 0);
    drop(r);
    // The pinned cache class is back at strength on other nodes.
    assert_eq!(
        cluster
            .sim
            .components_of_kind(cluster_sns::core::intern_class("cache"))
            .len(),
        2
    );
}
