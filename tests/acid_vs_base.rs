//! The paper's central data-semantics split (§1.4, §3.1.8), exercised
//! across crates: the ACID profile database survives crashes with every
//! committed transaction intact, while BASE data (caches, manager state,
//! load hints) can be thrown away wholesale at only a performance cost.

use std::time::Duration;

use cluster_sns::profiledb::{MemDevice, ProfileDb, Txn, Wal};
use cluster_sns::sim::SimTime;
use cluster_sns::transend::TranSendBuilder;
use cluster_sns::workload::playback::{Playback, Schedule};
use cluster_sns::workload::trace::{TraceGenerator, WorkloadConfig};

#[test]
fn acid_component_survives_crash_with_committed_prefix() {
    let mut db = ProfileDb::open(Wal::new(MemDevice::new())).unwrap();
    for i in 0..100 {
        db.commit(Txn::new().put(format!("u{i}"), "quality", "25").put(
            format!("u{i}"),
            "scale",
            "2",
        ))
        .unwrap();
    }
    // Crash with a torn final write.
    let mut dev = std::mem::replace(db.device_mut(), MemDevice::new());
    dev.crash(3);
    let mut recovered = ProfileDb::open(Wal::new(dev)).unwrap();
    // All but possibly the torn last transaction survive, atomically.
    assert!(recovered.user_count() >= 99);
    for i in 0..recovered.user_count().saturating_sub(1) {
        let p = recovered.profile(&format!("u{i}")).expect("atomic commit");
        assert_eq!(p.len(), 2, "transactions are all-or-nothing");
    }
}

#[test]
fn base_state_is_disposable_at_only_a_performance_cost() {
    let build = || {
        TranSendBuilder::new()
            .with_worker_nodes(6)
            .with_frontends(1)
            .with_cache_partitions(3)
            .with_min_distillers(1)
            .with_origin_penalty_scale(0.1)
            .build()
    };
    let trace_items = || {
        let mut gen = TraceGenerator::new(WorkloadConfig {
            seed: 77,
            users: 40,
            shared_objects: 120,
            private_per_user: 10,
            ..Default::default()
        });
        let t = gen.constant_rate(4.0, Duration::from_secs(40));
        Playback::new(&t, Schedule::Timestamps)
            .map(|(at, r)| (at, r.clone()))
            .collect::<Vec<_>>()
    };

    // Baseline run.
    let mut healthy = build();
    let n = trace_items().len() as u64;
    let healthy_report = healthy.attach_client(trace_items(), Duration::from_secs(4));
    healthy.sim.run_until(SimTime::from_secs(250));

    // Run with ALL BASE state destroyed mid-stream: every cache
    // partition killed and the manager killed with them.
    let mut lossy = build();
    let manager = lossy.manager;
    let lossy_report = lossy.attach_client(trace_items(), Duration::from_secs(4));
    lossy.sim.at(SimTime::from_secs(20), move |sim| {
        for c in sim.components_of_kind(cluster_sns::core::intern_class("cache")) {
            sim.kill_component(c);
        }
        sim.kill_component(manager);
    });
    lossy.sim.run_until(SimTime::from_secs(250));

    let h = healthy_report.borrow();
    let l = lossy_report.borrow();
    // Same correctness: every request answered, no errors, either way.
    assert_eq!(h.responses, n);
    assert_eq!(l.responses, n, "BASE loss must not lose requests");
    assert_eq!(l.errors, 0);
    // Only performance differs.
    assert!(
        l.latency.mean() >= h.latency.mean() * 0.8,
        "losing caches cannot make things faster: {} vs {}",
        l.latency.mean(),
        h.latency.mean()
    );
}
