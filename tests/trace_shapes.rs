//! Shape checks on the end-to-end request traces (`sns_core::trace`):
//! a TranSend run with tracing on must export valid Chrome
//! `trace_event` JSON, and each request's depth-1 child spans —
//! front-end overhead plus the dispatches issued on its behalf — must
//! partition the request's lifetime exactly, so the per-stage latency
//! breakdown (Figure 7) sums to the measured end-to-end latency.
//!
//! The Perfetto protobuf exporter gets its own checks: a golden-bytes
//! round trip over a small fixed log (any byte change is a format
//! break someone must consciously re-bless), and a property test over
//! generated span trees asserting the encoded TrackEvent stream
//! preserves every parent/child edge and timestamp through a minimal
//! independent protobuf reader.
//!
//! The workload is pass-through (`MimeType::Other` → identity
//! pipeline): the only dispatch that *overlaps* the reply is the
//! fire-and-forget cache inject, which starts exactly at reply time
//! and is therefore excluded by the strict `start < end` filter below.

use std::time::Duration;

use std::collections::BTreeMap;

use cluster_sns::core::trace::{
    job_span_id, normalized, queue_span_id, request_span_id, span, to_chrome, to_jsonl,
    to_perfetto, SpanId, SpanRecord, TraceLog,
};
use cluster_sns::sim::{ComponentId, SimTime};
use cluster_sns::transend::TranSendBuilder;
use cluster_sns::workload::trace::TraceRecord;
use cluster_sns::workload::MimeType;
use sns_testkit::{gens, props, tk_assert, tk_assert_eq};

/// A small pass-through workload: distinct binary objects, one request
/// every 400 ms.
fn passthrough_items(n: u64) -> Vec<(Duration, TraceRecord)> {
    (0..n)
        .map(|i| {
            (
                Duration::from_millis(400 * i),
                TraceRecord {
                    at: Duration::from_millis(400 * i),
                    user: 7,
                    url: format!("bin://object/{i}"),
                    mime: MimeType::Other,
                    size: 16 * 1024,
                },
            )
        })
        .collect()
}

/// Minimal structural JSON validation: balanced braces/brackets outside
/// strings, correct escape handling, nothing after the top-level value.
fn assert_valid_json(s: &str) {
    let mut depth: i64 = 0;
    let mut in_str = false;
    let mut escaped = false;
    let mut closed = false;
    for c in s.chars() {
        if closed {
            panic!("trailing garbage after top-level JSON value");
        }
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                assert!(depth >= 0, "unbalanced close");
                if depth == 0 {
                    closed = true;
                }
            }
            _ => {}
        }
    }
    assert!(closed, "JSON value never closed");
}

#[test]
fn transend_trace_is_valid_chrome_json_and_spans_sum_to_latency() {
    let mut cluster = TranSendBuilder::new()
        .with_seed(0x7a11)
        .with_worker_nodes(5)
        .with_frontends(1)
        .with_cache_partitions(2)
        .with_min_distillers(1)
        .with_origin_penalty_scale(0.1)
        .with_tracing(true)
        .build();
    let report = cluster.attach_client(passthrough_items(12), Duration::from_secs(3));
    cluster.sim.run_until(SimTime::from_secs(60));
    assert_eq!(report.borrow().responses, 12, "all requests answered");

    let log = cluster.trace().expect("tracing was enabled");
    assert!(!log.is_empty());

    // Chrome export: structurally valid JSON with one event per span.
    let chrome = to_chrome(&log);
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(chrome.ends_with("]}"));
    assert_valid_json(&chrome);
    assert_eq!(chrome.matches("\"ph\":").count(), log.len());

    // JSONL export: one line per span.
    let jsonl = to_jsonl(&log);
    assert_eq!(jsonl.lines().count(), log.len());

    // The normalized rendering has one root per answered request.
    let tree = normalized(&log);
    let roots = tree.lines().filter(|l| l.starts_with("req:")).count();
    assert_eq!(roots, 12, "one request root per response:\n{tree}");

    // Figure-7 property: every request's depth-1 children (overhead +
    // dispatches started strictly before the reply) partition its
    // lifetime, so stage durations sum to end-to-end latency.
    let mut requests = 0u64;
    for root in log.spans().iter().filter(|s| s.id.kind == "req") {
        requests += 1;
        let children: Vec<_> = log
            .spans()
            .iter()
            .filter(|s| s.parent == Some(root.id) && s.start < root.end)
            .collect();
        assert!(
            children.len() >= 2,
            "request {} should break into overhead + dispatches",
            root.id.render()
        );
        let stage_sum: u128 = children.iter().map(|s| s.duration().as_nanos()).sum();
        assert_eq!(
            stage_sum,
            root.duration().as_nanos(),
            "stages of {} must sum to its end-to-end latency (children: {:?})",
            root.id.render(),
            children
        );
    }
    assert_eq!(requests, 12);
}

// ---------------------------------------------------------------------
// Minimal protobuf reader for the Perfetto export — written against the
// wire format directly (varint + length-delimited fields only), so the
// exporter is checked by something other than its own code.
// ---------------------------------------------------------------------

enum Field<'a> {
    Varint(u64),
    Bytes(&'a [u8]),
}

fn read_varint(buf: &[u8], pos: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0;
    loop {
        let b = buf[*pos];
        *pos += 1;
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

/// Splits a message into `(field_number, field)` pairs.
fn read_fields(buf: &[u8]) -> Vec<(u32, Field<'_>)> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < buf.len() {
        let key = read_varint(buf, &mut pos);
        let field = (key >> 3) as u32;
        match key & 7 {
            0 => out.push((field, Field::Varint(read_varint(buf, &mut pos)))),
            2 => {
                let len = read_varint(buf, &mut pos) as usize;
                out.push((field, Field::Bytes(&buf[pos..pos + len])));
                pos += len;
            }
            wt => panic!("unexpected wire type {wt} for field {field}"),
        }
    }
    out
}

/// The decoded shape of a Perfetto export: named tracks with their
/// parent edges, plus the flat `(timestamp, track, type)` event stream.
struct Decoded {
    /// track uuid → (name, parent uuid; 0 = none).
    tracks: BTreeMap<u64, (String, u64)>,
    /// (timestamp ns, track uuid, TrackEvent type).
    events: Vec<(u64, u64, u64)>,
}

fn decode_perfetto(bytes: &[u8]) -> Decoded {
    let mut d = Decoded {
        tracks: BTreeMap::new(),
        events: Vec::new(),
    };
    for (field, packet) in read_fields(bytes) {
        assert_eq!(field, 1, "top level is Trace.packet only");
        let Field::Bytes(packet) = packet else {
            panic!("packet must be length-delimited");
        };
        let mut ts = 0u64;
        for (field, value) in read_fields(packet) {
            match (field, value) {
                (8, Field::Varint(v)) => ts = v,
                (10, Field::Varint(seq)) => assert_eq!(seq, 1, "one trusted sequence"),
                (60, Field::Bytes(desc)) => {
                    let (mut uuid, mut name, mut parent) = (0, String::new(), 0);
                    for (field, value) in read_fields(desc) {
                        match (field, value) {
                            (1, Field::Varint(v)) => uuid = v,
                            (2, Field::Bytes(b)) => name = String::from_utf8(b.to_vec()).unwrap(),
                            (5, Field::Varint(v)) => parent = v,
                            _ => panic!("unexpected TrackDescriptor field {field}"),
                        }
                    }
                    let prev = d.tracks.insert(uuid, (name, parent));
                    assert!(prev.is_none(), "track {uuid} described twice");
                }
                (11, Field::Bytes(ev)) => {
                    let (mut kind, mut track) = (0, 0);
                    for (field, value) in read_fields(ev) {
                        match (field, value) {
                            (9, Field::Varint(v)) => kind = v,
                            (11, Field::Varint(v)) => track = v,
                            (22, Field::Bytes(_)) | (23, Field::Bytes(_)) => {}
                            _ => panic!("unexpected TrackEvent field {field}"),
                        }
                    }
                    d.events.push((ts, track, kind));
                }
                _ => panic!("unexpected TracePacket field {field}"),
            }
        }
    }
    d
}

/// A three-span log (request → dispatch → queue wait) plus a monitor
/// instant, fixed for the golden-bytes check.
fn golden_log() -> TraceLog {
    let fe = ComponentId(5);
    let w = ComponentId(9);
    let req = request_span_id(fe, 1);
    let job = job_span_id(fe, 1);
    let mut log = TraceLog::new();
    log.push(span(
        req,
        None,
        "request",
        "fe",
        fe,
        "",
        SimTime::ZERO,
        SimTime::from_millis(9),
        640,
        true,
    ));
    log.push(span(
        job,
        Some(req),
        "dispatch",
        "stub",
        w,
        "echo",
        SimTime::from_millis(2),
        SimTime::from_millis(9),
        640,
        true,
    ));
    log.push(span(
        queue_span_id(w, 1),
        Some(job),
        "queue_wait",
        "worker",
        w,
        "echo",
        SimTime::from_millis(3),
        SimTime::from_millis(4),
        0,
        true,
    ));
    log.push_instant("beacon_miss", "monitor", fe, SimTime::from_millis(6));
    log
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[test]
fn perfetto_export_matches_the_golden_bytes_and_round_trips() {
    let bytes = to_perfetto(&golden_log());
    assert_eq!(
        hex(&bytes),
        concat!(
            "0a0b5001e203060806120263350a1c5001e2031708e0b7d486f7eff5c4fb0112",
            "087265713a63353a3128060a22400050015a1c480158e0b7d486f7eff5c4fb01",
            "b201026665ba0107726571756573740a1640c0a8a50450015a0d480258e0b7d4",
            "86f7eff5c4fb010a0b5001e20306080a120263390a255001e20320089dbc95f9",
            "c0d9cafe9c0112086a6f623a63353a3128e0b7d486f7eff5c4fb010a27408089",
            "7a50015a1f4801589dbc95f9c0d9cafe9c01b2010473747562ba010864697370",
            "617463680a1640c0a8a50450015a0d4802589dbc95f9c0d9cafe9c010a245001",
            "e2031f08a6cb97accdb4cc909201120777713a63393a31289dbc95f9c0d9cafe",
            "9c010a2c40c08db70150015a23480158a6cb97accdb4cc909201b20106776f72",
            "6b6572ba010a71756575655f776169740a16408092f40150015a0d480258a6cb",
            "97accdb4cc9092010a2540809bee0250015a1c48035806b201076d6f6e69746f",
            "72ba010b626561636f6e5f6d697373",
        ),
        "Perfetto encoding changed; if intentional, re-bless the golden hex"
    );

    let d = decode_perfetto(&bytes);
    // Tracks: two component tracks (c5, c9) + one per non-monitor span.
    assert_eq!(d.tracks.len(), 5, "2 component + 3 span tracks");
    let by_name: BTreeMap<&str, u64> = d
        .tracks
        .iter()
        .map(|(uuid, (name, _))| (name.as_str(), *uuid))
        .collect();
    let parent_of = |name: &str| d.tracks[&by_name[name]].1;
    assert_eq!(
        parent_of("req:c5:1"),
        by_name["c5"],
        "root hangs off its component"
    );
    assert_eq!(parent_of("job:c5:1"), by_name["req:c5:1"]);
    assert_eq!(parent_of("wq:c9:1"), by_name["job:c5:1"]);
    // Events: begin+end per span, one instant on the component track.
    let ms = |v: u64| v * 1_000_000;
    assert_eq!(
        d.events,
        vec![
            (0, by_name["req:c5:1"], 1),
            (ms(9), by_name["req:c5:1"], 2),
            (ms(2), by_name["job:c5:1"], 1),
            (ms(9), by_name["job:c5:1"], 2),
            (ms(3), by_name["wq:c9:1"], 1),
            (ms(4), by_name["wq:c9:1"], 2),
            (ms(6), by_name["c5"], 3),
        ]
    );
}

/// Raw material for one generated span: (parent choice, start, extra).
type RawSpan = (u64, u64, u64);

/// Decodes a generated raw tuple list into a well-formed span forest:
/// node `i` may only parent under an earlier node, so emission order is
/// causal order, like the real tracer's.
fn forest(raw: &[RawSpan]) -> Vec<SpanRecord> {
    raw.iter()
        .enumerate()
        .map(|(i, &(pick, start, extra))| {
            let parent = (i > 0 && pick % (i as u64 + 1) != 0).then(|| (pick % i as u64) as usize);
            let id = SpanId {
                kind: "job",
                owner: ComponentId(1 + extra % 3),
                n: i as u64 + 1,
            };
            span(
                id,
                parent.map(|p| SpanId {
                    kind: "job",
                    owner: ComponentId(1 + raw[p].2 % 3),
                    n: p as u64 + 1,
                }),
                "dispatch",
                "stub",
                ComponentId(1 + extra % 3),
                "echo",
                SimTime::from_nanos(start),
                SimTime::from_nanos(start + 1 + extra % 1_000_000),
                0,
                true,
            )
        })
        .collect()
}

props! {
    /// Any causally ordered span forest survives Perfetto encoding:
    /// every span's track exists, parents under its causal parent's
    /// track (or its component's, for roots), and carries begin/end
    /// events at exactly the span's start/end nanosecond timestamps.
    fn perfetto_preserves_nesting_and_timestamps(
        raw in gens::vec(
            gens::u64_in(0..u64::MAX).flat_map(|a| {
                gens::u64_in(0..1_000_000_000)
                    .flat_map(move |b| gens::u64_in(0..u64::MAX).map(move |c| (a, b, c)))
            }),
            1..16,
        )
    ) {
        let spans = forest(&raw);
        let mut log = TraceLog::new();
        for s in &spans {
            log.push(*s);
        }
        let d = decode_perfetto(&to_perfetto(&log));
        let by_name: BTreeMap<String, u64> = d
            .tracks
            .iter()
            .map(|(uuid, (name, _))| (name.clone(), *uuid))
            .collect();
        for s in &spans {
            let uuid = *by_name
                .get(&s.id.render())
                .expect("every span got a described track");
            let want_parent = match s.parent {
                Some(p) => by_name[&p.render()],
                None => by_name[&format!("c{}", s.who.0)],
            };
            tk_assert_eq!(d.tracks[&uuid].1, want_parent, "parent edge of {}", s.id.render());
            let begin = d.events.iter().position(|&e| e == (s.start.as_nanos(), uuid, 1));
            let end = d.events.iter().position(|&e| e == (s.end.as_nanos(), uuid, 2));
            tk_assert!(begin.is_some(), "begin event of {}", s.id.render());
            tk_assert!(end.is_some(), "end event of {}", s.id.render());
            tk_assert!(begin < end, "begin precedes end for {}", s.id.render());
        }
        // Nothing extra: two events per span, no stray tracks.
        tk_assert_eq!(d.events.len(), spans.len() * 2);
        let components: std::collections::BTreeSet<u64> =
            spans.iter().map(|s| s.who.0).collect();
        tk_assert_eq!(d.tracks.len(), spans.len() + components.len());
    }
}
