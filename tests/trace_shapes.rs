//! Shape checks on the end-to-end request traces (`sns_core::trace`):
//! a TranSend run with tracing on must export valid Chrome
//! `trace_event` JSON, and each request's depth-1 child spans —
//! front-end overhead plus the dispatches issued on its behalf — must
//! partition the request's lifetime exactly, so the per-stage latency
//! breakdown (Figure 7) sums to the measured end-to-end latency.
//!
//! The workload is pass-through (`MimeType::Other` → identity
//! pipeline): the only dispatch that *overlaps* the reply is the
//! fire-and-forget cache inject, which starts exactly at reply time
//! and is therefore excluded by the strict `start < end` filter below.

use std::time::Duration;

use cluster_sns::core::trace::{normalized, to_chrome, to_jsonl};
use cluster_sns::sim::SimTime;
use cluster_sns::transend::TranSendBuilder;
use cluster_sns::workload::trace::TraceRecord;
use cluster_sns::workload::MimeType;

/// A small pass-through workload: distinct binary objects, one request
/// every 400 ms.
fn passthrough_items(n: u64) -> Vec<(Duration, TraceRecord)> {
    (0..n)
        .map(|i| {
            (
                Duration::from_millis(400 * i),
                TraceRecord {
                    at: Duration::from_millis(400 * i),
                    user: 7,
                    url: format!("bin://object/{i}"),
                    mime: MimeType::Other,
                    size: 16 * 1024,
                },
            )
        })
        .collect()
}

/// Minimal structural JSON validation: balanced braces/brackets outside
/// strings, correct escape handling, nothing after the top-level value.
fn assert_valid_json(s: &str) {
    let mut depth: i64 = 0;
    let mut in_str = false;
    let mut escaped = false;
    let mut closed = false;
    for c in s.chars() {
        if closed {
            panic!("trailing garbage after top-level JSON value");
        }
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => in_str = true,
            '{' | '[' => depth += 1,
            '}' | ']' => {
                depth -= 1;
                assert!(depth >= 0, "unbalanced close");
                if depth == 0 {
                    closed = true;
                }
            }
            _ => {}
        }
    }
    assert!(closed, "JSON value never closed");
}

#[test]
fn transend_trace_is_valid_chrome_json_and_spans_sum_to_latency() {
    let mut cluster = TranSendBuilder::new()
        .with_seed(0x7a11)
        .with_worker_nodes(5)
        .with_frontends(1)
        .with_cache_partitions(2)
        .with_min_distillers(1)
        .with_origin_penalty_scale(0.1)
        .with_tracing(true)
        .build();
    let report = cluster.attach_client(passthrough_items(12), Duration::from_secs(3));
    cluster.sim.run_until(SimTime::from_secs(60));
    assert_eq!(report.borrow().responses, 12, "all requests answered");

    let log = cluster.trace().expect("tracing was enabled");
    assert!(!log.is_empty());

    // Chrome export: structurally valid JSON with one event per span.
    let chrome = to_chrome(&log);
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(chrome.ends_with("]}"));
    assert_valid_json(&chrome);
    assert_eq!(chrome.matches("\"ph\":").count(), log.len());

    // JSONL export: one line per span.
    let jsonl = to_jsonl(&log);
    assert_eq!(jsonl.lines().count(), log.len());

    // The normalized rendering has one root per answered request.
    let tree = normalized(&log);
    let roots = tree.lines().filter(|l| l.starts_with("req:")).count();
    assert_eq!(roots, 12, "one request root per response:\n{tree}");

    // Figure-7 property: every request's depth-1 children (overhead +
    // dispatches started strictly before the reply) partition its
    // lifetime, so stage durations sum to end-to-end latency.
    let mut requests = 0u64;
    for root in log.spans().iter().filter(|s| s.id.kind == "req") {
        requests += 1;
        let children: Vec<_> = log
            .spans()
            .iter()
            .filter(|s| s.parent == Some(root.id) && s.start < root.end)
            .collect();
        assert!(
            children.len() >= 2,
            "request {} should break into overhead + dispatches",
            root.id.render()
        );
        let stage_sum: u128 = children.iter().map(|s| s.duration().as_nanos()).sum();
        assert_eq!(
            stage_sum,
            root.duration().as_nanos(),
            "stages of {} must sum to its end-to-end latency (children: {:?})",
            root.id.render(),
            children
        );
    }
    assert_eq!(requests, 12);
}
