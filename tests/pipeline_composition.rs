//! Cross-crate TACC composition: real distiller chains executed through
//! the worker host adapter, variant-hash cache-key discipline, and the
//! rewebber round trip — the §2.3 "Unix pipeline" claim.

use std::collections::BTreeMap;
use std::sync::Arc;

use cluster_sns::core::msg::Job;
use cluster_sns::core::payload_as;
use cluster_sns::core::worker::WorkerLogic;
use cluster_sns::distillers::{GifDistiller, HtmlMunger, KeywordFilter};
use cluster_sns::sim::ComponentId;
use cluster_sns::sim::{Pcg32, SimTime};
use cluster_sns::tacc::content::{synth_html, Body, ContentObject};
use cluster_sns::tacc::pipeline::PipelineSpec;
use cluster_sns::tacc::worker::{TaccArgs, TaccWorkerHost};
use cluster_sns::workload::MimeType;

fn run_stage(
    host: &mut TaccWorkerHost,
    obj: ContentObject,
    profile: &BTreeMap<String, String>,
    rng: &mut Pcg32,
) -> ContentObject {
    let job = Job {
        id: 1,
        class: host.class(),
        op: "transform".into(),
        input: obj.into_payload(),
        profile: Some(Arc::new(profile.clone())),
        reply_to: ComponentId(1),
        sampled: true,
    };
    let out = host.process(&job, SimTime::ZERO, rng).expect("stage ok");
    payload_as::<ContentObject>(&out).expect("content").clone()
}

#[test]
fn html_then_keyword_chain_does_both_transformations() {
    let mut rng = Pcg32::new(1);
    let mut munger = TaccWorkerHost::transformer(Box::new(HtmlMunger::new()), BTreeMap::new());
    let mut filter = TaccWorkerHost::transformer(Box::new(KeywordFilter::new()), BTreeMap::new());
    let words: Vec<&str> = "the cluster serves network services with cluster workers over and over"
        .split(' ')
        .collect();
    let page = ContentObject::text(
        "http://h/p",
        MimeType::Html,
        synth_html("http://h/p", 2, &words),
    );
    let mut profile = BTreeMap::new();
    profile.insert("keywords".to_string(), "cluster".to_string());
    profile.insert("quality".to_string(), "25".to_string());

    let munged = run_stage(&mut munger, page, &profile, &mut rng);
    let filtered = run_stage(&mut filter, munged, &profile, &mut rng);

    assert_eq!(filtered.lineage, vec!["html", "keyword"]);
    let Body::Text(t) = &filtered.body else {
        panic!("text body")
    };
    assert!(t.contains("transend-toolbar"), "munger stage applied");
    assert!(t.contains("ts-original=1"), "original links added");
    assert!(
        t.contains("color:red"),
        "keyword stage applied on the munged output"
    );
    // The keyword filter must not have mangled the markup the munger
    // produced (attributes are exempt from highlighting).
    assert!(t.contains("data-ts-quality=\"25\""));
}

#[test]
fn pipeline_variants_isolate_users_with_different_args() {
    let pipeline = PipelineSpec::of(&["gif"]);
    let low = TaccArgs::from_map(BTreeMap::from([("quality".to_string(), "10".to_string())]));
    let high = TaccArgs::from_map(BTreeMap::from([("quality".to_string(), "90".to_string())]));
    // Different preferences must cache under different variants…
    assert_ne!(pipeline.final_variant(&low), pipeline.final_variant(&high));
    // …and actually produce different bytes.
    let mut rng = Pcg32::new(2);
    let mut gif = GifDistiller::new();
    use cluster_sns::tacc::worker::TaccWorker;
    let img = ContentObject::synthetic("u", MimeType::Gif, 30_000);
    let small = gif.transform(&img, &low, &mut rng).unwrap();
    let large = gif.transform(&img, &high, &mut rng).unwrap();
    assert!(small.len() < large.len());
}

#[test]
fn worker_host_enforces_mime_discipline_across_the_chain() {
    let mut rng = Pcg32::new(3);
    let mut gif = TaccWorkerHost::transformer(Box::new(GifDistiller::new()), BTreeMap::new());
    // GIF distiller outputs JPEG (format conversion): feeding its output
    // back into itself must be rejected as a soft failure, which the
    // front end turns into a fallback, not a crash.
    let img = ContentObject::synthetic("u", MimeType::Gif, 10_000);
    let once = run_stage(&mut gif, img, &BTreeMap::new(), &mut rng);
    assert_eq!(once.mime, MimeType::Jpeg);
    let job = Job {
        id: 2,
        class: gif.class(),
        op: "transform".into(),
        input: once.into_payload(),
        profile: None,
        reply_to: ComponentId(1),
        sampled: true,
    };
    let err = gif.process(&job, SimTime::ZERO, &mut rng);
    assert!(matches!(
        err,
        Err(cluster_sns::core::worker::WorkerError::Failed(_))
    ));
}
