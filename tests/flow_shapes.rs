//! Flow-mode fidelity shapes: the tolerance bands that justify running
//! million-user replays on the flow-level SAN (`SanMode::Flow`) instead
//! of pricing every datagram exactly. Each test pins one qualitative
//! claim from DESIGN.md §6j:
//!
//! * at light load the closed-form flow delay tracks the exact
//!   busy-pointer delay;
//! * a replay window priced per-epoch with `offer_flow` delivers the
//!   same request count as the per-message path, with delays inside a
//!   coarse 2× band;
//! * the §4.6 tail-drop shape survives in flow mode, because saturated
//!   links fall back to the exact path;
//! * partition and blackout semantics are mode-invariant;
//! * one aggregated `offer_flow` batch prices like the per-message flow
//!   fast path it replaces.

use std::time::Duration;

use cluster_sns::san::{San, SanConfig, SanMode};
use cluster_sns::sim::network::{Delivery, Endpoint, Network, TrafficClass};
use cluster_sns::sim::rng::Pcg32;
use cluster_sns::sim::time::SimTime;
use cluster_sns::sim::{ComponentId, NodeId};
use cluster_sns::workload::ReplayLoad;

fn ep(node: u32, comp: u64) -> Endpoint {
    Endpoint {
        node: NodeId(node),
        comp: ComponentId(comp),
    }
}

fn san(mode: SanMode) -> (San, Pcg32) {
    let mut s = San::new(SanConfig::switched_100mbps().with_mode(mode));
    for n in 0..8 {
        s.register_node(NodeId(n));
    }
    (s, Pcg32::new(7))
}

fn delay_of(d: Delivery, sent: SimTime) -> Option<Duration> {
    match d {
        Delivery::At(t) => Some(t.since(sent)),
        Delivery::Dropped => None,
    }
}

/// At light load (well under the saturation threshold) the flow model's
/// closed-form delay must track the exact busy-pointer delay within
/// 20%: queueing is negligible, so both reduce to serialisation plus
/// propagation.
#[test]
fn light_load_delays_agree_across_modes() {
    let mut totals = Vec::new();
    for mode in [SanMode::Datagram, SanMode::Flow] {
        let (mut s, mut rng) = san(mode);
        let mut total = Duration::ZERO;
        for i in 0..50u64 {
            // 10 ms spacing: each 6 KB message finishes long before the
            // next arrives, so the exact path sees empty queues.
            let now = SimTime::from_millis(i * 10);
            let d = s.unicast(
                now,
                &mut rng,
                ep(0, 1),
                ep(1, 2),
                6_000,
                TrafficClass::Reliable,
            );
            total += delay_of(d, now).expect("reliable traffic is never dropped");
        }
        totals.push(total.as_secs_f64());
    }
    let (exact, flow) = (totals[0], totals[1]);
    assert!(
        (flow - exact).abs() / exact < 0.20,
        "flow total delay {flow:.6}s drifted >20% from exact {exact:.6}s"
    );
}

/// A replay window priced with one `offer_flow` per (epoch, pair)
/// must deliver exactly the same request count as the per-message
/// exact path (reliable traffic, no drops on either side) and keep the
/// mean delay inside a coarse (0.5, 2.0) fidelity band — the contract
/// the `sim_scale` bench gate enforces at full scale.
#[test]
fn replay_window_keeps_delivered_counts_and_delay_bands() {
    const PAIRS: u64 = 2;
    let load = ReplayLoad::new(250_000, 0xF5).with_epoch(Duration::from_secs(1));
    let horizon = Duration::from_secs(30);

    // Per-message leg: every request is one exact unicast, uniformly
    // spread within its epoch.
    let (mut s, mut rng) = san(SanMode::Datagram);
    let (mut d_total, mut d_delay) = (0u64, Duration::ZERO);
    for epoch in load.epochs(horizon) {
        if epoch.requests == 0 {
            continue;
        }
        let size = epoch.bytes / epoch.requests;
        let gap = load.epoch.as_nanos() as u64 / epoch.requests;
        for i in 0..epoch.requests {
            let pair = i % PAIRS;
            let at = SimTime::from_nanos(epoch.start.as_nanos() as u64 + i * gap);
            let d = s.unicast(
                at,
                &mut rng,
                ep(pair as u32, 1),
                ep(4 + pair as u32, 2),
                size,
                TrafficClass::Reliable,
            );
            d_delay += delay_of(d, at).expect("reliable traffic is never dropped");
            d_total += 1;
        }
    }

    // Flow leg: one offer per epoch and pair carries the same messages
    // and bytes. The SAN's utilisation epoch must match the envelope's
    // aggregation epoch, or utilisation is over-counted.
    let mut f = San::new(
        SanConfig::switched_100mbps()
            .with_mode(SanMode::Flow)
            .with_flow_epoch(load.epoch),
    );
    for n in 0..8 {
        f.register_node(NodeId(n));
    }
    let (mut f_total, mut f_delay) = (0u64, Duration::ZERO);
    for epoch in load.epochs(horizon) {
        if epoch.requests == 0 {
            continue;
        }
        let size = epoch.bytes / epoch.requests;
        let at = SimTime::from_nanos(epoch.start.as_nanos() as u64);
        for pair in 0..PAIRS {
            let msgs = epoch.requests / PAIRS + u64::from(pair < epoch.requests % PAIRS);
            let report = f.offer_flow(
                at,
                NodeId(pair as u32),
                NodeId(4 + pair as u32),
                size * msgs,
                msgs,
                TrafficClass::Reliable,
            );
            assert_eq!(report.dropped, 0, "reliable flow traffic never drops");
            f_delay += report.delay.mul_f64(report.delivered as f64);
            f_total += report.delivered;
        }
    }

    assert_eq!(d_total, f_total, "both legs must carry every request");
    assert!(
        d_total > 500,
        "the window must carry real load, got {d_total}"
    );
    let ratio = f_delay.as_secs_f64() / d_delay.as_secs_f64();
    assert!(
        ratio > 0.5 && ratio < 2.0,
        "flow mean delay off the fidelity band: ratio {ratio:.3}"
    );
}

/// Saturating a link with a datagram burst must tail-drop in flow mode
/// too: the fast path refuses once utilisation crosses the threshold,
/// and the exact fallback reproduces the §4.6 drop shape. The flow
/// path may admit a few more head-of-burst messages (its early fast
/// path leaves the busy pointers idle), so the drop counts agree only
/// coarsely — but both must shed most of the burst.
#[test]
fn saturation_tail_drop_shape_survives_flow_mode() {
    let mut drops = Vec::new();
    for mode in [SanMode::Datagram, SanMode::Flow] {
        let (mut s, mut rng) = san(mode);
        let mut dropped = 0u64;
        for _ in 0..60 {
            // 125 KB ≈ 10 ms of wire each, all offered at t=0: far past
            // the 50 ms max queue delay.
            let d = s.unicast(
                SimTime::ZERO,
                &mut rng,
                ep(0, 1),
                ep(1, 2),
                125_000,
                TrafficClass::Datagram,
            );
            if d == Delivery::Dropped {
                dropped += 1;
            }
        }
        if mode == SanMode::Flow {
            assert!(
                s.stats().flow_fast_path > 0,
                "head of burst rides the fast path"
            );
            assert!(s.stats().flow_fallbacks > 0, "saturation must fall back");
        }
        drops.push(dropped);
    }
    let (exact, flow) = (drops[0], drops[1]);
    assert!(
        exact >= 45,
        "exact mode must shed most of the burst, dropped {exact}"
    );
    assert!(
        flow <= exact,
        "flow mode cannot drop more than exact ({flow} > {exact})"
    );
    assert!(
        flow as f64 / exact as f64 > 0.6,
        "flow drop count {flow} lost the tail-drop shape (exact {exact})"
    );
}

/// Partitions and datagram blackouts are correctness semantics, not
/// performance: identical call sequences must produce identical drop
/// and delivery counts in both SAN modes.
#[test]
fn partition_and_blackout_semantics_are_mode_invariant() {
    let mut outcomes = Vec::new();
    for mode in [SanMode::Datagram, SanMode::Flow] {
        let (mut s, mut rng) = san(mode);
        s.partition(&[vec![NodeId(0), NodeId(1)], vec![NodeId(2), NodeId(3)]]);
        for i in 0..4u64 {
            // Cross-group: always dropped.
            s.unicast(
                SimTime::from_millis(i),
                &mut rng,
                ep(0, 1),
                ep(2, 2),
                1_000,
                TrafficClass::Reliable,
            );
            // Same-group: carried.
            s.unicast(
                SimTime::from_millis(i),
                &mut rng,
                ep(0, 1),
                ep(1, 2),
                1_000,
                TrafficClass::Reliable,
            );
        }
        s.heal();
        s.set_datagram_blackout(true);
        let now = SimTime::from_secs(1);
        // Off-node datagrams die in the blackout; reliable and loopback
        // traffic survive it.
        s.unicast(
            now,
            &mut rng,
            ep(0, 1),
            ep(1, 2),
            200,
            TrafficClass::Datagram,
        );
        s.unicast(
            now,
            &mut rng,
            ep(0, 1),
            ep(1, 2),
            200,
            TrafficClass::Reliable,
        );
        s.unicast(
            now,
            &mut rng,
            ep(0, 1),
            ep(0, 2),
            200,
            TrafficClass::Datagram,
        );
        let st = s.stats();
        outcomes.push((st.partition_drops, st.blackout_drops, st.delivered));
    }
    assert_eq!(
        outcomes[0], outcomes[1],
        "fault semantics must not depend on SAN mode"
    );
}

/// One aggregated `offer_flow` batch must price like the per-message
/// flow fast path it replaces: same links, same epoch, same offered
/// load — the batch's representative delay times its message count
/// lands within 30% of the summed per-message delays.
#[test]
fn offer_flow_batch_matches_per_message_flow_pricing() {
    const MSGS: u64 = 40;
    const SIZE: u64 = 5_000;

    let (mut per_msg, mut rng) = san(SanMode::Flow);
    let mut sum = Duration::ZERO;
    for _ in 0..MSGS {
        let d = per_msg.unicast(
            SimTime::ZERO,
            &mut rng,
            ep(0, 1),
            ep(1, 2),
            SIZE,
            TrafficClass::Reliable,
        );
        sum += delay_of(d, SimTime::ZERO).expect("light reliable load is never dropped");
    }
    assert_eq!(
        per_msg.stats().flow_fast_path,
        MSGS,
        "all messages take the fast path"
    );

    let (mut batch, _) = san(SanMode::Flow);
    let report = batch.offer_flow(
        SimTime::ZERO,
        NodeId(0),
        NodeId(1),
        SIZE * MSGS,
        MSGS,
        TrafficClass::Reliable,
    );
    assert_eq!(report.delivered, MSGS);
    let batched = report.delay.mul_f64(MSGS as f64).as_secs_f64();
    let summed = sum.as_secs_f64();
    assert!(
        (batched - summed).abs() / summed < 0.30,
        "batched pricing {batched:.6}s drifted >30% from per-message {summed:.6}s"
    );
}
