//! Cluster-operations chaos: drains, rejoins, rolling upgrades, quorum
//! regroup and multi-tenant mixes — every scenario pinned by an
//! invariant (`UpgradeNoJobLoss`, `QuorumSafety`, `TenantIsolation`).
//!
//! The operations verbs run through the backend-agnostic [`Cluster`]
//! trait, so the same script drives the simulator harness and the
//! threaded runtime and their normalized monitor logs must agree; the
//! quorum scenarios replay deterministic plans through the N-replica
//! regroup rig; the tenant scenarios saturate one service of a shared
//! cluster and pin the other's latency inside a band.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use cluster_sns::chaos::harness::SimClusterBuilder;
use cluster_sns::chaos::{
    check_quorum_safety, check_tenant_isolation, check_upgrade_no_job_loss, p99, run_regroup,
    FaultKind, FaultPlan, RegroupMode, SimChaos, SimChaosConfig,
};
use cluster_sns::core::cluster::{Cluster, SettleStats};
use cluster_sns::core::invariant::MonitorLog;
use cluster_sns::core::msg::{Job, JobResult};
use cluster_sns::core::worker::{WorkerError, WorkerLogic};
use cluster_sns::core::SloAggregator;
use cluster_sns::core::{Blob, MonitorTap, OverloadPolicy, Payload, TenantPolicy, WorkerClass};
use cluster_sns::rt::{RtCluster, RtConfig};
use cluster_sns::sim::rng::Pcg32;
use cluster_sns::sim::{MetricKey, SimTime};
use cluster_sns::transend::TranSendBuilder;
use cluster_sns::workload::playback::{Playback, Schedule};
use cluster_sns::workload::trace::{TraceGenerator, WorkloadConfig};

/// Modelled-to-wall-clock compression for the rt scenarios.
const RT_SCALE: f64 = 0.05;

struct Echo;

impl WorkerLogic for Echo {
    fn class(&self) -> WorkerClass {
        "echo".into()
    }
    fn service_time(&mut self, _j: &Job, _n: SimTime, _r: &mut Pcg32) -> Duration {
        Duration::from_millis(20)
    }
    fn process(&mut self, job: &Job, _n: SimTime, _r: &mut Pcg32) -> Result<Payload, WorkerError> {
        Ok(Blob::payload(job.input.wire_size() / 2, "echoed"))
    }
}

fn sim_cluster(nodes: usize) -> cluster_sns::chaos::harness::SimCluster {
    SimClusterBuilder::new()
        .with_nodes(nodes)
        .with_workers("echo", 3, || Box::new(Echo))
        .start()
}

fn rt_cluster(nodes: usize) -> Arc<RtCluster> {
    let c = RtCluster::start(
        RtConfig::new()
            .with_nodes(nodes)
            .with_time_scale(RT_SCALE)
            .with_report_period(Duration::from_millis(10))
            .with_beacon_period(Duration::from_millis(20)),
    );
    c.add_workers("echo", 3, || Box::new(Echo));
    c
}

/// The drain/rejoin monitor stream with node ids renamed by first
/// appearance, so the two backends' arbitrary id spaces compare equal.
fn node_ops(log: &MonitorLog) -> Vec<String> {
    let mut nodes: BTreeMap<String, usize> = BTreeMap::new();
    log.entries()
        .iter()
        .filter(|(_, ev)| matches!(ev.kind_key(), "node_drained" | "node_rejoined"))
        .map(|(_, ev)| {
            ev.canonical()
                .split(' ')
                .map(|field| match field.split_once('=') {
                    Some(("node", v)) => {
                        let next = nodes.len();
                        format!("node=N{}", *nodes.entry(v.to_string()).or_insert(next))
                    }
                    _ => field.to_string(),
                })
                .collect::<Vec<_>>()
                .join(" ")
        })
        .collect()
}

/// Shared drain/rejoin script: service must keep answering while a node
/// is out, repeat verbs must report skips, and the drain/rejoin monitor
/// stream must be the same on both backends.
fn drain_rejoin_script(c: &dyn Cluster, budget: Duration) -> Vec<String> {
    for i in 0..4 {
        c.submit("echo", "echo", Blob::payload(256 + i, "before"));
    }
    let s = c.settle(budget);
    assert_eq!(s.answered, 4, "[{}] pre-drain wave: {s:?}", c.backend());

    assert!(c.drain_node(0), "[{}] drain lands", c.backend());
    assert!(
        !c.drain_node(0),
        "[{}] a second drain of the same node is a skip",
        c.backend()
    );
    let _ = c.settle(budget);
    for i in 0..4 {
        c.submit("echo", "echo", Blob::payload(128 + i, "during"));
    }
    let s = c.settle(budget);
    assert_eq!(
        s.answered,
        4,
        "[{}] service continues with node 0 drained: {s:?}",
        c.backend()
    );

    assert!(c.rejoin_node(0, false), "[{}] rejoin lands", c.backend());
    assert!(
        !c.rejoin_node(0, false),
        "[{}] rejoining an undrained node is a skip",
        c.backend()
    );
    let _ = c.settle(budget);
    node_ops(&c.monitor_log())
}

#[test]
fn drain_rejoin_monitor_streams_match_across_backends() {
    let sim = sim_cluster(2);
    let sim_ops = drain_rejoin_script(&sim, Duration::from_secs(30));
    let rt = rt_cluster(2);
    let rt_ops = drain_rejoin_script(&*rt, Duration::from_secs(3));
    rt.shutdown();
    assert_eq!(
        sim_ops,
        vec![
            "node_drained node=N0".to_string(),
            "node_rejoined node=N0 epoch=0".to_string(),
        ],
        "sim drain/rejoin stream"
    );
    assert_eq!(
        sim_ops, rt_ops,
        "normalized streams diverge across backends"
    );
}

/// Shared rolling-upgrade script: two nodes upgraded one at a time
/// through the trait verbs, with load in flight the whole way. Returns
/// the accumulated settle tally and the monitor log for the
/// `UpgradeNoJobLoss` check.
fn rolling_upgrade_script(c: &dyn Cluster, budget: Duration) -> (SettleStats, MonitorLog) {
    let mut total = SettleStats {
        answered: 0,
        failed: 0,
    };
    let mut wave = |c: &dyn Cluster, tag: &'static str| {
        for i in 0..4 {
            c.submit("echo", "echo", Blob::payload(200 + i, tag));
        }
        let s = c.settle(budget);
        total.answered += s.answered;
        total.failed += s.failed;
    };
    wave(c, "pre");
    for node in 0..2 {
        assert!(c.drain_node(node), "[{}] drain round {node}", c.backend());
        wave(c, "drained");
        assert!(
            c.rejoin_node(node, true),
            "[{}] upgraded rejoin round {node}",
            c.backend()
        );
        wave(c, "rejoined");
    }
    let _ = c.settle(budget);
    (total, c.monitor_log())
}

#[test]
fn rolling_upgrade_under_load_loses_no_jobs_on_both_backends() {
    let sim = sim_cluster(2);
    let (stats, log) = rolling_upgrade_script(&sim, Duration::from_secs(30));
    check_upgrade_no_job_loss(&stats, &log).unwrap();
    assert_eq!(log.count("node_drained"), 2);

    let rt = rt_cluster(2);
    let (stats, log) = rolling_upgrade_script(&*rt, Duration::from_secs(3));
    rt.shutdown();
    check_upgrade_no_job_loss(&stats, &log).unwrap();
    assert_eq!(log.count("node_drained"), 2);
}

fn transend_load(seed: u64) -> Vec<(Duration, cluster_sns::workload::TraceRecord)> {
    let mut gen = TraceGenerator::new(WorkloadConfig {
        seed,
        users: 40,
        shared_objects: 150,
        private_per_user: 10,
        ..Default::default()
    });
    let t = gen.constant_rate(4.0, Duration::from_secs(70));
    Playback::new(&t, Schedule::Timestamps)
        .map(|(at, r)| (at, r.clone()))
        .collect()
}

#[test]
fn rolling_upgrade_plan_verb_keeps_transend_serving() {
    // The RollingUpgrade plan verb on the full TranSend stack: two
    // worker nodes upgraded batch-by-batch mid-service. Every request
    // is answered and every drained node comes back at a higher epoch.
    let mut cluster = TranSendBuilder::new()
        .with_worker_nodes(6)
        .with_overflow_nodes(1)
        .with_frontends(1)
        .with_cache_partitions(2)
        .with_min_distillers(1)
        .with_origin_penalty_scale(0.1)
        .build();
    let node = cluster.sim.nodes_with_tag("infra")[0];
    let (tap, log) = MonitorTap::new(cluster.monitor_group);
    cluster.sim.spawn(node, Box::new(tap), "montap");

    let reqs = transend_load(53);
    let n = reqs.len() as u64;
    let report = cluster.attach_client(reqs, Duration::from_secs(4));

    let plan = FaultPlan::new().with(
        Duration::from_secs(20),
        FaultKind::RollingUpgrade {
            pool: "dedicated".into(),
            nodes: 2,
            batch: 1,
            settle: Duration::from_secs(15),
        },
    );
    let chaos = SimChaos::install(&mut cluster.sim, &plan, SimChaosConfig::default());
    cluster.sim.run_until(SimTime::from_secs(400));

    let r = report.borrow();
    let stats = SettleStats {
        answered: r.responses,
        failed: r.errors + (n - r.responses),
    };
    drop(r);
    assert_eq!(chaos.applied_count(), 1, "the upgrade verb landed");
    let log = log.borrow();
    check_upgrade_no_job_loss(&stats, &log).unwrap();
    assert_eq!(stats.answered, n, "every request answered");
    assert_eq!(log.count("node_drained"), 2, "both rounds drained");
    let stats = cluster.sim.stats();
    assert_eq!(stats.counter("manager.drains"), 2);
    assert_eq!(stats.counter("manager.upgrades"), 2);
}

#[test]
fn rolling_upgrade_plan_runs_through_rt_injector() {
    // The same verb compiled by the wall-clock injector against the
    // threaded runtime, with submit waves spanning the upgrade window.
    let c = rt_cluster(2);
    let plan = FaultPlan::new().with(
        Duration::from_secs(2),
        FaultKind::RollingUpgrade {
            pool: "dedicated".into(),
            nodes: 2,
            batch: 1,
            settle: Duration::from_secs(2),
        },
    );
    let injector = cluster_sns::chaos::rt::run_plan(Arc::clone(&c), &plan, RT_SCALE);

    let mut total = SettleStats {
        answered: 0,
        failed: 0,
    };
    while !injector.is_finished() {
        for i in 0..5 {
            Cluster::submit(&*c, "echo", "echo", Blob::payload(100 + i, "load"));
        }
        let s = c.settle(Duration::from_secs(5));
        total.answered += s.answered;
        total.failed += s.failed;
    }
    let report = injector.join().expect("injector thread");
    let log = c.monitor_log();
    c.shutdown();

    assert!(report.skipped.is_empty(), "{report:?}");
    check_upgrade_no_job_loss(&total, &log).unwrap();
    assert_eq!(log.count("node_drained"), 2, "both rounds drained");
    assert_eq!(log.count("node_rejoined"), 2, "both rounds rejoined");
}

#[test]
fn quorum_minority_kill_regroups_with_majority() {
    // Kill one standby, then the leader: the survivors still form a
    // majority, so the lowest live standby takes over and at no instant
    // do two incarnations act as manager.
    let plan = FaultPlan::new()
        .with(
            Duration::from_secs(5),
            FaultKind::KillManagerReplica { which: 2 },
        )
        .with(
            Duration::from_secs(12),
            FaultKind::KillManagerReplica { which: 0 },
        );
    let out = run_regroup(5, &plan, RegroupMode::Quorum);
    check_quorum_safety(&out.log).unwrap();
    assert!(!out.unrecoverable, "3 of 5 live is still a majority");
    assert_eq!(out.leader, Some(1), "lowest live standby took over");
    assert_eq!(out.log.count("leader_elected"), 1);
}

#[test]
fn quorum_majority_kill_is_detected_unrecoverable() {
    // Kill three of five replicas including the leader: the minority
    // island must refuse to elect and report itself unrecoverable.
    let plan = FaultPlan::new()
        .with(
            Duration::from_secs(5),
            FaultKind::KillManagerReplica { which: 0 },
        )
        .with(
            Duration::from_secs(5),
            FaultKind::KillManagerReplica { which: 1 },
        )
        .with(
            Duration::from_secs(5),
            FaultKind::KillManagerReplica { which: 3 },
        );
    let out = run_regroup(5, &plan, RegroupMode::Quorum);
    check_quorum_safety(&out.log).unwrap();
    assert!(out.unrecoverable, "2 of 5 live is below majority");
    assert_eq!(out.leader, None, "no minority self-election");
    assert_eq!(out.log.count("leader_elected"), 0);
}

#[test]
fn quorum_rule_prevents_the_legacy_split_brain() {
    // The same kill-leader-then-restart plan under both takeover rules:
    // the legacy single-rival rule lets the revived leader resume while
    // its successor leads (QuorumSafety violation); the majority rule
    // re-admits it as a standby.
    let plan = FaultPlan::new()
        .with(
            Duration::from_secs(3),
            FaultKind::KillManagerReplica { which: 0 },
        )
        .with(Duration::from_secs(12), FaultKind::RestartManager);
    let legacy = run_regroup(3, &plan, RegroupMode::Legacy);
    assert!(
        check_quorum_safety(&legacy.log).is_err(),
        "legacy revival must split the brain:\n{:?}",
        legacy.log.entries()
    );
    let quorum = run_regroup(3, &plan, RegroupMode::Quorum);
    check_quorum_safety(&quorum.log).unwrap();
    assert_eq!(quorum.leader, Some(1), "the successor keeps leading");
}

struct SlowEcho(&'static str, Duration);

impl WorkerLogic for SlowEcho {
    fn class(&self) -> WorkerClass {
        self.0.into()
    }
    fn service_time(&mut self, _j: &Job, _n: SimTime, _r: &mut Pcg32) -> Duration {
        self.1
    }
    fn process(&mut self, job: &Job, _n: SimTime, _r: &mut Pcg32) -> Result<Payload, WorkerError> {
        Ok(Blob::payload(job.input.wire_size() / 2, "done"))
    }
}

#[test]
fn flash_crowd_on_one_tenant_cannot_starve_the_other() {
    // TranSend and HotBot share one cluster. TranSend's request class
    // is flooded far past its outstanding quota with a Drop overload
    // policy; HotBot's chat class runs its normal trickle. The victim
    // tenant must stay inside its latency band and lose nothing, while
    // the aggressor's excess is shed at admission.
    let c = SimClusterBuilder::new()
        .with_nodes(2)
        .with_workers("tsreq", 2, || {
            Box::new(SlowEcho("tsreq", Duration::from_millis(40)))
        })
        .with_workers("hbchat", 2, || {
            Box::new(SlowEcho("hbchat", Duration::from_millis(20)))
        })
        .with_tenant("tsreq", "transend")
        .with_tenant("hbchat", "hotbot")
        .with_tenant_policy(
            "transend",
            TenantPolicy {
                max_outstanding: 4,
                overload: OverloadPolicy::Drop,
            },
        )
        .start();

    // Flash crowd on TranSend, trickle on HotBot, interleaved.
    for i in 0..300 {
        c.submit("tsreq", "req", Blob::payload(256 + i, "crowd"));
        if i % 15 == 0 {
            c.submit("hbchat", "chat", Blob::payload(128, "msg"));
        }
    }
    let s = c.settle(Duration::from_secs(60));

    let victim = c.latencies_of("hbchat");
    assert_eq!(victim.len(), 20, "every victim-tenant request answered");
    check_tenant_isolation(&victim, Duration::from_secs(2)).unwrap();
    let dropped = c.counter(MetricKey::new("stub.tenant_dropped"));
    assert!(
        dropped >= 200,
        "the aggressor's excess was shed at admission: {dropped} drops, {s:?}"
    );
    assert_eq!(
        s.answered + s.failed,
        320,
        "every submit resolved one way or the other: {s:?}"
    );
    // The quota still serves the aggressor at its sustainable rate.
    let aggressor = c.latencies_of("tsreq");
    assert_eq!(aggressor.len() as u64 + dropped, 300);
    assert!(
        p99(&victim) < p99(&aggressor).max(Duration::from_millis(1)) + Duration::from_secs(2),
        "victim p99 {:?} vs aggressor p99 {:?}",
        p99(&victim),
        p99(&aggressor)
    );
}

#[test]
fn sampled_slo_rows_stay_closed_under_the_flash_crowd() {
    // The flash-crowd plan again, but with always-on sampled tracing:
    // the span-derived per-tenant SLO rows must stay *closed* — the
    // sampled request count, scaled back up by the sampling rate, has
    // to account for the admitted (non-shed) requests of each tenant
    // within a band. A leak here means overload shedding or chaos is
    // dropping sampled spans, and the operator's percentiles silently
    // stop describing the traffic they claim to.
    const RATE: u32 = 2;
    let c = SimClusterBuilder::new()
        .with_nodes(2)
        .with_workers("tsreq", 2, || {
            Box::new(SlowEcho("tsreq", Duration::from_millis(40)))
        })
        .with_workers("hbchat", 2, || {
            Box::new(SlowEcho("hbchat", Duration::from_millis(20)))
        })
        .with_tenant("tsreq", "transend")
        .with_tenant("hbchat", "hotbot")
        .with_tenant_policy(
            "transend",
            TenantPolicy {
                max_outstanding: 4,
                overload: OverloadPolicy::Drop,
            },
        )
        .with_tracing(true)
        .with_trace_sampling(RATE)
        .start();

    for i in 0..300 {
        c.submit("tsreq", "req", Blob::payload(256 + i, "crowd"));
        if i % 15 == 0 {
            c.submit("hbchat", "chat", Blob::payload(128, "msg"));
        }
    }
    c.settle(Duration::from_secs(60));
    let dropped = c.counter(MetricKey::new("stub.tenant_dropped"));
    let admitted: BTreeMap<&str, u64> =
        BTreeMap::from([("transend", 300 - dropped), ("hotbot", 20)]);

    let mut slo = SloAggregator::new(RATE);
    slo.set_tenant("tsreq", "transend");
    slo.set_tenant("hbchat", "hotbot");
    slo.ingest(&c.trace_snapshot().expect("tracing enabled"));

    let rows = slo.rows();
    let total_admitted: u64 = admitted.values().sum();
    let est = slo.sampled_requests() * u64::from(RATE);
    assert!(
        (total_admitted / 2..=total_admitted * 2).contains(&est),
        "request closure: {} sampled x {RATE} = {est} vs {total_admitted} admitted",
        slo.sampled_requests()
    );
    for (tenant, &served) in &admitted {
        let row = rows
            .iter()
            .find(|r| r.bench == format!("slo/tenant/{tenant}"))
            .unwrap_or_else(|| panic!("tenant {tenant} has a percentile row"));
        assert!(
            (served / 2..=served * 2).contains(&row.iters),
            "{tenant} closure: {} sampled x {RATE} = {} vs {served} admitted",
            row.samples,
            row.iters
        );
        assert!(
            row.p50_ns <= row.p99_ns && row.p99_ns <= row.max_ns,
            "{tenant} percentiles are ordered"
        );
    }
    // The shed excess must NOT appear in the SLO stream: admission
    // drops happen before a job span is ever opened.
    assert!(dropped >= 200, "the plan still sheds the flash crowd");
    let ts_row = rows
        .iter()
        .find(|r| r.bench == "slo/tenant/transend")
        .expect("row");
    assert!(
        ts_row.iters < 300,
        "shed requests leaked into the aggressor's SLO rows"
    );
}

#[test]
fn rt_tenant_quota_drops_are_scoped_to_the_aggressor() {
    // The same admission machinery on the threaded runtime: the flooded
    // tenant sees "tenant over quota" failures, the other tenant sees
    // none.
    let c = RtCluster::start(
        RtConfig::new()
            .with_nodes(2)
            .with_time_scale(RT_SCALE)
            .with_report_period(Duration::from_millis(10))
            .with_beacon_period(Duration::from_millis(20)),
    );
    c.add_workers("burst", 2, || {
        Box::new(SlowEcho("burst", Duration::from_millis(200)))
    });
    c.add_workers("chat", 2, || {
        Box::new(SlowEcho("chat", Duration::from_millis(20)))
    });
    c.set_tenant("burst", "transend");
    c.set_tenant_policy(
        "transend",
        TenantPolicy {
            max_outstanding: 1,
            overload: OverloadPolicy::Drop,
        },
    );

    let burst_rx: Vec<_> = (0..20)
        .map(|i| c.submit("burst", "req", Blob::payload(100 + i, "crowd"), None))
        .collect();
    let chat_rx: Vec<_> = (0..5)
        .map(|i| c.submit("chat", "msg", Blob::payload(64 + i, "hi"), None))
        .collect();

    let mut dropped = 0;
    for rx in burst_rx {
        match rx.recv_timeout(Duration::from_secs(30)).expect("reply") {
            JobResult::Ok(_) => {}
            JobResult::Failed(e) => {
                assert!(e.contains("tenant over quota"), "{e}");
                dropped += 1;
            }
        }
    }
    for rx in chat_rx {
        match rx.recv_timeout(Duration::from_secs(30)).expect("reply") {
            JobResult::Ok(_) => {}
            JobResult::Failed(e) => panic!("victim tenant saw a failure: {e}"),
        }
    }
    c.shutdown();
    assert!(
        dropped >= 1,
        "a 20-deep burst against a quota of 1 must shed load"
    );
}

#[test]
fn node_faults_at_dead_nodes_skip_instead_of_rewrapping() {
    // A fault addressed to a node in the wrong state must be reported
    // as a skip — never silently re-aimed at a live node. Kill node 0,
    // then aim a straggler and a second kill at the same index: both
    // are skips and exactly one node is down afterwards.
    let mut cluster = TranSendBuilder::new()
        .with_worker_nodes(6)
        .with_overflow_nodes(1)
        .with_frontends(1)
        .with_cache_partitions(2)
        .with_min_distillers(1)
        .with_origin_penalty_scale(0.1)
        .build();
    let reqs = transend_load(59);
    let n = reqs.len() as u64;
    let report = cluster.attach_client(reqs, Duration::from_secs(4));

    let plan = FaultPlan::new()
        .with(
            Duration::from_secs(20),
            FaultKind::KillNode {
                pool: "dedicated".into(),
                which: 0,
            },
        )
        .with(
            Duration::from_secs(30),
            FaultKind::Straggler {
                pool: "dedicated".into(),
                which: 0,
                slowdown: 10,
                lasting: Duration::from_secs(5),
            },
        )
        .with(
            Duration::from_secs(40),
            FaultKind::KillNode {
                pool: "dedicated".into(),
                which: 0,
            },
        );
    let chaos = SimChaos::install(&mut cluster.sim, &plan, SimChaosConfig::default());
    cluster.sim.run_until(SimTime::from_secs(300));

    let inj = chaos.injections();
    assert_eq!(inj.len(), 3);
    assert!(inj[0].applied, "the first kill lands: {:?}", inj[0]);
    assert!(
        !inj[1].applied && !inj[2].applied,
        "faults at the dead node are skips, not re-aims: {inj:?}"
    );
    let dead = cluster
        .sim
        .nodes_with_tag_all("dedicated")
        .iter()
        .filter(|&&(_, alive)| !alive)
        .count();
    assert_eq!(dead, 1, "exactly one node down — nothing re-wrapped");
    let r = report.borrow();
    assert_eq!(r.responses, n, "service recovered around the dead node");
    assert_eq!(r.errors, 0);
}
