//! # cluster-sns — Cluster-Based Scalable Network Services
//!
//! Umbrella crate re-exporting the full reproduction of Fox, Gribble,
//! Chawathe, Brewer & Gauthier, *Cluster-Based Scalable Network Services*
//! (SOSP 1997): the SNS layer (scalability, load balancing, fault
//! tolerance), the TACC programming model, the BASE data-semantics
//! discipline, and the TranSend and HotBot services built on top.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! reproduced tables and figures.

pub use sns_cache as cache;
pub use sns_chaos as chaos;
pub use sns_core as core;
pub use sns_distillers as distillers;
pub use sns_hotbot as hotbot;
pub use sns_profiledb as profiledb;
pub use sns_rt as rt;
pub use sns_san as san;
pub use sns_search as search;
pub use sns_sim as sim;
pub use sns_tacc as tacc;
pub use sns_transend as transend;
pub use sns_workload as workload;

/// One-stop imports for building and driving clusters.
///
/// ```
/// use cluster_sns::prelude::*;
///
/// let topo = ClusterTopology::default().with_worker_nodes(4);
/// let builder = TranSendBuilder::new().with_topology(topo);
/// # let _ = builder;
/// ```
pub mod prelude {
    pub use sns_chaos::{FaultKind, FaultPlan, SimChaos, SimChaosConfig, SimClusterBuilder};
    pub use sns_core::topology::ClusterTopology;
    pub use sns_core::{Cluster, SettleStats, SnsConfig, WorkerClass};
    pub use sns_hotbot::{HotBotBuilder, HotBotCluster};
    pub use sns_rt::{RtCluster, RtConfig};
    pub use sns_san::{LinkParams, SanConfig, SanMode};
    pub use sns_transend::{TranSendBuilder, TranSendCluster, TranSendConfig};
    pub use sns_workload::playback::{Playback, Schedule};
    pub use sns_workload::trace::{Trace, TraceGenerator, WorkloadConfig};
}
